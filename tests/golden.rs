//! Golden-file tests: the committed `.tir` files in `testdata/` must
//! parse, verify, round-trip, schedule, and (where executable) run to
//! known results. These pin down the textual format and the end-to-end
//! pipeline against accidental changes.

use std::path::PathBuf;
use treegion_suite::prelude::*;

fn testdata(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

fn load(name: &str) -> Module {
    let m = parse_module(&testdata(name)).expect("golden file parses");
    for f in m.functions() {
        verify_function(f).expect("golden file verifies");
    }
    m
}

#[test]
fn all_golden_files_roundtrip() {
    for name in ["fig1.tir", "wide.tir", "linearized.tir", "sum_loop.tir"] {
        let m = load(name);
        let printed = print_module(&m);
        let reparsed = parse_module(&printed).expect("roundtrip parses");
        assert_eq!(print_module(&reparsed), printed, "{name}");
    }
}

#[test]
fn sum_loop_computes_the_sum_0_to_9() {
    let m = load("sum_loop.tir");
    let f = &m.functions()[0];
    let r = interpret(f, State::new(), 1_000).expect("terminates");
    assert_eq!(r.ret, Some(45));
    // Every scheme produces the same answer when executed as VLIW code.
    for regions in [form_basic_blocks(f), form_slrs(f), form_treegions(f)] {
        let prog = VliwProgram::compile(
            f,
            &regions,
            &MachineModel::model_4u(),
            &ScheduleOptions::default(),
            None,
        );
        let got = prog.execute(State::new(), 1_000).expect("executes");
        assert_eq!(got.ret, Some(45));
    }
}

#[test]
fn fig1_golden_region_structure() {
    let m = load("fig1.tir");
    let f = &m.functions()[0];
    let set = form_treegions(f);
    assert_eq!(set.len(), 3);
    let root = set.region(set.region_of(f.entry()).unwrap());
    assert_eq!(root.num_blocks(), 5);
    assert_eq!(root.path_count(), 3);
}

#[test]
fn fig1_schedule_is_stable() {
    // The worked example's estimated times are pinned: any scheduler
    // change that shifts them should be a conscious decision.
    let m = load("fig1.tir");
    let f = &m.functions()[0];
    let machine = MachineModel::model_4u();
    let set = form_treegions(f);
    let pipeline = Pipeline::with_options(
        &machine,
        RobustOptions {
            sched: ScheduleOptions {
                heuristic: Heuristic::GlobalWeight,
                dominator_parallelism: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let total: f64 = pipeline
        .schedule_set(f, &set, None, &NullObserver)
        .iter()
        .map(|s| s.schedule.estimated_time(&s.lowered))
        .sum();
    assert_eq!(total, 840.0, "fig1 golden estimated time drifted");
}

#[test]
fn wide_and_linearized_shapes_schedule_under_all_heuristics() {
    for name in ["wide.tir", "linearized.tir"] {
        let m = load(name);
        let f = &m.functions()[0];
        let set = form_treegions(f);
        let m8 = MachineModel::model_8u();
        for h in Heuristic::ALL {
            let pipeline = Pipeline::with_options(
                &m8,
                RobustOptions {
                    sched: ScheduleOptions {
                        heuristic: h,
                        dominator_parallelism: false,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            for s in pipeline.schedule_set(f, &set, None, &NullObserver) {
                assert_eq!(s.schedule.issued_ops(), s.lowered.lops.len(), "{name} {h}");
            }
        }
    }
}
