//! Contracts of the unified pipeline driver (DESIGN.md §11):
//!
//! * every [`RegionConfig`] former produces a [`FormOutcome`] identical
//!   to the legacy free formation functions, across the golden corpus,
//!   the synthetic benchmarks, and fuzz seeds;
//! * the [`PassObserver`] hooks fire exactly once per stage per region,
//!   as properly nested enter/exit brackets in dataflow order, with
//!   monotonic timestamps within each region.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;
use treegion_suite::prelude::*;
use treegion_suite::workloads::generate_fuzz;

fn golden_corpus() -> Vec<Function> {
    let mut out = Vec::new();
    let testdata = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("testdata");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&testdata)
        .expect("testdata dir")
        .chain(
            std::fs::read_dir(testdata.join("repros"))
                .into_iter()
                .flatten(),
        )
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "tir"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "golden corpus must not be empty");
    for p in paths {
        let text = std::fs::read_to_string(&p).unwrap();
        let m = parse_module(&text).unwrap_or_else(|e| panic!("{p:?}: {e}"));
        out.extend(m.functions().iter().cloned());
    }
    out
}

fn fuzz_corpus() -> Vec<Function> {
    (0..8u64)
        .map(|i| 0xF0_12E0 + i * 7919)
        .flat_map(|seed| generate_fuzz(seed).functions().to_vec())
        .collect()
}

/// Structural partition equality: same regions in order, same
/// block→region assignment. (`RegionSet`'s Debug includes a hash map
/// whose print order is not deterministic, so compare piecewise.)
fn assert_same_partition(f: &Function, a: &RegionSet, b: &RegionSet, ctx: &str) {
    assert_eq!(
        format!("{:?}", a.regions()),
        format!("{:?}", b.regions()),
        "{ctx}: regions diverged"
    );
    for blk in f.block_ids() {
        assert_eq!(a.region_of(blk), b.region_of(blk), "{ctx}: block {blk}");
    }
}

/// `RegionConfig::form` must reproduce the legacy free functions exactly:
/// same (possibly transformed) function text, same region partition, same
/// origin map.
#[test]
fn region_former_matches_legacy_free_functions() {
    let mut corpus = golden_corpus();
    corpus.extend(fuzz_corpus());
    let limits = TailDupLimits::expansion_2_0();
    for f in &corpus {
        // Non-transforming formers: function untouched, identity origin.
        for (config, legacy) in [
            (RegionConfig::BasicBlock, form_basic_blocks(f)),
            (RegionConfig::Slr, form_slrs(f)),
            (RegionConfig::Treegion, form_treegions(f)),
        ] {
            let formed = config.form(f);
            assert_eq!(
                print_function(&formed.function),
                print_function(f),
                "{config:?} must not transform @{}",
                f.name()
            );
            assert_same_partition(
                f,
                &formed.regions,
                &legacy,
                &format!("{config:?} on @{}", f.name()),
            );
            for b in formed.function.block_ids() {
                assert_eq!(
                    formed.origin[b.index()],
                    b,
                    "{config:?} origin not identity"
                );
            }
        }
        // Transforming formers: match the legacy transform field for field.
        let sb = form_superblocks(f);
        let formed = RegionConfig::Superblock.form(f);
        assert_eq!(
            print_function(&formed.function),
            print_function(&sb.function)
        );
        assert_same_partition(&formed.function, &formed.regions, &sb.regions, "superblock");
        assert_eq!(formed.origin, sb.origin, "superblock origin diverged");

        let td = form_treegions_td(f, &limits);
        let formed = RegionConfig::TreegionTd(limits).form(f);
        assert_eq!(
            print_function(&formed.function),
            print_function(&td.function)
        );
        assert_same_partition(&formed.function, &formed.regions, &td.regions, "tail-dup");
        assert_eq!(formed.origin, td.origin, "tail-dup origin diverged");
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Hook {
    Enter,
    Exit,
}

/// One observer callback: which bracket, which stage, which region (None
/// for whole-function stages), and when it fired.
type Event = (Hook, Stage, Option<usize>, Instant);

/// Records every stage bracket with a wall-clock timestamp.
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl PassObserver for Recorder {
    fn stage_enter(&self, stage: Stage, scope: StageScope<'_>) {
        self.events
            .lock()
            .unwrap()
            .push((Hook::Enter, stage, scope.region, Instant::now()));
    }

    fn stage_exit(
        &self,
        stage: Stage,
        scope: StageScope<'_>,
        _elapsed: std::time::Duration,
        _stats: StageStats,
    ) {
        self.events
            .lock()
            .unwrap()
            .push((Hook::Exit, stage, scope.region, Instant::now()));
    }
}

/// On a clean (fault-free, strict-verify) run every stage fires exactly
/// once per region — Formation once per function — as properly nested
/// enter/exit pairs in dataflow order with monotonic timestamps.
#[test]
fn observer_stages_fire_once_per_region_in_dataflow_order() {
    let machine = MachineModel::model_4u();
    let pipeline = Pipeline::with_options(&machine, RobustOptions::default());
    for f in golden_corpus() {
        let rec = Recorder::default();
        let run = pipeline
            .run_function(&f, &RegionConfig::Treegion, &rec)
            .expect("clean run");
        let regions = run.formed.regions.len();
        let events = rec.events.into_inner().unwrap();

        // Formation: exactly one enter/exit pair, region = None, and it
        // completes before any per-region stage begins.
        let formation: Vec<_> = events.iter().filter(|e| e.1 == Stage::Formation).collect();
        assert_eq!(formation.len(), 2, "formation must bracket exactly once");
        assert_eq!(
            (
                formation[0].0,
                formation[0].2,
                formation[1].0,
                formation[1].2
            ),
            (Hook::Enter, None, Hook::Exit, None)
        );
        let formation_done = formation[1].3;
        assert!(
            events
                .iter()
                .filter(|e| e.1 != Stage::Formation)
                .all(|e| e.3 >= formation_done),
            "per-region stages must not start before formation exits"
        );

        // Per region: the four per-region stages, each exactly once, in
        // dataflow order, enter before exit, timestamps monotone.
        let per_region = [
            Stage::Lowering,
            Stage::DdgBuild,
            Stage::ListSched,
            Stage::Verify,
        ];
        for r in 0..regions {
            let seq: Vec<_> = events.iter().filter(|e| e.2 == Some(r)).collect();
            let expected: Vec<(Hook, Stage)> = per_region
                .iter()
                .flat_map(|&s| [(Hook::Enter, s), (Hook::Exit, s)])
                .collect();
            assert_eq!(
                seq.iter().map(|e| (e.0, e.1)).collect::<Vec<_>>(),
                expected,
                "region {r} of @{} fired out of order",
                f.name()
            );
            for w in seq.windows(2) {
                assert!(
                    w[1].3 >= w[0].3,
                    "region {r} of @{}: non-monotonic timestamps",
                    f.name()
                );
            }
        }
        // Nothing else fired.
        let per_region_events: usize = (0..regions)
            .map(|r| events.iter().filter(|e| e.2 == Some(r)).count())
            .sum();
        assert_eq!(events.len(), 2 + per_region_events, "stray observer events");
    }
}
