//! Acceptance tests for crash-isolated, resumable evaluation (the PR 3
//! containment subsystem):
//!
//! * a run with one panicking and one deadline-tripping cell completes
//!   all the others, reports the incidents as [`ContainmentEvent`]s, and
//!   quarantines the poison inputs;
//! * resuming that run (faults removed) re-runs *only* the two failed
//!   cells and merges into a report byte-identical to a clean serial run;
//! * region-level panics injected under `schedule_function_robust` are
//!   contained and recovered by the fallback chain.

use std::path::PathBuf;
use treegion_suite::eval::{
    run_harness, CellFault, CellFaultKind, CellStatus, HarnessOptions, RunManifest,
};
use treegion_suite::treegion::{ContainmentAction, RetryPolicy};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tgc-containment-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Four fast cells over a one-benchmark suite; no retry backoff so the
/// test does not sleep.
fn base_opts() -> HarnessOptions {
    HarnessOptions {
        small: Some(1),
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 0,
        },
        only: vec![
            "table1".into(),
            "table2".into(),
            "table3".into(),
            "table4".into(),
        ],
        ..HarnessOptions::default()
    }
}

#[test]
fn poisoned_run_completes_quarantines_and_resumes_only_failed_cells() {
    let ckpt = tmpdir("ckpt");
    let quar = tmpdir("quar");

    // One cell panics on every attempt, one hangs past its deadline.
    let poisoned = HarnessOptions {
        fault_cells: vec![
            (
                "table2".into(),
                CellFault {
                    kind: CellFaultKind::Panic,
                    trips: u32::MAX,
                },
            ),
            (
                "table3".into(),
                CellFault {
                    kind: CellFaultKind::Hang { sleep_ms: 10_000 },
                    trips: u32::MAX,
                },
            ),
        ],
        cell_deadline_ms: Some(200),
        checkpoint_dir: Some(ckpt.clone()),
        quarantine_dir: Some(quar.clone()),
        ..base_opts()
    };
    let report = run_harness(&poisoned).expect("contained run is not a hard error");

    // Every *other* cell completed despite the two poison cells.
    for name in ["table1", "table4"] {
        let c = report.cells.iter().find(|c| c.name == name).unwrap();
        assert_eq!(c.status, CellStatus::Done, "{name} should survive");
    }
    for name in ["table2", "table3"] {
        let c = report.cells.iter().find(|c| c.name == name).unwrap();
        assert_eq!(c.status, CellStatus::Failed, "{name} should fail");
        assert_eq!(c.attempts, 2, "{name} should use every attempt");
    }
    assert!(report.has_contained_failures());
    assert_eq!(report.executed, 4);

    // The incidents are reported with the right causes, and the final
    // attempt of each poisoned cell ends in quarantine.
    let causes: Vec<&str> = report.events.iter().map(|e| e.cause.label()).collect();
    assert!(causes.contains(&"panic"), "{causes:?}");
    assert!(causes.contains(&"deadline"), "{causes:?}");
    let quarantines = report
        .events
        .iter()
        .filter(|e| e.action == ContainmentAction::Quarantined)
        .count();
    assert_eq!(quarantines, 2, "{:?}", report.events);

    // Poison inputs are on disk, one replay file per incident.
    assert_eq!(report.quarantined.len(), 2);
    for q in &report.quarantined {
        let body = std::fs::read_to_string(q).unwrap();
        assert!(body.starts_with("tgc-quarantine v1"), "{body}");
        assert!(body.contains("replay tgc eval"), "{body}");
    }

    // The manifest records the mixed outcome.
    let manifest_path = report.manifest_path.clone().expect("checkpointing was on");
    let manifest = RunManifest::load(&manifest_path).unwrap();
    assert_eq!(manifest.cell("table1").unwrap().status, CellStatus::Done);
    assert_eq!(manifest.cell("table2").unwrap().status, CellStatus::Failed);

    // Resume with the faults removed: exactly the two failed cells
    // re-run, the two finished cells restore from the checkpoint.
    let resumed = HarnessOptions {
        resume: Some(manifest_path),
        checkpoint_dir: Some(ckpt.clone()),
        ..base_opts()
    };
    let r2 = run_harness(&resumed).unwrap();
    assert_eq!(
        r2.executed,
        2,
        "only the failed cells re-run: {}",
        r2.summary()
    );
    assert_eq!(r2.skipped, 2, "{}", r2.summary());
    assert!(!r2.has_contained_failures());
    assert!(r2.events.is_empty());

    // The merged report is byte-identical to a clean, fault-free run.
    let clean = run_harness(&base_opts()).unwrap();
    assert_eq!(r2.merged_output(), clean.merged_output());

    std::fs::remove_dir_all(&ckpt).ok();
    std::fs::remove_dir_all(&quar).ok();
}

#[test]
fn region_level_panic_is_contained_by_the_fallback_chain() {
    use treegion_suite::prelude::*;
    use treegion_suite::treegion::{form_treegions, RobustOptions};

    let (f, _) = treegion_suite::workloads::shapes::figure1();
    let regions = form_treegions(&f);
    let machine = MachineModel::model_4u();
    let opts = RobustOptions {
        panic_on_region: Some(0),
        ..RobustOptions::default()
    };
    let pipeline = Pipeline::with_options(&machine, opts);
    let result = pipeline
        .run_set(&f, &regions, None, &NullObserver)
        .expect("panic must be contained, not propagated");
    // The crash is recorded as a containment-class degradation and the
    // fallback chain produced a replacement schedule.
    assert!(
        result.events.iter().any(|e| e.cause.is_containment()),
        "{:?}",
        result.events
    );
    assert!(
        result.outcomes.len() >= regions.len(),
        "the fallback carve keeps every block scheduled"
    );
    // Deterministic: running it twice gives identical events.
    let again = pipeline.run_set(&f, &regions, None, &NullObserver).unwrap();
    assert_eq!(result.events, again.events);
}
