//! Structural invariants of region formation, lowering, and scheduling,
//! checked over seeded random programs.
//!
//! These were originally proptest properties; they are now plain seeded
//! loops (the workspace builds hermetically, without crates.io), which
//! keeps them deterministic and the failing seed printable.

use treegion_rng::StdRng;
use treegion_suite::prelude::*;

fn gen_module(seed: u64, budget: usize) -> Module {
    let mut spec = BenchmarkSpec::tiny(seed);
    spec.functions = 1;
    spec.blocks_per_function = (budget.max(4), budget.max(4) + 8);
    spec.p_wide_switch = 0.1;
    spec.p_linearized_chain = 0.05;
    generate(&spec)
}

/// Draws `n` (seed, budget) cases deterministically from `stream`.
fn cases(stream: u64, n: usize, budget_range: std::ops::Range<usize>) -> Vec<(u64, usize)> {
    let mut rng = StdRng::seed_from_u64(stream);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0u64..100_000),
                rng.gen_range(budget_range.clone()),
            )
        })
        .collect()
}

#[test]
fn every_block_lands_in_exactly_one_region() {
    for (seed, budget) in cases(0x11_0001, 48, 4..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        for set in [form_basic_blocks(f), form_slrs(f), form_treegions(f)] {
            assert!(set.is_partition_of(f), "seed {seed} budget {budget}");
        }
    }
}

#[test]
fn treegions_are_trees_without_internal_merges() {
    for (seed, budget) in cases(0x11_0002, 48, 4..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let cfg = Cfg::new(f);
        let set = form_treegions(f);
        for r in set.regions() {
            assert!(r.is_tree(), "seed {seed}");
            // No member except the root is a merge point.
            for &b in &r.blocks()[1..] {
                assert!(
                    !cfg.is_merge_point(b),
                    "{b} is an internal merge (seed {seed})"
                );
            }
            // Tree property from the paper: every block dominates all
            // blocks below it in the region.
            let dom = DomTree::new(&cfg);
            for &b in r.blocks() {
                let mut cur = b;
                while let Some((p, _)) = r.parent_edge(cur) {
                    assert!(dom.dominates(p, b), "seed {seed}");
                    cur = p;
                }
            }
        }
    }
}

#[test]
fn slrs_are_linear_single_entry() {
    for (seed, budget) in cases(0x11_0003, 48, 4..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let cfg = Cfg::new(f);
        let set = form_slrs(f);
        for r in set.regions() {
            assert!(r.is_linear(), "seed {seed}");
            assert_eq!(r.path_count(), 1, "seed {seed}");
            for &b in &r.blocks()[1..] {
                assert!(!cfg.is_merge_point(b), "seed {seed}");
            }
        }
    }
}

#[test]
fn superblocks_are_single_entry_and_conserve_flow() {
    for (seed, budget) in cases(0x11_0004, 48, 4..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let res = form_superblocks(f);
        assert!(res.regions.is_partition_of(&res.function), "seed {seed}");
        treegion_suite::ir::verify_profile(&res.function)
            .unwrap_or_else(|e| panic!("flow conservation broken (seed {seed}): {e}"));
        let preds = res.function.predecessors();
        for r in res.regions.regions() {
            for &b in &r.blocks()[1..] {
                let (parent, _) = r.parent_edge(b).unwrap();
                for &p in &preds[b.index()] {
                    assert_eq!(p, parent, "side entrance into superblock (seed {seed})");
                }
            }
        }
    }
}

#[test]
fn tail_duplication_respects_limits_and_flow() {
    for (seed, budget) in cases(0x11_0005, 48, 4..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let original_ops = f.num_ops();
        for limits in [
            TailDupLimits::expansion_2_0(),
            TailDupLimits::expansion_3_0(),
        ] {
            let res = form_treegions_td(f, &limits);
            assert!(res.regions.is_partition_of(&res.function), "seed {seed}");
            treegion_suite::ir::verify_profile(&res.function)
                .unwrap_or_else(|e| panic!("flow conservation broken (seed {seed}): {e}"));
            for r in res.regions.regions() {
                assert!(r.is_tree(), "seed {seed}");
            }
            // Whole-program expansion is bounded by the per-region rule.
            assert!(
                res.function.num_ops() as f64
                    <= limits.code_expansion * original_ops.max(1) as f64 + 1e-9,
                "expansion {} over limit {} (seed {seed})",
                res.function.num_ops() as f64 / original_ops.max(1) as f64,
                limits.code_expansion
            );
        }
    }
}

#[test]
fn schedules_respect_all_dependences_and_resources() {
    for (seed, budget) in cases(0x11_0006, 48, 4..30) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let set = form_treegions(f);
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let machine = MachineModel::model_4u();
        for r in set.regions() {
            let lowered = lower_region(f, r, &live, None);
            let ddg = treegion::Ddg::build(&lowered, &machine);
            for heuristic in Heuristic::ALL {
                let s = treegion::schedule_with_ddg(
                    &lowered,
                    &ddg,
                    &machine,
                    &ScheduleOptions {
                        heuristic,
                        dominator_parallelism: false,
                        ..Default::default()
                    },
                );
                treegion::verify_schedule(&lowered, &ddg, &machine, &s)
                    .unwrap_or_else(|e| panic!("schedule verification (seed {seed}): {e}"));
                // Every op scheduled exactly once.
                assert_eq!(s.issued_ops(), lowered.lops.len(), "seed {seed}");
                // Resource bound.
                for row in &s.cycles {
                    assert!(row.len() <= machine.issue_width(), "seed {seed}");
                }
                // Dependence latencies.
                for e in ddg.edges() {
                    let (cf, ct) = (s.cycle_of[e.from].unwrap(), s.cycle_of[e.to].unwrap());
                    assert!(
                        ct >= cf + e.latency,
                        "edge {e:?} violated: {cf} -> {ct} (seed {seed})"
                    );
                }
            }
        }
    }
}

#[test]
fn renamed_defs_are_single_assignment() {
    for (seed, budget) in cases(0x11_0007, 48, 4..30) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let set = form_treegions(f);
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        for r in set.regions() {
            let lowered = lower_region(f, r, &live, None);
            let mut seen = std::collections::HashSet::new();
            for l in &lowered.lops {
                for d in &l.op.defs {
                    assert!(
                        seen.insert(*d),
                        "double def of {d} after renaming (seed {seed})"
                    );
                }
            }
        }
    }
}

#[test]
fn textual_ir_roundtrips() {
    for (seed, budget) in cases(0x11_0008, 48, 4..30) {
        let module = gen_module(seed, budget);
        let text = print_module(&module);
        let reparsed =
            parse_module(&text).unwrap_or_else(|e| panic!("parse failed (seed {seed}): {e}"));
        assert_eq!(print_module(&reparsed), text, "seed {seed}");
    }
}
