//! Property-based structural invariants of region formation, lowering,
//! and scheduling, checked over arbitrary generated programs.

use proptest::prelude::*;
use treegion_suite::prelude::*;

fn gen_module(seed: u64, budget: usize) -> Module {
    let mut spec = BenchmarkSpec::tiny(seed);
    spec.functions = 1;
    spec.blocks_per_function = (budget.max(4), budget.max(4) + 8);
    spec.p_wide_switch = 0.1;
    spec.p_linearized_chain = 0.05;
    generate(&spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_block_lands_in_exactly_one_region(seed in 0u64..100_000, budget in 4usize..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        for set in [form_basic_blocks(f), form_slrs(f), form_treegions(f)] {
            prop_assert!(set.is_partition_of(f));
        }
    }

    #[test]
    fn treegions_are_trees_without_internal_merges(seed in 0u64..100_000, budget in 4usize..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let cfg = Cfg::new(f);
        let set = form_treegions(f);
        for r in set.regions() {
            prop_assert!(r.is_tree());
            // No member except the root is a merge point.
            for &b in &r.blocks()[1..] {
                prop_assert!(!cfg.is_merge_point(b), "{b} is an internal merge");
            }
            // Tree property from the paper: every block dominates all
            // blocks below it in the region.
            let dom = DomTree::new(&cfg);
            for &b in r.blocks() {
                let mut cur = b;
                while let Some((p, _)) = r.parent_edge(cur) {
                    prop_assert!(dom.dominates(p, b));
                    cur = p;
                }
            }
        }
    }

    #[test]
    fn slrs_are_linear_single_entry(seed in 0u64..100_000, budget in 4usize..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let cfg = Cfg::new(f);
        let set = form_slrs(f);
        for r in set.regions() {
            prop_assert!(r.is_linear());
            prop_assert_eq!(r.path_count(), 1);
            for &b in &r.blocks()[1..] {
                prop_assert!(!cfg.is_merge_point(b));
            }
        }
    }

    #[test]
    fn superblocks_are_single_entry_and_conserve_flow(seed in 0u64..100_000, budget in 4usize..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let res = form_superblocks(f);
        prop_assert!(res.regions.is_partition_of(&res.function));
        treegion_suite::ir::verify_profile(&res.function).map_err(|e| {
            TestCaseError::fail(format!("flow conservation broken: {e}"))
        })?;
        let preds = res.function.predecessors();
        for r in res.regions.regions() {
            for &b in &r.blocks()[1..] {
                let (parent, _) = r.parent_edge(b).unwrap();
                for &p in &preds[b.index()] {
                    prop_assert_eq!(p, parent, "side entrance into superblock");
                }
            }
        }
    }

    #[test]
    fn tail_duplication_respects_limits_and_flow(seed in 0u64..100_000, budget in 4usize..40) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let original_ops = f.num_ops();
        for limits in [TailDupLimits::expansion_2_0(), TailDupLimits::expansion_3_0()] {
            let res = form_treegions_td(f, &limits);
            prop_assert!(res.regions.is_partition_of(&res.function));
            treegion_suite::ir::verify_profile(&res.function).map_err(|e| {
                TestCaseError::fail(format!("flow conservation broken: {e}"))
            })?;
            for r in res.regions.regions() {
                prop_assert!(r.is_tree());
            }
            // Whole-program expansion is bounded by the per-region rule.
            prop_assert!(
                res.function.num_ops() as f64
                    <= limits.code_expansion * original_ops.max(1) as f64 + 1e-9,
                "expansion {} over limit {}",
                res.function.num_ops() as f64 / original_ops.max(1) as f64,
                limits.code_expansion
            );
        }
    }

    #[test]
    fn schedules_respect_all_dependences_and_resources(seed in 0u64..100_000, budget in 4usize..30) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let set = form_treegions(f);
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let machine = MachineModel::model_4u();
        for r in set.regions() {
            let lowered = lower_region(f, r, &live, None);
            let ddg = treegion::Ddg::build(&lowered, &machine);
            for heuristic in Heuristic::ALL {
                let s = treegion::schedule_with_ddg(
                    &lowered,
                    &ddg,
                    &machine,
                    &ScheduleOptions { heuristic, dominator_parallelism: false, ..Default::default() },
                );
                treegion::verify_schedule(&lowered, &ddg, &machine, &s).map_err(|e| {
                    TestCaseError::fail(format!("schedule verification: {e}"))
                })?;
                // Every op scheduled exactly once.
                prop_assert_eq!(s.issued_ops(), lowered.lops.len());
                // Resource bound.
                for row in &s.cycles {
                    prop_assert!(row.len() <= machine.issue_width());
                }
                // Dependence latencies.
                for e in ddg.edges() {
                    let (cf, ct) = (s.cycle_of[e.from].unwrap(), s.cycle_of[e.to].unwrap());
                    prop_assert!(
                        ct >= cf + e.latency,
                        "edge {:?} violated: {cf} -> {ct}",
                        e
                    );
                }
            }
        }
    }

    #[test]
    fn renamed_defs_are_single_assignment(seed in 0u64..100_000, budget in 4usize..30) {
        let module = gen_module(seed, budget);
        let f = &module.functions()[0];
        let set = form_treegions(f);
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        for r in set.regions() {
            let lowered = lower_region(f, r, &live, None);
            let mut seen = std::collections::HashSet::new();
            for l in &lowered.lops {
                for d in &l.op.defs {
                    prop_assert!(seen.insert(*d), "double def of {d} after renaming");
                }
            }
        }
    }

    #[test]
    fn textual_ir_roundtrips(seed in 0u64..100_000, budget in 4usize..30) {
        let module = gen_module(seed, budget);
        let text = print_module(&module);
        let reparsed = parse_module(&text).map_err(|e| {
            TestCaseError::fail(format!("parse failed: {e}"))
        })?;
        prop_assert_eq!(print_module(&reparsed), text);
    }
}
