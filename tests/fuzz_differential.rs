//! Differential fuzz harness for the whole scheduling pipeline.
//!
//! Each case draws a random CFG from [`treegion_workloads::generate_fuzz`]
//! (the generator's *shape parameters* are themselves randomized per seed),
//! schedules it under every region former × heuristic on the wide
//! machines, executes the schedule on the VLIW executor, and asserts
//! architectural-state equivalence (return value + final memory) against
//! the sequential reference interpreter.
//!
//! On failure, a greedy delta-debugging shrinker removes ops one at a time
//! (re-parsing and re-verifying the candidate each step) while the failure
//! persists, and the minimized function is written to
//! `testdata/repros/fuzz_<seed>.tir` with the failing configuration as a
//! `//` comment header. The `saved_repros_stay_fixed` test replays every
//! checked-in repro, so once a bug is fixed it stays fixed.
//!
//! Case count defaults to 64; override with `FUZZ_CASES=256 cargo test
//! --test fuzz_differential`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use treegion_suite::prelude::*;
use treegion_suite::sim::ExecResult;
use treegion_suite::treegion::{FaultPlan, RobustOptions};
use treegion_suite::workloads::generate_fuzz;

const FUEL: u64 = 1_000_000;

fn cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The five region-formation schemes under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Former {
    BasicBlock,
    Slr,
    Treegion,
    Superblock,
    TreegionTd,
}

impl Former {
    const ALL: [Former; 5] = [
        Former::BasicBlock,
        Former::Slr,
        Former::Treegion,
        Former::Superblock,
        Former::TreegionTd,
    ];

    fn label(self) -> &'static str {
        match self {
            Former::BasicBlock => "bb",
            Former::Slr => "slr",
            Former::Treegion => "treegion",
            Former::Superblock => "superblock",
            Former::TreegionTd => "treegion-td",
        }
    }

    fn form(self, f: &Function) -> (Function, RegionSet, Option<Vec<BlockId>>) {
        match self {
            Former::BasicBlock => (f.clone(), form_basic_blocks(f), None),
            Former::Slr => (f.clone(), form_slrs(f), None),
            Former::Treegion => (f.clone(), form_treegions(f), None),
            Former::Superblock => {
                let r = form_superblocks(f);
                (r.function, r.regions, Some(r.origin))
            }
            Former::TreegionTd => {
                let r = form_treegions_td(f, &TailDupLimits::expansion_2_0());
                (r.function, r.regions, Some(r.origin))
            }
        }
    }
}

/// Schedules and executes one configuration; `Err` carries a description
/// of the divergence.
fn check_config(
    f: &Function,
    former: Former,
    heuristic: Heuristic,
    machine: &MachineModel,
    expected: &ExecResult,
) -> Result<(), String> {
    let tag = || format!("{}/{heuristic:?}/{machine}", former.label());
    let (func, regions, origin) = former.form(f);
    let opts = ScheduleOptions {
        heuristic,
        dominator_parallelism: false,
        ..Default::default()
    };
    let prog = VliwProgram::compile(&func, &regions, machine, &opts, origin.as_deref());
    let got = prog
        .execute(State::new(), FUEL)
        .map_err(|e| format!("[{}] vliw execution failed: {e}", tag()))?;
    if got.ret != expected.ret {
        return Err(format!(
            "[{}] return diverged: vliw {:?} vs interp {:?}",
            tag(),
            got.ret,
            expected.ret
        ));
    }
    if got.state.mem != expected.state.mem {
        return Err(format!("[{}] final memory diverged", tag()));
    }
    Ok(())
}

/// The full cross-product for one function. Scheduling panics (debug
/// verifier trips, watchdog asserts) are caught and reported as failures
/// so the shrinker can minimize them too.
fn run_case(f: &Function) -> Result<(), String> {
    let res = catch_unwind(AssertUnwindSafe(|| {
        let expected =
            interpret(f, State::new(), FUEL).map_err(|e| format!("interpreter failed: {e}"))?;
        for former in Former::ALL {
            // Full heuristic sweep on the widest machine; one spot-check
            // on 4U keeps per-case cost bounded.
            for h in Heuristic::ALL {
                check_config(f, former, h, &MachineModel::model_8u(), &expected)?;
            }
            check_config(
                f,
                former,
                Heuristic::GlobalWeight,
                &MachineModel::model_4u(),
                &expected,
            )?;
        }
        Ok(())
    }));
    match res {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Runs `body` with panic messages silenced (the shrinker probes many
/// deliberately-failing candidates; their backtraces are noise).
fn quiet<R>(body: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = body();
    std::panic::set_hook(hook);
    r
}

fn is_terminator_line(l: &str) -> bool {
    matches!(
        l.split_whitespace().next(),
        Some("jump" | "branch" | "switch" | "ret")
    )
}

/// Greedy delta-debugging over the textual IR: repeatedly try deleting one
/// op line; keep the deletion whenever the candidate still parses,
/// verifies, and satisfies `fails`. Bounded by `max_probes` oracle calls.
fn shrink_with(f: &Function, max_probes: usize, fails: impl Fn(&Function) -> bool) -> Function {
    let mut best = f.clone();
    let mut probes = 0usize;
    loop {
        let text = print_function(&best);
        let lines: Vec<&str> = text.lines().collect();
        let mut improved = false;
        for i in 0..lines.len() {
            if probes >= max_probes {
                return best;
            }
            let l = lines[i].trim();
            if l.is_empty()
                || l.starts_with("func")
                || l.starts_with("bb")
                || l == "}"
                || is_terminator_line(l)
            {
                continue;
            }
            let candidate_text: String = lines
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, s)| format!("{s}\n"))
                .collect();
            let Ok(cand) = treegion_suite::ir::parse_function(&candidate_text) else {
                continue;
            };
            if verify_function(&cand).is_err() {
                continue;
            }
            probes += 1;
            if fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Shrinks against the real cross-product oracle.
fn shrink(f: &Function, max_probes: usize) -> Function {
    shrink_with(f, max_probes, |cand| quiet(|| run_case(cand)).is_err())
}

fn repro_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("testdata/repros")
}

/// Writes the shrunk failing function as a parseable `.tir` repro with the
/// failure description in a comment header; returns the path.
fn write_repro(seed: u64, f: &Function, msg: &str) -> PathBuf {
    write_repro_in(&repro_dir(), seed, f, msg)
}

fn write_repro_in(dir: &std::path::Path, seed: u64, f: &Function, msg: &str) -> PathBuf {
    use std::fmt::Write as _;
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("fuzz_{seed:08x}.tir"));
    let mut text = String::new();
    let _ = writeln!(text, "// differential fuzz repro, seed {seed:#x}");
    for line in msg.lines() {
        let _ = writeln!(text, "// {line}");
    }
    let _ = writeln!(text, "module @fuzz_{seed:08x}");
    let _ = writeln!(text);
    text.push_str(&print_function(f));
    let _ = std::fs::write(&path, text);
    path
}

#[test]
fn differential_fuzz() {
    let n = cases();
    let seeds: Vec<u64> = (0..n).map(|i| 0xF022_0000 + i).collect();
    // Fuzz cases are independent, so they fan out over the worker budget.
    // The panic hook is silenced once around the whole fan-out (the hook
    // is process-global); failures come back in seed order, so the
    // failure report is deterministic at any job count.
    let per_seed: Vec<Vec<String>> = quiet(|| {
        treegion_par::par_map(&seeds, |&seed| {
            let module = generate_fuzz(seed);
            let mut failures = Vec::new();
            for f in module.functions() {
                if let Err(msg) = run_case(f) {
                    let shrunk = shrink(f, 200);
                    let path = write_repro(seed, &shrunk, &msg);
                    failures.push(format!(
                        "seed {seed:#x}: {msg}\n  minimized repro: {} ({} ops, {} blocks)",
                        path.display(),
                        shrunk.num_ops(),
                        shrunk.num_blocks()
                    ));
                }
            }
            failures
        })
    });
    let failures: Vec<String> = per_seed.into_iter().flatten().collect();
    assert!(
        failures.is_empty(),
        "{}/{n} fuzz cases failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Robust-pipeline fuzz: under a full fault campaign the degradation chain
/// must absorb every injected fault, and the re-formed (carved) partition
/// it reports must still execute equivalently to the reference
/// interpreter — the dynamic half of the recovery acceptance criterion.
#[test]
fn fault_campaign_recoveries_stay_equivalent() {
    let n = (cases() / 4).max(8);
    let seeds: Vec<u64> = (0..n).map(|i| 0xFA_0117 + i).collect();
    // Each seed owns its module and fault plan, so the campaign is
    // embarrassingly parallel; assertions fire inside the workers and
    // propagate through `par_map`'s panic plumbing.
    treegion_par::par_map(&seeds, |&seed| {
        let module = generate_fuzz(seed);
        let machine = MachineModel::model_8u();
        for f in module.functions() {
            let regions = form_treegions(f);
            let opts = RobustOptions {
                fault: Some(FaultPlan::from_seed(seed)),
                ..Default::default()
            };
            let r = Pipeline::with_options(&machine, opts)
                .run_set(f, &regions, None, &NullObserver)
                .unwrap_or_else(|e| panic!("seed {seed:#x}: fallback chain exhausted: {e}"));
            assert!(
                r.events.iter().all(|e| e.recovered),
                "seed {seed:#x}: unrecovered event under strict verify"
            );
            // Dynamic differential check of the degraded partition.
            let set = r.region_set();
            let expected = interpret(f, State::new(), FUEL).expect("interp");
            let prog = VliwProgram::compile(f, &set, &machine, &ScheduleOptions::default(), None);
            let got = prog
                .execute(State::new(), FUEL)
                .unwrap_or_else(|e| panic!("seed {seed:#x}: degraded partition failed: {e}"));
            assert_eq!(got.ret, expected.ret, "seed {seed:#x}");
            assert_eq!(got.state.mem, expected.state.mem, "seed {seed:#x}");
        }
    });
}

/// Exercises the shrinker and repro writer on a synthetic oracle (the real
/// fuzz loop only reaches them on a genuine scheduler bug): "fails" means
/// the function still contains a `mul`. The shrinker must strip everything
/// deletable while preserving the one op the oracle depends on, and the
/// written repro must round-trip through the parser.
#[test]
fn shrinker_minimizes_against_a_synthetic_oracle() {
    let module = generate_fuzz(0x5121_0000);
    let f = &module.functions()[0];
    let has_mul = |g: &Function| {
        g.block_ids()
            .any(|b| g.block(b).ops.iter().any(|o| o.opcode == Opcode::Mul))
    };
    assert!(has_mul(f), "pick a seed whose program contains a mul");
    let before = f.num_ops();
    let shrunk = shrink_with(f, 10_000, has_mul);
    assert!(has_mul(&shrunk), "shrinker deleted the failure trigger");
    assert!(
        shrunk.num_ops() < before / 2,
        "barely shrunk: {} -> {} ops",
        before,
        shrunk.num_ops()
    );
    verify_function(&shrunk).unwrap();
    // Repro writer output must parse back to the same function. Written
    // to a temp dir so the replay test never sees this transient file.
    let path = write_repro_in(
        &std::env::temp_dir(),
        0x5121_0000,
        &shrunk,
        "synthetic oracle: contains mul",
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let reparsed = parse_module(&text).unwrap();
    assert_eq!(
        print_function(&reparsed.functions()[0]),
        print_function(&shrunk)
    );
    let _ = std::fs::remove_file(&path);
}

/// Replays every checked-in `.tir` repro through the full cross-product:
/// a repro that fails again means a fixed bug has regressed.
#[test]
fn saved_repros_stay_fixed() {
    let dir = repro_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no repros yet
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "tir") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let module = parse_module(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        for f in module.functions() {
            verify_function(f).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            if let Err(msg) = run_case(f) {
                panic!("{} regressed: {msg}", path.display());
            }
        }
    }
}
