//! Determinism contract of the parallel + memoized evaluation engine.
//!
//! Parallelism and caching may only ever change *when* something is
//! computed — never *what*. These tests pin that down end to end:
//!
//! * schedules rendered at `jobs=1` and `jobs=8` are byte-identical;
//! * every report table rendered at `jobs=1` and `jobs=8` is
//!   byte-identical;
//! * tables produced through an enabled [`FormationCache`] equal the
//!   tables produced with caching disabled, byte for byte;
//! * the robust (degradation-chain) pipeline returns identical results
//!   at any job count.
//!
//! `treegion_par::set_jobs` is process-global, so every test that touches
//! it holds `JOBS_LOCK` (the default test harness runs tests on several
//! threads) and leaves the process in `jobs=1` afterwards.

use std::sync::{Mutex, MutexGuard};
use treegion_suite::eval::{
    fig13, fig6, fig8, form_function, schedule_function, table1, table3, RegionConfig, Suite,
};
use treegion_suite::prelude::*;
use treegion_suite::treegion::RobustOptions;

static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn jobs_lock() -> MutexGuard<'static, ()> {
    JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `body` under an explicit job count, restoring serial mode after.
fn with_jobs<R>(n: usize, body: impl FnOnce() -> R) -> R {
    treegion_suite::par::set_jobs(n);
    let r = body();
    treegion_suite::par::set_jobs(1);
    r
}

/// Renders every region schedule of every function of `module` under one
/// configuration into a single string.
fn render_module_schedules(module: &Module) -> String {
    let machine = MachineModel::model_4u();
    let mut out = String::new();
    for f in module.functions() {
        for config in [
            RegionConfig::BasicBlock,
            RegionConfig::Treegion,
            RegionConfig::TreegionTd(TailDupLimits::expansion_2_0()),
        ] {
            let formed = form_function(f, &config);
            for s in schedule_function(&formed, &machine, Heuristic::GlobalWeight, false) {
                out.push_str(&render_schedule(&s.lowered, &s.schedule, &machine));
                out.push('\n');
            }
        }
    }
    out
}

#[test]
fn schedules_are_byte_identical_at_any_job_count() {
    let _g = jobs_lock();
    let module = generate(&BenchmarkSpec::tiny(29));
    let serial = with_jobs(1, || render_module_schedules(&module));
    for jobs in [2, 8] {
        let parallel = with_jobs(jobs, || render_module_schedules(&module));
        assert_eq!(serial, parallel, "schedules diverged at jobs={jobs}");
    }
}

/// Renders a representative slice of the paper's tables/figures.
fn render_tables(suite: &Suite) -> String {
    let m4 = MachineModel::model_4u();
    [
        table1(suite).render(),
        table3(suite).render(),
        fig6(suite, &m4).render(),
        fig8(suite, &m4).render(),
        fig13(suite, &m4).render(),
    ]
    .join("\n")
}

#[test]
fn tables_are_byte_identical_at_any_job_count() {
    let _g = jobs_lock();
    let serial = with_jobs(1, || render_tables(&Suite::load_small(1)));
    let parallel = with_jobs(8, || render_tables(&Suite::load_small(1)));
    assert_eq!(serial, parallel);
}

#[test]
fn tables_are_byte_identical_with_and_without_cache() {
    let _g = jobs_lock();
    let cached = render_tables(&Suite::load_small(1));
    let uncached = render_tables(&Suite::load_small_uncached(1));
    assert_eq!(cached, uncached);
}

#[test]
fn robust_pipeline_is_identical_at_any_job_count() {
    let _g = jobs_lock();
    let module = generate(&BenchmarkSpec::tiny(31));
    let machine = MachineModel::model_4u();
    let run = || {
        let pipeline = Pipeline::with_options(&machine, RobustOptions::default());
        let mut times = Vec::new();
        for f in module.functions() {
            let regions = form_treegions(f);
            let r = pipeline
                .run_set(f, &regions, None, &NullObserver)
                .expect("robust scheduling succeeds");
            // Bitwise comparison: estimated times are f64 sums whose
            // order must not depend on the job count.
            times.push((r.estimated_time().to_bits(), r.outcomes.len()));
        }
        times
    };
    let serial = with_jobs(1, run);
    let parallel = with_jobs(8, run);
    assert_eq!(serial, parallel);
}

/// Runs the contained evaluation harness (no faults) over two fast cells.
fn contained_merged(checkpoint: Option<std::path::PathBuf>) -> String {
    use treegion_suite::eval::{run_harness, HarnessOptions};
    let opts = HarnessOptions {
        small: Some(1),
        checkpoint_dir: checkpoint,
        only: vec!["table1".into(), "fig6@4u".into()],
        ..HarnessOptions::default()
    };
    let report = run_harness(&opts).expect("clean contained run");
    assert!(!report.has_contained_failures());
    assert!(report.events.is_empty());
    report.merged_output()
}

#[test]
fn contained_harness_is_identical_at_any_job_count() {
    let _g = jobs_lock();
    let serial = with_jobs(1, || contained_merged(None));
    let parallel = with_jobs(8, || contained_merged(None));
    assert_eq!(serial, parallel);
}

#[test]
fn containment_and_checkpointing_do_not_perturb_results() {
    let _g = jobs_lock();
    // Plain harness (no containment envelope at all) ...
    let suite = Suite::load_small(1);
    let plain = format!(
        "{}\n{}\n",
        table1(&suite).render(),
        fig6(&suite, &MachineModel::model_4u()).render()
    );
    // ... versus the contained runner with checkpointing off and on.
    let off = contained_merged(None);
    let dir = std::env::temp_dir().join(format!("tgc-det-ckpt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let on = contained_merged(Some(dir.clone()));
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(plain, off, "containment must not change results");
    assert_eq!(off, on, "checkpointing must not change results");
}
