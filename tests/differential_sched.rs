//! Differential test of the optimized list scheduler against the retained
//! seed implementation (`schedule_with_ddg_reference`, debug-only).
//!
//! The optimized scheduler (CSR DDG, indexed ready queue with packed sort
//! keys, union-find aliasing) is a pure data-layout rewrite: on every
//! input it must produce the *identical* schedule — same `cycles`, same
//! `exit_cycles`, same `eliminated` pairs, same `reg_alias` map. This
//! suite asserts that over the checked-in fuzz repro corpus
//! (`testdata/repros/*.tir`) plus 200 fresh `generate_fuzz` modules, for
//! all four paper heuristics plus the register-pressure extension × both
//! tie-break modes × dominator parallelism on and off, on both an
//! unconstrained 8-wide machine and a resource-limited one (the
//! limit-deferral path is where a queue rewrite would diverge).
#![cfg(debug_assertions)]

use treegion_suite::analysis::{Cfg, Liveness};
use treegion_suite::prelude::*;
use treegion_suite::treegion::{lower_region, schedule_with_ddg, schedule_with_ddg_reference, Ddg};
use treegion_suite::workloads::generate_fuzz;

/// Machines under test: the paper's three universal machines, a
/// constrained variant whose branch/memory limits force ops through the
/// deferral path, and the asymmetric preset (per-class fdiv/mem/branch
/// units) only the hazard automaton can express.
fn machines() -> Vec<MachineModel> {
    vec![
        MachineModel::model_1u(),
        MachineModel::model_4u(),
        MachineModel::model_8u(),
        MachineModel::builder("4b1m1", 4)
            .branch_limit(Some(1))
            .mem_ports(Some(1))
            .build(),
        MachineModel::model_4u_asym(),
    ]
}

/// Compares optimized vs reference over every configuration for one
/// formed function; panics with the configuration tag on divergence.
fn check_function(tag: &str, f: &Function, regions: &RegionSet, origin: Option<&[BlockId]>) {
    let cfg = Cfg::new(f);
    let live = Liveness::new(f, &cfg);
    for (ri, region) in regions.regions().iter().enumerate() {
        let lr = lower_region(f, region, &live, origin);
        // The four paper heuristics plus the register-pressure extension:
        // at unbounded files RegPressure only changes the priority key, so
        // it must hold the same fast/reference identity as the others.
        let heuristics: Vec<Heuristic> = Heuristic::ALL
            .into_iter()
            .chain([Heuristic::RegPressure])
            .collect();
        for m in machines() {
            let ddg = Ddg::build(&lr, &m);
            for &heuristic in &heuristics {
                for tie_break in [TieBreak::SourceOrder, TieBreak::RoundRobin] {
                    for dominator_parallelism in [false, true] {
                        let opts = ScheduleOptions {
                            heuristic,
                            dominator_parallelism,
                            tie_break,
                        };
                        let fast = schedule_with_ddg(&lr, &ddg, &m, &opts);
                        let reference = schedule_with_ddg_reference(&lr, &ddg, &m, &opts);
                        let ctx = format!(
                            "{tag} region {ri} {m} {heuristic} {tie_break:?} dompar={dominator_parallelism}"
                        );
                        assert_eq!(fast.cycles, reference.cycles, "cycles diverged: {ctx}");
                        assert_eq!(
                            fast.exit_cycles, reference.exit_cycles,
                            "exit_cycles diverged: {ctx}"
                        );
                        assert_eq!(
                            fast.eliminated, reference.eliminated,
                            "eliminated diverged: {ctx}"
                        );
                        assert_eq!(
                            fast.reg_alias, reference.reg_alias,
                            "reg_alias diverged: {ctx}"
                        );
                        assert_eq!(
                            fast.cycle_of, reference.cycle_of,
                            "cycle_of diverged: {ctx}"
                        );
                    }
                }
            }
        }
    }
}

/// All the region shapes the pipeline schedules: plain treegions (no
/// duplicate origins) and tail-duplicated treegions (twins for dominator
/// parallelism to eliminate).
fn check_all_formers(tag: &str, f: &Function) {
    check_function(&format!("{tag}/treegion"), f, &form_treegions(f), None);
    let td = form_treegions_td(f, &TailDupLimits::expansion_2_0());
    check_function(
        &format!("{tag}/treegion-td"),
        &td.function,
        &td.regions,
        Some(&td.origin),
    );
}

#[test]
fn optimized_scheduler_matches_reference_on_fuzz_seeds() {
    let seeds: Vec<u64> = (0..200).map(|i| 0xD1F_0000 + i).collect();
    treegion_par::par_map(&seeds, |&seed| {
        let module = generate_fuzz(seed);
        for f in module.functions() {
            check_all_formers(&format!("seed {seed:#x}"), f);
        }
    });
}

#[test]
fn optimized_scheduler_matches_reference_on_saved_repros() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("testdata/repros");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no repros yet
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "tir") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let module = parse_module(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        for f in module.functions() {
            check_all_formers(&path.display().to_string(), f);
        }
    }
}
