//! Differential testing over seeded random programs: every region scheme ×
//! heuristic × machine must produce schedules whose VLIW execution is
//! architecturally equivalent to the sequential interpreter — same return
//! value, same final memory. Tail duplication must additionally preserve
//! the semantics of the *transformed* function.
//!
//! These were originally proptest properties; they are now plain seeded
//! loops (the workspace builds hermetically, without crates.io), which
//! keeps them deterministic and the failing seed printable.

use treegion_rng::StdRng;
use treegion_suite::prelude::*;

fn modules(seed: u64) -> Module {
    let mut spec = BenchmarkSpec::tiny(seed);
    spec.functions = 1;
    generate(&spec)
}

#[allow(clippy::too_many_arguments)]
fn check_scheme(
    f: &Function,
    regions: &RegionSet,
    origin: Option<&[BlockId]>,
    machine: &MachineModel,
    heuristic: Heuristic,
    dompar: bool,
    expected: &treegion_suite::sim::ExecResult,
    seed: u64,
) {
    let prog = VliwProgram::compile(
        f,
        regions,
        machine,
        &ScheduleOptions {
            heuristic,
            dominator_parallelism: dompar,
            ..Default::default()
        },
        origin,
    );
    let got = prog
        .execute(State::new(), 1_000_000)
        .expect("vliw execution");
    assert_eq!(got.ret, expected.ret, "return value diverged (seed {seed})");
    assert_eq!(
        got.state.mem, expected.state.mem,
        "final memory diverged (seed {seed})"
    );
    // The dynamic cycle count must be positive.
    assert!(got.cycles > 0, "seed {seed}");
}

#[test]
fn all_schemes_preserve_semantics() {
    let mut rng = StdRng::seed_from_u64(0xE0_0001);
    for _ in 0..24 {
        let seed = rng.gen_range(0u64..10_000);
        let module = modules(seed);
        let f = &module.functions()[0];
        let expected = interpret(f, State::new(), 1_000_000).expect("interp");
        for machine in [
            MachineModel::model_1u(),
            MachineModel::model_4u(),
            MachineModel::model_8u(),
        ] {
            for heuristic in Heuristic::ALL {
                let bb = form_basic_blocks(f);
                check_scheme(f, &bb, None, &machine, heuristic, false, &expected, seed);
                let slr = form_slrs(f);
                check_scheme(f, &slr, None, &machine, heuristic, false, &expected, seed);
                let tree = form_treegions(f);
                check_scheme(f, &tree, None, &machine, heuristic, false, &expected, seed);
            }
        }
    }
}

#[test]
fn tail_duplication_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0xE0_0002);
    for _ in 0..24 {
        let seed = rng.gen_range(0u64..10_000);
        let module = modules(seed);
        let f = &module.functions()[0];
        let expected = interpret(f, State::new(), 1_000_000).expect("interp");
        let machine = MachineModel::model_4u();

        // Superblock transformation: the transformed function itself must
        // be equivalent, and so must its schedules.
        let sb = form_superblocks(f);
        let transformed = interpret(&sb.function, State::new(), 1_000_000).expect("sb interp");
        assert_eq!(transformed.ret, expected.ret, "seed {seed}");
        assert_eq!(&transformed.state.mem, &expected.state.mem, "seed {seed}");
        check_scheme(
            &sb.function,
            &sb.regions,
            Some(&sb.origin),
            &machine,
            Heuristic::GlobalWeight,
            false,
            &expected,
            seed,
        );

        // Treegion tail duplication, with dominator parallelism on.
        for limits in [
            TailDupLimits::expansion_2_0(),
            TailDupLimits::expansion_3_0(),
        ] {
            let td = form_treegions_td(f, &limits);
            let transformed = interpret(&td.function, State::new(), 1_000_000).expect("td interp");
            assert_eq!(transformed.ret, expected.ret, "seed {seed}");
            assert_eq!(&transformed.state.mem, &expected.state.mem, "seed {seed}");
            for dompar in [false, true] {
                check_scheme(
                    &td.function,
                    &td.regions,
                    Some(&td.origin),
                    &machine,
                    Heuristic::GlobalWeight,
                    dompar,
                    &expected,
                    seed,
                );
            }
        }
    }
}

#[test]
fn estimated_time_is_monotone_in_issue_width() {
    let mut rng = StdRng::seed_from_u64(0xE0_0003);
    for _ in 0..24 {
        let seed = rng.gen_range(0u64..10_000);
        let module = modules(seed);
        let f = &module.functions()[0];
        let regions = form_treegions(f);
        let mut last = f64::INFINITY;
        for width in [1usize, 2, 4, 8, 16] {
            let machine = MachineModel::builder(format!("{width}U"), width).build();
            let pipeline = Pipeline::with_options(
                &machine,
                RobustOptions {
                    sched: ScheduleOptions {
                        heuristic: Heuristic::DependenceHeight,
                        dominator_parallelism: false,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            let time: f64 = pipeline
                .schedule_set(f, &regions, None, &NullObserver)
                .iter()
                .map(|s| s.schedule.estimated_time(&s.lowered))
                .sum();
            assert!(
                time <= last + 1e-6,
                "width {width} slower: {time} > {last} (seed {seed})"
            );
            last = time;
        }
    }
}
