//! Property-based differential testing: for arbitrary generated programs,
//! every region scheme × heuristic × machine must produce schedules whose
//! VLIW execution is architecturally equivalent to the sequential
//! interpreter — same return value, same final memory. Tail duplication
//! must additionally preserve the semantics of the *transformed* function.

use proptest::prelude::*;
use treegion_suite::prelude::*;

fn modules(seed: u64) -> Module {
    let mut spec = BenchmarkSpec::tiny(seed);
    spec.functions = 1;
    generate(&spec)
}

fn check_scheme(
    f: &Function,
    regions: &RegionSet,
    origin: Option<&[BlockId]>,
    machine: &MachineModel,
    heuristic: Heuristic,
    dompar: bool,
    expected: &treegion_suite::sim::ExecResult,
) {
    let prog = VliwProgram::compile(
        f,
        regions,
        machine,
        &ScheduleOptions {
            heuristic,
            dominator_parallelism: dompar,
            ..Default::default()
        },
        origin,
    );
    let got = prog
        .execute(State::new(), 1_000_000)
        .expect("vliw execution");
    assert_eq!(got.ret, expected.ret, "return value diverged");
    assert_eq!(got.state.mem, expected.state.mem, "final memory diverged");
    // The analytic estimate and the dynamic count must both be positive.
    assert!(got.cycles > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_schemes_preserve_semantics(seed in 0u64..10_000) {
        let module = modules(seed);
        let f = &module.functions()[0];
        let expected = interpret(f, State::new(), 1_000_000).expect("interp");
        for machine in [MachineModel::model_1u(), MachineModel::model_4u(), MachineModel::model_8u()] {
            for heuristic in Heuristic::ALL {
                let bb = form_basic_blocks(f);
                check_scheme(f, &bb, None, &machine, heuristic, false, &expected);
                let slr = form_slrs(f);
                check_scheme(f, &slr, None, &machine, heuristic, false, &expected);
                let tree = form_treegions(f);
                check_scheme(f, &tree, None, &machine, heuristic, false, &expected);
            }
        }
    }

    #[test]
    fn tail_duplication_preserves_semantics(seed in 0u64..10_000) {
        let module = modules(seed);
        let f = &module.functions()[0];
        let expected = interpret(f, State::new(), 1_000_000).expect("interp");
        let machine = MachineModel::model_4u();

        // Superblock transformation: the transformed function itself must
        // be equivalent, and so must its schedules.
        let sb = form_superblocks(f);
        let transformed = interpret(&sb.function, State::new(), 1_000_000).expect("sb interp");
        prop_assert_eq!(transformed.ret, expected.ret);
        prop_assert_eq!(&transformed.state.mem, &expected.state.mem);
        check_scheme(
            &sb.function,
            &sb.regions,
            Some(&sb.origin),
            &machine,
            Heuristic::GlobalWeight,
            false,
            &expected,
        );

        // Treegion tail duplication, with dominator parallelism on.
        for limits in [TailDupLimits::expansion_2_0(), TailDupLimits::expansion_3_0()] {
            let td = form_treegions_td(f, &limits);
            let transformed =
                interpret(&td.function, State::new(), 1_000_000).expect("td interp");
            prop_assert_eq!(transformed.ret, expected.ret);
            prop_assert_eq!(&transformed.state.mem, &expected.state.mem);
            for dompar in [false, true] {
                check_scheme(
                    &td.function,
                    &td.regions,
                    Some(&td.origin),
                    &machine,
                    Heuristic::GlobalWeight,
                    dompar,
                    &expected,
                );
            }
        }
    }

    #[test]
    fn estimated_time_is_monotone_in_issue_width(seed in 0u64..10_000) {
        let module = modules(seed);
        let f = &module.functions()[0];
        let regions = form_treegions(f);
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let mut last = f64::INFINITY;
        for width in [1usize, 2, 4, 8, 16] {
            let machine = MachineModel::builder(format!("{width}U"), width).build();
            let time: f64 = regions
                .regions()
                .iter()
                .map(|r| {
                    let lowered = lower_region(f, r, &live, None);
                    schedule_region(
                        &lowered,
                        &machine,
                        &ScheduleOptions {
                            heuristic: Heuristic::DependenceHeight,
                            dominator_parallelism: false,
                            ..Default::default()
                        },
                    )
                    .estimated_time(&lowered)
                })
                .sum();
            prop_assert!(
                time <= last + 1e-6,
                "width {width} slower: {time} > {last}"
            );
            last = time;
        }
    }
}
