//! Soundness of the precomputed resource-hazard automaton against a
//! brute-force counter simulation.
//!
//! Two properties over fuzzed schedules on every machine preset:
//!
//! 1. **Replay**: every cycle of every produced schedule replays through
//!    the automaton from the start state — no cycle exceeds the issue
//!    width or any class's unit count.
//! 2. **Exactness**: at every state reached during replay, `go` accepts a
//!    class *iff* a brute-force counter simulation (total slots + one
//!    counter per limited class) would accept it. The automaton is not
//!    merely conservative — it encodes the limits exactly.

use treegion_suite::analysis::{Cfg, Liveness};
use treegion_suite::machine::OpClass;
use treegion_suite::prelude::*;
use treegion_suite::treegion::lower_region;
use treegion_suite::workloads::generate_fuzz;

fn machines() -> Vec<MachineModel> {
    vec![
        MachineModel::model_1u(),
        MachineModel::model_4u(),
        MachineModel::model_8u(),
        MachineModel::builder("4b1m1", 4)
            .branch_limit(Some(1))
            .mem_ports(Some(1))
            .build(),
        MachineModel::model_4u_asym(),
    ]
}

/// Would the brute-force counters admit one more op of `class`?
fn counters_accept(m: &MachineModel, used: &[usize; OpClass::COUNT], class: OpClass) -> bool {
    let total: usize = used.iter().sum();
    total < m.issue_width()
        && m.unit_limit(class)
            .is_none_or(|limit| used[class.index()] < limit)
}

/// Replays one schedule cycle-by-cycle through the automaton, checking
/// both properties at every step.
fn replay(tag: &str, lr: &treegion_suite::treegion::LoweredRegion, s: &Schedule, m: &MachineModel) {
    let auto = m.hazard_automaton();
    for (c, row) in s.cycles.iter().enumerate() {
        let mut state = auto.start();
        let mut used = [0usize; OpClass::COUNT];
        for &i in row {
            // Exactness: probe every class before consuming the real op.
            for class in OpClass::ALL {
                assert_eq!(
                    auto.go(state, class).is_some(),
                    counters_accept(m, &used, class),
                    "{tag}: cycle {c} state disagrees with counters on {class:?} at {used:?}"
                );
            }
            let class = OpClass::of(lr.lops[i].op.opcode);
            state = auto.go(state, class).unwrap_or_else(|| {
                panic!("{tag}: cycle {c} overflows {class:?} at {used:?} (op {i})")
            });
            used[class.index()] += 1;
        }
        // Exactness also at the cycle's final state.
        for class in OpClass::ALL {
            assert_eq!(
                auto.go(state, class).is_some(),
                counters_accept(m, &used, class),
                "{tag}: cycle {c} final state disagrees on {class:?} at {used:?}"
            );
        }
    }
}

#[test]
fn fuzz_schedules_replay_through_the_automaton() {
    let seeds: Vec<u64> = (0..60).map(|i| 0xA070_0000 + i).collect();
    treegion_par::par_map(&seeds, |&seed| {
        let module = generate_fuzz(seed);
        for f in module.functions() {
            let set = form_treegions(f);
            let cfg = Cfg::new(f);
            let live = Liveness::new(f, &cfg);
            for region in set.regions() {
                let lr = lower_region(f, region, &live, None);
                for m in machines() {
                    for heuristic in Heuristic::ALL {
                        let s = schedule_region(
                            &lr,
                            &m,
                            &ScheduleOptions {
                                heuristic,
                                dominator_parallelism: false,
                                tie_break: TieBreak::SourceOrder,
                            },
                        );
                        replay(&format!("seed {seed:#x} {m} {heuristic}"), &lr, &s, &m);
                    }
                }
            }
        }
    });
}
