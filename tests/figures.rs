//! Shape assertions for the paper's figures: the qualitative claims that
//! must hold for the reproduction to be faithful. Fast variants run on
//! micro-shapes and one small benchmark; the full-suite checks mirror
//! EXPERIMENTS.md and run with `cargo test --release -- --ignored`.

use treegion_suite::prelude::*;

fn module_time(
    module: &Module,
    machine: &MachineModel,
    heuristic: Heuristic,
    form: impl Fn(&Function) -> RegionSet,
) -> f64 {
    let pipeline = Pipeline::with_options(
        machine,
        RobustOptions {
            sched: ScheduleOptions {
                heuristic,
                dominator_parallelism: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    module
        .functions()
        .iter()
        .map(|f| {
            let regions = form(f);
            pipeline
                .schedule_set(f, &regions, None, &NullObserver)
                .iter()
                .map(|s| s.schedule.estimated_time(&s.lowered))
                .sum::<f64>()
        })
        .sum()
}

/// Figures 4/5: the treegion schedule of the Figure 1 example beats the
/// superblock schedule.
#[test]
fn worked_example_treegion_beats_superblock() {
    let (f, _) = shapes::figure1();
    let machine = MachineModel::model_4u();
    let sb = form_superblocks(&f);
    let sb_time: f64 = Pipeline::new(&machine)
        .schedule_set(&sb.function, &sb.regions, Some(&sb.origin), &NullObserver)
        .iter()
        .map(|s| s.schedule.estimated_time(&s.lowered))
        .sum();
    let tree_time = module_time(
        &{
            let mut m = Module::new("fig1");
            m.add_function(f.clone());
            m
        },
        &machine,
        Heuristic::GlobalWeight,
        form_treegions,
    );
    assert!(
        tree_time <= sb_time,
        "treegion {tree_time} must not lose to superblock {sb_time}"
    );
}

/// Figure 6 on a small benchmark at 8 issue: treegions beat SLRs, which
/// beat basic blocks.
#[test]
fn fig6_ordering_holds_at_8_issue() {
    let module = generate(&spec_suite()[0]); // compress: small & fast
    let m8 = MachineModel::model_8u();
    let bb = module_time(&module, &m8, Heuristic::DependenceHeight, form_basic_blocks);
    let slr = module_time(&module, &m8, Heuristic::DependenceHeight, form_slrs);
    let tree = module_time(&module, &m8, Heuristic::DependenceHeight, form_treegions);
    assert!(tree < slr, "tree {tree} !< slr {slr}");
    assert!(slr < bb, "slr {slr} !< bb {bb}");
}

/// Figure 8's headline: global weight is the best heuristic overall.
#[test]
fn global_weight_wins_on_compress() {
    let module = generate(&spec_suite()[0]);
    let m4 = MachineModel::model_4u();
    let times: Vec<f64> = Heuristic::ALL
        .into_iter()
        .map(|h| module_time(&module, &m4, h, form_treegions))
        .collect();
    let gw = times[2]; // global weight
    for (h, &t) in Heuristic::ALL.iter().zip(&times) {
        assert!(gw <= t * 1.001, "global weight ({gw}) lost to {h} ({t})");
    }
}

/// Figure 9's mechanism: on a wide, shallow treegion with the hot case
/// carrying the weight but cold cases carrying the exits, the exit-count
/// heuristic must not beat global weight.
#[test]
fn exit_count_flaw_on_wide_shallow_shape() {
    let (f, _) = shapes::wide_shallow(12);
    let mut m = Module::new("fig9");
    m.add_function(f);
    let m4 = MachineModel::model_4u();
    let ec = module_time(&m, &m4, Heuristic::ExitCount, form_treegions);
    let gw = module_time(&m, &m4, Heuristic::GlobalWeight, form_treegions);
    assert!(gw <= ec, "global weight {gw} must be <= exit count {ec}");
}

/// Figure 10's mechanism: on a linearized equal-weight treegion with the
/// hot exit at the bottom, global weight must not lose to weighted count.
#[test]
fn weighted_count_flaw_on_linearized_shape() {
    let (f, _) = shapes::linearized(8);
    let mut m = Module::new("fig10");
    m.add_function(f);
    let m4 = MachineModel::model_4u();
    let wc = module_time(&m, &m4, Heuristic::WeightedCount, form_treegions);
    let gw = module_time(&m, &m4, Heuristic::GlobalWeight, form_treegions);
    assert!(
        gw <= wc,
        "global weight {gw} must be <= weighted count {wc}"
    );
}

/// Table 1 vs Table 2 on a small benchmark: treegions contain more blocks
/// and more ops than SLRs.
#[test]
fn treegions_are_larger_than_slrs() {
    let module = generate(&spec_suite()[0]);
    let (mut tree_blocks, mut tree_regions) = (0usize, 0usize);
    let (mut slr_blocks, mut slr_regions) = (0usize, 0usize);
    for f in module.functions() {
        let t = form_treegions(f);
        tree_regions += t.len();
        tree_blocks += t.regions().iter().map(Region::num_blocks).sum::<usize>();
        let s = form_slrs(f);
        slr_regions += s.len();
        slr_blocks += s.regions().iter().map(Region::num_blocks).sum::<usize>();
    }
    let tree_avg = tree_blocks as f64 / tree_regions as f64;
    let slr_avg = slr_blocks as f64 / slr_regions as f64;
    assert!(tree_avg > slr_avg, "{tree_avg} !> {slr_avg}");
    assert!(tree_avg > 2.0, "treegions too small: {tree_avg}");
    assert!(slr_avg < 2.0, "SLRs too large: {slr_avg}");
}

/// Table 3's ordering on a small benchmark: superblock expansion below
/// treegion(2.0) expansion below treegion(3.0); all moderate.
#[test]
fn code_expansion_ordering() {
    let module = generate(&spec_suite()[0]);
    let mut expansions = Vec::new();
    for f in module.functions() {
        let orig = f.num_ops() as f64;
        let sb = form_superblocks(f).function.num_ops() as f64 / orig;
        let t2 = form_treegions_td(f, &TailDupLimits::expansion_2_0())
            .function
            .num_ops() as f64
            / orig;
        let t3 = form_treegions_td(f, &TailDupLimits::expansion_3_0())
            .function
            .num_ops() as f64
            / orig;
        expansions.push((sb, t2, t3));
    }
    let n = expansions.len() as f64;
    let (sb, t2, t3) = expansions.iter().fold((0.0, 0.0, 0.0), |acc, e| {
        (acc.0 + e.0 / n, acc.1 + e.1 / n, acc.2 + e.2 / n)
    });
    assert!(sb < t2, "sb {sb} !< tree2 {t2}");
    assert!(t2 <= t3, "tree2 {t2} !<= tree3 {t3}");
    assert!(t3 <= 3.0, "tree3 expansion immoderate: {t3}");
}

/// Full-suite Figure 13 check (slow; run with `--release -- --ignored`):
/// tail-duplicated treegions with global weight + dominator parallelism
/// beat superblocks at 8 issue on average.
#[test]
#[ignore = "full suite; run with cargo test --release -- --ignored"]
fn fig13_treegions_beat_superblocks_at_8_issue() {
    use treegion_suite::eval::{fig13, Suite};
    let suite = Suite::load();
    let t = fig13(&suite, &MachineModel::model_8u());
    let avg = t.rows.last().unwrap();
    let sb: f64 = avg[1].parse().unwrap();
    let t2: f64 = avg[2].parse().unwrap();
    let t3: f64 = avg[3].parse().unwrap();
    assert!(t2 > sb, "tree(2.0) {t2} !> sb {sb}");
    assert!(t3 > sb, "tree(3.0) {t3} !> sb {sb}");
}
