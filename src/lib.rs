//! # treegion-suite
//!
//! Umbrella crate for the reproduction of *"Treegion Scheduling for Wide
//! Issue Processors"* (Havanki, Banerjia, Conte — HPCA 1998).
//!
//! Re-exports the whole workspace under one roof so the examples and the
//! integration tests can use a single dependency:
//!
//! * [`ir`] — the compiler IR substrate (blocks, ops, profile counts).
//! * [`machine`] — PlayDoh-style VLIW machine models (1U/4U/8U).
//! * [`analysis`] — dominators, liveness, loops.
//! * [`treegion`] — the paper's contribution: region formation (treegion,
//!   SLR, superblock, tail duplication) and the treegion scheduler with
//!   its four heuristics.
//! * [`sim`] — sequential interpreter + VLIW schedule executor.
//! * [`workloads`] — synthetic SPECint95-style benchmark generators.
//! * [`eval`] — the experiment harness regenerating every table/figure,
//!   with formation/lowering caches and parallel fan-out.
//! * [`par`] — the hermetic scoped thread pool behind `--jobs N`.
//!
//! See README.md for a tour and DESIGN.md for the architecture.
//!
//! ## Quickstart
//!
//! ```
//! use treegion_suite::prelude::*;
//!
//! // Build a small branchy function, form treegions, schedule on the
//! // 4-issue machine with the paper's best heuristic.
//! let mut b = FunctionBuilder::new("demo");
//! let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
//! let (x, y, c) = (b.gpr(), b.gpr(), b.gpr());
//! b.push_all(bb0, [Op::movi(x, 1), Op::movi(y, 2), Op::cmp(Cond::Lt, c, x, y)]);
//! b.branch(bb0, c, (bb1, 70.0), (bb2, 30.0));
//! b.ret(bb1, Some(x));
//! b.ret(bb2, Some(y));
//! let f = b.finish();
//!
//! let machine = MachineModel::model_4u();
//! let pipeline = Pipeline::new(&machine);
//! let (formed, scheds) = pipeline.schedule_function(&f, &RegionConfig::Treegion, &NullObserver);
//! assert_eq!(scheds.len(), formed.regions.len());
//! let total: f64 = scheds.iter().map(|s| s.schedule.estimated_time(&s.lowered)).sum();
//! assert!(total > 0.0);
//! ```
//!
//! The [`treegion::Pipeline`] driver owns the whole formation →
//! lowering → DDG → list-scheduling → verification chain; a
//! [`treegion::PassObserver`] sees every stage (see DESIGN.md §11).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use treegion;
pub use treegion_analysis as analysis;
pub use treegion_eval as eval;
pub use treegion_ir as ir;
pub use treegion_machine as machine;
pub use treegion_par as par;
pub use treegion_sim as sim;
pub use treegion_workloads as workloads;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use treegion::{
        form_basic_blocks, form_slrs, form_superblocks, form_treegions, form_treegions_td,
        lower_region, render_schedule, schedule_region, FormOutcome, Heuristic, LoweredRegion,
        NullObserver, PassObserver, Pipeline, Profiler, Region, RegionConfig, RegionFormer,
        RegionKind, RegionSchedule, RegionSet, RobustOptions, Schedule, ScheduleOptions, Stage,
        StageScope, StageStats, TailDupLimits, TieBreak,
    };
    pub use treegion_analysis::{Cfg, DomTree, Liveness, Loops};
    pub use treegion_ir::{
        parse_module, print_function, print_module, verify_function, Block, BlockId, Cond, Edge,
        Function, FunctionBuilder, Module, Op, Opcode, Reg, RegClass, Terminator,
    };
    pub use treegion_machine::MachineModel;
    pub use treegion_sim::{interpret, State, VliwProgram};
    pub use treegion_workloads::{generate, shapes, spec_suite, BenchmarkSpec};
}
