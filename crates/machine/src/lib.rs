//! # treegion-machine
//!
//! Machine models for the reproduction of *"Treegion Scheduling for Wide
//! Issue Processors"* (HPCA 1998).
//!
//! The paper evaluates on statically-scheduled VLIW machines with
//! *universal*, fully-pipelined functional units:
//!
//! * **1U** — single-issue baseline (the speedup denominator),
//! * **4U** — four-issue,
//! * **8U** — eight-issue.
//!
//! All operations have unit latency except loads (2 cycles), floating-point
//! multiply (3 cycles), and floating-point divide (9 cycles). Memory
//! operations are serialized because no aliasing information is available,
//! but — the machines being PlayDoh-style — a store and a dependent memory
//! operation may be scheduled in the same cycle (dependence latency 0).
//!
//! ## Example
//!
//! ```
//! use treegion_machine::MachineModel;
//! use treegion_ir::Opcode;
//!
//! let m4 = MachineModel::model_4u();
//! assert_eq!(m4.issue_width(), 4);
//! assert_eq!(m4.latency(Opcode::Load), 2);
//! assert_eq!(m4.latency(Opcode::FDiv), 9);
//! assert_eq!(m4.latency(Opcode::Add), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use treegion_ir::Opcode;

/// A statically-scheduled VLIW machine description.
///
/// Use the named constructors for the paper's models, or
/// [`MachineModel::builder`] for ablation variants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineModel {
    name: String,
    issue_width: usize,
    load_latency: u32,
    fmul_latency: u32,
    fdiv_latency: u32,
    mem_dep_same_cycle: bool,
    branch_limit: Option<usize>,
    mem_port_limit: Option<usize>,
}

impl MachineModel {
    /// The single-issue baseline machine (1U). Program performance under
    /// basic-block scheduling on this machine is the paper's speedup
    /// denominator.
    pub fn model_1u() -> Self {
        MachineModel::builder("1U", 1).build()
    }

    /// The four-issue machine (4U).
    pub fn model_4u() -> Self {
        MachineModel::builder("4U", 4).build()
    }

    /// The eight-issue machine (8U).
    pub fn model_8u() -> Self {
        MachineModel::builder("8U", 8).build()
    }

    /// Starts building a custom machine named `name` with the given issue
    /// width, using the paper's latency defaults.
    ///
    /// # Panics
    ///
    /// Panics if `issue_width` is zero.
    pub fn builder(name: impl Into<String>, issue_width: usize) -> MachineModelBuilder {
        assert!(issue_width > 0, "issue width must be positive");
        MachineModelBuilder {
            model: MachineModel {
                name: name.into(),
                issue_width,
                load_latency: 2,
                fmul_latency: 3,
                fdiv_latency: 9,
                mem_dep_same_cycle: true,
                branch_limit: None,
                mem_port_limit: None,
            },
        }
    }

    /// The machine's name (`"4U"` etc.).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operations issued per cycle (MultiOp width).
    pub fn issue_width(&self) -> usize {
        self.issue_width
    }

    /// The latency, in cycles, from issue of `op` to availability of its
    /// results. Unit latency for everything except loads, `fmul`, `fdiv`.
    pub fn latency(&self, op: Opcode) -> u32 {
        match op {
            Opcode::Load => self.load_latency,
            Opcode::FMul => self.fmul_latency,
            Opcode::FDiv => self.fdiv_latency,
            _ => 1,
        }
    }

    /// Latency of a memory-serialization dependence (store → dependent
    /// memory op). 0 on PlayDoh-style machines — they may share a cycle —
    /// otherwise 1.
    pub fn mem_dep_latency(&self) -> u32 {
        if self.mem_dep_same_cycle {
            0
        } else {
            1
        }
    }

    /// Maximum branches per cycle, or `None` for unlimited (the paper:
    /// "providing the architecture allows it").
    pub fn branch_limit(&self) -> Option<usize> {
        self.branch_limit
    }

    /// Maximum memory operations (loads/stores/calls) per cycle, or
    /// `None` for unlimited. The paper's machines have universal units;
    /// this knob models the memory-ported machines an implementation
    /// would actually build, for the ablation benches.
    pub fn mem_port_limit(&self) -> Option<usize> {
        self.mem_port_limit
    }
}

impl fmt::Display for MachineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}-issue universal)", self.name, self.issue_width)
    }
}

/// Builder for custom [`MachineModel`]s (ablation studies).
#[derive(Clone, Debug)]
pub struct MachineModelBuilder {
    model: MachineModel,
}

impl MachineModelBuilder {
    /// Sets the load latency (paper default: 2).
    pub fn load_latency(mut self, cycles: u32) -> Self {
        self.model.load_latency = cycles;
        self
    }

    /// Sets the floating-point multiply latency (paper default: 3).
    pub fn fmul_latency(mut self, cycles: u32) -> Self {
        self.model.fmul_latency = cycles;
        self
    }

    /// Sets the floating-point divide latency (paper default: 9).
    pub fn fdiv_latency(mut self, cycles: u32) -> Self {
        self.model.fdiv_latency = cycles;
        self
    }

    /// Sets whether a store and a dependent memory op may share a cycle
    /// (PlayDoh behaviour; paper default: true).
    pub fn mem_dep_same_cycle(mut self, yes: bool) -> Self {
        self.model.mem_dep_same_cycle = yes;
        self
    }

    /// Limits branches per cycle (paper default: unlimited).
    pub fn branch_limit(mut self, limit: Option<usize>) -> Self {
        self.model.branch_limit = limit;
        self
    }

    /// Limits memory operations per cycle (paper default: unlimited).
    pub fn mem_ports(mut self, limit: Option<usize>) -> Self {
        self.model.mem_port_limit = limit;
        self
    }

    /// Finishes the model.
    pub fn build(self) -> MachineModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treegion_ir::Cond;

    #[test]
    fn paper_models_have_paper_parameters() {
        for (m, w) in [
            (MachineModel::model_1u(), 1),
            (MachineModel::model_4u(), 4),
            (MachineModel::model_8u(), 8),
        ] {
            assert_eq!(m.issue_width(), w);
            assert_eq!(m.latency(Opcode::Load), 2);
            assert_eq!(m.latency(Opcode::FMul), 3);
            assert_eq!(m.latency(Opcode::FDiv), 9);
            assert_eq!(m.latency(Opcode::Add), 1);
            assert_eq!(m.latency(Opcode::Store), 1);
            assert_eq!(m.latency(Opcode::Cmpp(Cond::Gt)), 1);
            assert_eq!(m.mem_dep_latency(), 0);
            assert_eq!(m.branch_limit(), None);
            assert_eq!(m.mem_port_limit(), None);
        }
    }

    #[test]
    fn builder_overrides_apply() {
        let m = MachineModel::builder("custom", 6)
            .load_latency(4)
            .mem_dep_same_cycle(false)
            .branch_limit(Some(2))
            .mem_ports(Some(2))
            .build();
        assert_eq!(m.issue_width(), 6);
        assert_eq!(m.latency(Opcode::Load), 4);
        assert_eq!(m.mem_dep_latency(), 1);
        assert_eq!(m.branch_limit(), Some(2));
        assert_eq!(m.mem_port_limit(), Some(2));
        assert_eq!(m.name(), "custom");
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn zero_issue_width_panics() {
        let _ = MachineModel::builder("bad", 0);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            MachineModel::model_4u().to_string(),
            "4U (4-issue universal)"
        );
    }
}
