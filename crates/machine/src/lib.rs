//! # treegion-machine
//!
//! Machine models for the reproduction of *"Treegion Scheduling for Wide
//! Issue Processors"* (HPCA 1998).
//!
//! The paper evaluates on statically-scheduled VLIW machines with
//! *universal*, fully-pipelined functional units:
//!
//! * **1U** — single-issue baseline (the speedup denominator),
//! * **4U** — four-issue,
//! * **8U** — eight-issue.
//!
//! All operations have unit latency except loads (2 cycles), floating-point
//! multiply (3 cycles), and floating-point divide (9 cycles). Memory
//! operations are serialized because no aliasing information is available,
//! but — the machines being PlayDoh-style — a store and a dependent memory
//! operation may be scheduled in the same cycle (dependence latency 0).
//!
//! ## Example
//!
//! ```
//! use treegion_machine::MachineModel;
//! use treegion_ir::Opcode;
//!
//! let m4 = MachineModel::model_4u();
//! assert_eq!(m4.issue_width(), 4);
//! assert_eq!(m4.latency(Opcode::Load), 2);
//! assert_eq!(m4.latency(Opcode::FDiv), 9);
//! assert_eq!(m4.latency(Opcode::Add), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod hazard;

pub use hazard::{HazardAutomaton, OpClass};

use std::fmt;
use std::sync::Arc;
use treegion_ir::{Opcode, RegClass};

/// Per-class architectural register file sizes.
///
/// `None` for a class means the paper's model: unbounded compile-time
/// renaming registers, the default for every preset (schedules stay
/// byte-identical to the register-oblivious pipeline). `Some(k)` caps the
/// number of simultaneously live values of that class at `k`; the list
/// scheduler then tracks live-range pressure, defers issue at the
/// ceiling, and the lowering layer spills GPRs when deferral alone cannot
/// fit the region.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RegisterFile {
    caps: [Option<u32>; RegClass::ALL.len()],
}

impl RegisterFile {
    /// The unbounded (paper-model) register file: no class is capped.
    pub const UNBOUNDED: RegisterFile = RegisterFile {
        caps: [None; RegClass::ALL.len()],
    };

    /// A file with the same cap on every class.
    pub fn uniform(cap: u32) -> Self {
        RegisterFile {
            caps: [Some(cap); RegClass::ALL.len()],
        }
    }

    /// Sets one class's cap, builder-style.
    pub fn with(mut self, class: RegClass, cap: Option<u32>) -> Self {
        self.caps[class.index()] = cap;
        self
    }

    /// The cap of one class (`None` = unbounded).
    #[inline]
    pub fn cap(&self, class: RegClass) -> Option<u32> {
        self.caps[class.index()]
    }

    /// `true` if no class is capped (pressure tracking never defers).
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.caps.iter().all(Option::is_none)
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        RegisterFile::UNBOUNDED
    }
}

/// A statically-scheduled VLIW machine description.
///
/// Use the named constructors for the paper's models, or
/// [`MachineModel::builder`] for ablation variants.
///
/// Per-cycle structural resources are a vector of per-class unit counts
/// ([`OpClass`]): `None` means the class draws only on the shared issue
/// width (a universal unit), `Some(k)` caps the class at `k` ops per
/// cycle. The legacy `branch_limit`/`mem_port_limit` knobs are views of
/// the branch and memory entries of that vector. At construction the
/// vector is compiled into a [`HazardAutomaton`] — the dense transition
/// table the list scheduler probes instead of per-op limit conditionals.
#[derive(Clone)]
pub struct MachineModel {
    name: String,
    issue_width: usize,
    load_latency: u32,
    fmul_latency: u32,
    fdiv_latency: u32,
    mem_dep_same_cycle: bool,
    class_units: [Option<usize>; OpClass::COUNT],
    reg_file: RegisterFile,
    /// Derived from the fields above; excluded from `Eq`/`Debug`. Shared
    /// behind an `Arc` so model clones stay two-words-plus-strings cheap.
    automaton: Arc<HazardAutomaton>,
}

impl PartialEq for MachineModel {
    fn eq(&self, other: &Self) -> bool {
        // Configuration only: the automaton is a pure function of it.
        self.name == other.name
            && self.issue_width == other.issue_width
            && self.load_latency == other.load_latency
            && self.fmul_latency == other.fmul_latency
            && self.fdiv_latency == other.fdiv_latency
            && self.mem_dep_same_cycle == other.mem_dep_same_cycle
            && self.class_units == other.class_units
            && self.reg_file == other.reg_file
    }
}

impl Eq for MachineModel {}

impl fmt::Debug for MachineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Configuration fields only — the serve engine keys its cache on
        // `{:?}` of the model, so the derived transition table must not
        // leak into (and bloat) the fingerprint.
        f.debug_struct("MachineModel")
            .field("name", &self.name)
            .field("issue_width", &self.issue_width)
            .field("load_latency", &self.load_latency)
            .field("fmul_latency", &self.fmul_latency)
            .field("fdiv_latency", &self.fdiv_latency)
            .field("mem_dep_same_cycle", &self.mem_dep_same_cycle)
            .field("class_units", &self.class_units)
            .field("reg_file", &self.reg_file)
            .finish()
    }
}

impl MachineModel {
    /// The single-issue baseline machine (1U). Program performance under
    /// basic-block scheduling on this machine is the paper's speedup
    /// denominator.
    pub fn model_1u() -> Self {
        MachineModel::builder("1U", 1).build()
    }

    /// The four-issue machine (4U).
    pub fn model_4u() -> Self {
        MachineModel::builder("4U", 4).build()
    }

    /// The eight-issue machine (8U).
    pub fn model_8u() -> Self {
        MachineModel::builder("8U", 8).build()
    }

    /// An asymmetric four-issue machine: 2 memory ports, 1 branch unit,
    /// 1 floating-point divider, ALUs otherwise universal. The realistic
    /// per-class configuration a wide-issue implementation would actually
    /// build — expressible only through the per-class unit vector (the
    /// old three-counter scheme had no fdiv knob).
    pub fn model_4u_asym() -> Self {
        MachineModel::builder("4U-asym", 4)
            .mem_ports(Some(2))
            .branch_limit(Some(1))
            .units(OpClass::FDiv, Some(1))
            .build()
    }

    /// The four-issue machine with a realistic 64-entry GPR file (the
    /// size of PlayDoh's static general-purpose file). Predicate and
    /// branch-target files stay unbounded — they are cheap one-bit /
    /// few-entry structures, and the pipeline has no way to spill them.
    pub fn model_4u_r64() -> Self {
        MachineModel::model_4u().with_gpr_file(64)
    }

    /// The eight-issue machine with a 64-entry GPR file.
    pub fn model_8u_r64() -> Self {
        MachineModel::model_8u().with_gpr_file(64)
    }

    /// Derives a copy of this machine whose GPR file is capped at `cap`
    /// simultaneously-live registers (name suffixed `+r<cap>`, so cache
    /// fingerprints and reports distinguish the variant). Other classes
    /// keep their existing caps.
    pub fn with_gpr_file(&self, cap: u32) -> MachineModel {
        let mut m = self.clone();
        m.reg_file = m.reg_file.with(RegClass::Gpr, Some(cap));
        m.name = format!("{}+r{cap}", m.name);
        m
    }

    /// Starts building a custom machine named `name` with the given issue
    /// width, using the paper's latency defaults.
    ///
    /// # Panics
    ///
    /// Panics if `issue_width` is zero.
    pub fn builder(name: impl Into<String>, issue_width: usize) -> MachineModelBuilder {
        assert!(issue_width > 0, "issue width must be positive");
        MachineModelBuilder {
            name: name.into(),
            issue_width,
            load_latency: 2,
            fmul_latency: 3,
            fdiv_latency: 9,
            mem_dep_same_cycle: true,
            class_units: [None; OpClass::COUNT],
            reg_file: RegisterFile::UNBOUNDED,
        }
    }

    /// The machine's name (`"4U"` etc.).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operations issued per cycle (MultiOp width).
    pub fn issue_width(&self) -> usize {
        self.issue_width
    }

    /// The latency, in cycles, from issue of `op` to availability of its
    /// results. Unit latency for everything except loads (reloads load),
    /// `fmul`, `fdiv`.
    pub fn latency(&self, op: Opcode) -> u32 {
        match op {
            Opcode::Load | Opcode::Reload => self.load_latency,
            Opcode::FMul => self.fmul_latency,
            Opcode::FDiv => self.fdiv_latency,
            _ => 1,
        }
    }

    /// Latency of a memory-serialization dependence (store → dependent
    /// memory op). 0 on PlayDoh-style machines — they may share a cycle —
    /// otherwise 1.
    pub fn mem_dep_latency(&self) -> u32 {
        if self.mem_dep_same_cycle {
            0
        } else {
            1
        }
    }

    /// Maximum branches per cycle, or `None` for unlimited (the paper:
    /// "providing the architecture allows it").
    pub fn branch_limit(&self) -> Option<usize> {
        self.class_units[OpClass::Branch.index()]
    }

    /// Maximum memory operations (loads/stores/calls) per cycle, or
    /// `None` for unlimited. The paper's machines have universal units;
    /// this knob models the memory-ported machines an implementation
    /// would actually build, for the ablation benches.
    pub fn mem_port_limit(&self) -> Option<usize> {
        self.class_units[OpClass::Mem.index()]
    }

    /// Per-class unit counts, indexed by [`OpClass::index`]; `None` means
    /// the class is limited only by the issue width.
    pub fn class_units(&self) -> &[Option<usize>; OpClass::COUNT] {
        &self.class_units
    }

    /// Units available to one class ([`MachineModel::class_units`] entry).
    pub fn unit_limit(&self, class: OpClass) -> Option<usize> {
        self.class_units[class.index()]
    }

    /// The machine's register file sizes (unbounded by default).
    pub fn reg_file(&self) -> &RegisterFile {
        &self.reg_file
    }

    /// The cap of one register class (`None` = unbounded renaming).
    #[inline]
    pub fn reg_cap(&self, class: RegClass) -> Option<u32> {
        self.reg_file.cap(class)
    }

    /// `true` when any register class is finite, i.e. the scheduler must
    /// track live-range pressure and enforce the ceiling.
    #[inline]
    pub fn has_finite_regs(&self) -> bool {
        !self.reg_file.is_unbounded()
    }

    /// The precomputed resource-hazard automaton for this machine.
    #[inline]
    pub fn hazard_automaton(&self) -> &HazardAutomaton {
        &self.automaton
    }
}

impl fmt::Display for MachineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}-issue universal)", self.name, self.issue_width)
    }
}

/// Builder for custom [`MachineModel`]s (ablation studies).
#[derive(Clone, Debug)]
pub struct MachineModelBuilder {
    name: String,
    issue_width: usize,
    load_latency: u32,
    fmul_latency: u32,
    fdiv_latency: u32,
    mem_dep_same_cycle: bool,
    class_units: [Option<usize>; OpClass::COUNT],
    reg_file: RegisterFile,
}

impl MachineModelBuilder {
    /// Sets the register file sizes (default: unbounded, the paper's
    /// model).
    pub fn reg_file(mut self, rf: RegisterFile) -> Self {
        self.reg_file = rf;
        self
    }

    /// Sets the load latency (paper default: 2).
    pub fn load_latency(mut self, cycles: u32) -> Self {
        self.load_latency = cycles;
        self
    }

    /// Sets the floating-point multiply latency (paper default: 3).
    pub fn fmul_latency(mut self, cycles: u32) -> Self {
        self.fmul_latency = cycles;
        self
    }

    /// Sets the floating-point divide latency (paper default: 9).
    pub fn fdiv_latency(mut self, cycles: u32) -> Self {
        self.fdiv_latency = cycles;
        self
    }

    /// Sets whether a store and a dependent memory op may share a cycle
    /// (PlayDoh behaviour; paper default: true).
    pub fn mem_dep_same_cycle(mut self, yes: bool) -> Self {
        self.mem_dep_same_cycle = yes;
        self
    }

    /// Caps one resource class at `limit` units per cycle (`None` =
    /// limited only by the issue width; the default for every class).
    pub fn units(mut self, class: OpClass, limit: Option<usize>) -> Self {
        self.class_units[class.index()] = limit;
        self
    }

    /// Limits branches per cycle (paper default: unlimited). Shorthand
    /// for [`MachineModelBuilder::units`] on [`OpClass::Branch`].
    pub fn branch_limit(self, limit: Option<usize>) -> Self {
        self.units(OpClass::Branch, limit)
    }

    /// Limits memory operations per cycle (paper default: unlimited).
    /// Shorthand for [`MachineModelBuilder::units`] on [`OpClass::Mem`].
    pub fn mem_ports(self, limit: Option<usize>) -> Self {
        self.units(OpClass::Mem, limit)
    }

    /// Finishes the model: compiles the unit vector into the hazard
    /// automaton and freezes everything.
    pub fn build(self) -> MachineModel {
        let automaton = Arc::new(HazardAutomaton::build(self.issue_width, &self.class_units));
        MachineModel {
            name: self.name,
            issue_width: self.issue_width,
            load_latency: self.load_latency,
            fmul_latency: self.fmul_latency,
            fdiv_latency: self.fdiv_latency,
            mem_dep_same_cycle: self.mem_dep_same_cycle,
            class_units: self.class_units,
            reg_file: self.reg_file,
            automaton,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treegion_ir::Cond;

    #[test]
    fn paper_models_have_paper_parameters() {
        for (m, w) in [
            (MachineModel::model_1u(), 1),
            (MachineModel::model_4u(), 4),
            (MachineModel::model_8u(), 8),
        ] {
            assert_eq!(m.issue_width(), w);
            assert_eq!(m.latency(Opcode::Load), 2);
            assert_eq!(m.latency(Opcode::FMul), 3);
            assert_eq!(m.latency(Opcode::FDiv), 9);
            assert_eq!(m.latency(Opcode::Add), 1);
            assert_eq!(m.latency(Opcode::Store), 1);
            assert_eq!(m.latency(Opcode::Cmpp(Cond::Gt)), 1);
            assert_eq!(m.mem_dep_latency(), 0);
            assert_eq!(m.branch_limit(), None);
            assert_eq!(m.mem_port_limit(), None);
        }
    }

    #[test]
    fn builder_overrides_apply() {
        let m = MachineModel::builder("custom", 6)
            .load_latency(4)
            .mem_dep_same_cycle(false)
            .branch_limit(Some(2))
            .mem_ports(Some(2))
            .build();
        assert_eq!(m.issue_width(), 6);
        assert_eq!(m.latency(Opcode::Load), 4);
        assert_eq!(m.mem_dep_latency(), 1);
        assert_eq!(m.branch_limit(), Some(2));
        assert_eq!(m.mem_port_limit(), Some(2));
        assert_eq!(m.name(), "custom");
    }

    #[test]
    fn asym_preset_has_per_class_units() {
        let m = MachineModel::model_4u_asym();
        assert_eq!(m.issue_width(), 4);
        assert_eq!(m.branch_limit(), Some(1));
        assert_eq!(m.mem_port_limit(), Some(2));
        assert_eq!(m.unit_limit(OpClass::FDiv), Some(1));
        assert_eq!(m.unit_limit(OpClass::Alu), None);
        assert_eq!(m.class_units(), &[None, Some(2), Some(1), Some(1)]);
        // Latencies stay the paper's defaults.
        assert_eq!(m.latency(Opcode::Load), 2);
        assert_eq!(m.latency(Opcode::FDiv), 9);
    }

    #[test]
    fn equality_and_debug_cover_configuration_not_the_automaton() {
        let a = MachineModel::model_4u_asym();
        let b = MachineModel::model_4u_asym();
        assert_eq!(a, b);
        assert_ne!(a, MachineModel::model_4u());
        // The derived transition table stays out of the Debug rendering
        // (the serve cache fingerprints models via `{:?}`).
        let dbg = format!("{a:?}");
        assert!(dbg.contains("class_units"), "{dbg}");
        assert!(dbg.contains("reg_file"), "{dbg}");
        assert!(!dbg.contains("table"), "{dbg}");
        // A finite register file is part of the configuration identity:
        // it must split both equality and the cache fingerprint.
        let r32 = MachineModel::model_4u().with_gpr_file(32);
        assert_ne!(r32, MachineModel::model_4u());
        assert_ne!(
            format!("{r32:?}"),
            format!("{:?}", MachineModel::model_4u())
        );
    }

    #[test]
    fn register_files_default_unbounded_and_derive_cleanly() {
        let m = MachineModel::model_4u();
        assert!(m.reg_file().is_unbounded());
        assert!(!m.has_finite_regs());
        assert_eq!(m.reg_cap(RegClass::Gpr), None);

        let r32 = m.with_gpr_file(32);
        assert!(r32.has_finite_regs());
        assert_eq!(r32.reg_cap(RegClass::Gpr), Some(32));
        assert_eq!(r32.reg_cap(RegClass::Pred), None);
        assert_eq!(r32.name(), "4U+r32");
        // The automaton (per-cycle issue resources) is untouched by the
        // register file, which constrains liveness across cycles instead.
        assert_eq!(
            r32.hazard_automaton().state_count(),
            m.hazard_automaton().state_count()
        );

        let p = MachineModel::model_4u_r64();
        assert_eq!(p.reg_cap(RegClass::Gpr), Some(64));
        assert_eq!(p.name(), "4U+r64");
        assert_eq!(
            MachineModel::model_8u_r64().reg_cap(RegClass::Gpr),
            Some(64)
        );

        let rf = RegisterFile::uniform(16).with(RegClass::Pred, None);
        assert_eq!(rf.cap(RegClass::Gpr), Some(16));
        assert_eq!(rf.cap(RegClass::Pred), None);
        assert_eq!(rf.cap(RegClass::Btr), Some(16));
        assert!(!rf.is_unbounded());
        assert_eq!(RegisterFile::default(), RegisterFile::UNBOUNDED);
        let custom = MachineModel::builder("fin", 2).reg_file(rf).build();
        assert_eq!(custom.reg_cap(RegClass::Btr), Some(16));
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn zero_issue_width_panics() {
        let _ = MachineModel::builder("bad", 0);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            MachineModel::model_4u().to_string(),
            "4U (4-issue universal)"
        );
    }
}
