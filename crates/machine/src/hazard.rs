//! The precomputed resource-hazard automaton.
//!
//! The list scheduler's inner loop used to re-check `issue_width`,
//! `branch_limit`, and `mem_port_limit` with branchy per-op conditionals
//! on every popped ready op. Following the MLRISC
//! `VLIW_SCHEDULING_AUTOMATON` design, the per-cycle resource question —
//! *can one more op of this class issue in the current cycle?* — is
//! instead answered by a finite-state automaton precomputed once per
//! [`crate::MachineModel`]: every reachable per-cycle resource state is
//! enumerated by subset construction over the machine's unit vector and
//! interned into a dense `u16` transition table, so the hot-loop probe is
//! one indexed load (`go(state, class)`), with `u16::MAX` as the hazard
//! sentinel.
//!
//! States stay small because a state is nothing but the vector of
//! per-class issue counts already consumed this cycle, bounded by the
//! issue width and by each class's unit count: a machine with no class
//! limits has exactly `issue_width + 1` states (the total-slots counter),
//! and each finite class limit `l` multiplies the bound by at most
//! `l + 1`. The paper's 8-wide universal machine has 9 states; the
//! asymmetric 4-wide preset ([`crate::MachineModel::model_4u_asym`]) has
//! 36.

use treegion_ir::Opcode;

/// Resource class of an operation — the alphabet of the automaton.
///
/// The classification mirrors exactly the resource distinctions the
/// scheduler has always drawn: branches (the `branch_limit` pool), memory
/// operations including calls (the `mem_port_limit` pool), floating-point
/// divides (their own unit on asymmetric machines), and everything else
/// on the universal ALU pool.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpClass {
    /// Universal ALU / default class.
    Alu = 0,
    /// Memory operations: loads, stores, and calls.
    Mem = 1,
    /// Branches (conditional, unconditional, returns).
    Branch = 2,
    /// Floating-point divide.
    FDiv = 3,
}

impl OpClass {
    /// Number of resource classes.
    pub const COUNT: usize = 4;

    /// All classes, in table order.
    pub const ALL: [OpClass; OpClass::COUNT] =
        [OpClass::Alu, OpClass::Mem, OpClass::Branch, OpClass::FDiv];

    /// Classifies an opcode. Branches are `Opcode::is_branch`; memory is
    /// `Opcode::is_memory` plus `Call` (calls occupy a memory port, as
    /// the scheduler and verifier have always counted them) plus the
    /// spill/reload pair (private-slot traffic still moves through a
    /// memory unit even though it never aliases program memory); `FDiv`
    /// is its own class; everything else is ALU.
    #[inline]
    pub fn of(op: Opcode) -> OpClass {
        if op.is_branch() {
            OpClass::Branch
        } else if op.is_memory() || matches!(op, Opcode::Call | Opcode::Spill | Opcode::Reload) {
            OpClass::Mem
        } else if op == Opcode::FDiv {
            OpClass::FDiv
        } else {
            OpClass::Alu
        }
    }

    /// Dense index of the class (its discriminant).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Reconstructs a class from [`OpClass::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= OpClass::COUNT`.
    #[inline]
    pub fn from_index(i: usize) -> OpClass {
        OpClass::ALL[i]
    }

    /// Stable short name (`alu`/`mem`/`branch`/`fdiv`).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::Mem => "mem",
            OpClass::Branch => "branch",
            OpClass::FDiv => "fdiv",
        }
    }
}

/// Transition-table sentinel for "structural hazard" (no successor
/// state: the class, or the cycle, is saturated).
const HAZARD: u16 = u16::MAX;

/// A per-cycle resource-hazard automaton: states are reachable per-cycle
/// resource-usage vectors, transitions consume one op of a class.
///
/// Built once at [`crate::MachineModel`] construction; the scheduler
/// threads one state per cycle and replaces every per-op limit
/// conditional with [`HazardAutomaton::go`].
#[derive(Clone, Debug)]
pub struct HazardAutomaton {
    /// Dense transition table, `state * OpClass::COUNT + class`.
    table: Vec<u16>,
    state_count: usize,
}

impl HazardAutomaton {
    /// Enumerates the reachable states of a machine with the given issue
    /// width and per-class unit counts (`None` = the class draws only on
    /// the shared issue width) and interns them into the dense table.
    ///
    /// Subset construction in the classic sense: start from the empty
    /// cycle, apply every class to every frontier state, intern each new
    /// usage vector, until closed. States are interned in BFS order, so
    /// state 0 is always the start state.
    ///
    /// # Panics
    ///
    /// Panics if the reachable state space exceeds the `u16` encoding
    /// (possible only for issue widths and unit counts far beyond any
    /// machine the paper or the benches model).
    pub(crate) fn build(issue_width: usize, class_units: &[Option<usize>; OpClass::COUNT]) -> Self {
        // Canonical state: total slots in use, plus the used count of
        // every *limited* class. Unlimited classes contribute only to the
        // total — collapsing them is what keeps an all-universal machine
        // at exactly `issue_width + 1` states instead of one state per
        // class-mix composition.
        type Key = [u16; OpClass::COUNT + 1]; // [total, used per class]
        let mut ids: std::collections::HashMap<Key, u16> = std::collections::HashMap::new();
        let mut states: Vec<Key> = Vec::new();
        let mut table: Vec<u16> = Vec::new();
        let start: Key = [0; OpClass::COUNT + 1];
        ids.insert(start, 0);
        states.push(start);
        let mut next = 0usize;
        while next < states.len() {
            let cur = states[next];
            next += 1;
            let total = cur[0] as usize;
            for class in OpClass::ALL {
                let c = class.index();
                let within_units = class_units[c].is_none_or(|limit| (cur[1 + c] as usize) < limit);
                let succ = if total < issue_width && within_units {
                    let mut nxt = cur;
                    nxt[0] += 1;
                    if class_units[c].is_some() {
                        nxt[1 + c] += 1;
                    }
                    *ids.entry(nxt).or_insert_with(|| {
                        let id = states.len();
                        assert!(
                            id < HAZARD as usize,
                            "hazard automaton state space overflow ({id} states)"
                        );
                        states.push(nxt);
                        id as u16
                    })
                } else {
                    HAZARD
                };
                table.push(succ);
            }
        }
        HazardAutomaton {
            table,
            state_count: states.len(),
        }
    }

    /// The empty-cycle start state.
    #[inline]
    pub fn start(&self) -> u16 {
        0
    }

    /// Consumes one op of `class` in `state`: the successor state, or
    /// `None` on a structural hazard (class units or issue width
    /// saturated). One indexed load — this is the scheduler's per-op
    /// resource probe.
    #[inline]
    pub fn go(&self, state: u16, class: OpClass) -> Option<u16> {
        let next = self.table[state as usize * OpClass::COUNT + class.index()];
        if next == HAZARD {
            None
        } else {
            Some(next)
        }
    }

    /// Number of interned states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Number of classes in the alphabet (the table's row width).
    #[inline]
    pub fn num_classes(&self) -> usize {
        OpClass::COUNT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineModel;

    /// Brute-force counter simulation of one class sequence under the
    /// machine's limits — the oracle `go` must agree with exactly.
    fn counters_accept(
        issue_width: usize,
        units: &[Option<usize>; OpClass::COUNT],
        used: &mut [usize; OpClass::COUNT],
        class: OpClass,
    ) -> bool {
        let total: usize = used.iter().sum();
        if total >= issue_width {
            return false;
        }
        if let Some(limit) = units[class.index()] {
            if used[class.index()] >= limit {
                return false;
            }
        }
        used[class.index()] += 1;
        true
    }

    #[test]
    fn classify_matches_legacy_predicates() {
        use treegion_ir::Cond;
        for op in [
            Opcode::Add,
            Opcode::MovI,
            Opcode::Cmpp(Cond::Lt),
            Opcode::FMul,
            Opcode::Copy,
        ] {
            assert_eq!(OpClass::of(op), OpClass::Alu, "{op:?}");
        }
        for op in [Opcode::Load, Opcode::Store, Opcode::Call] {
            assert_eq!(OpClass::of(op), OpClass::Mem, "{op:?}");
        }
        for op in [Opcode::Brct, Opcode::Brcf, Opcode::Bru, Opcode::Ret] {
            assert_eq!(OpClass::of(op), OpClass::Branch, "{op:?}");
        }
        assert_eq!(OpClass::of(Opcode::FDiv), OpClass::FDiv);
        // Pbr prepares a branch but issues on a universal slot.
        assert_eq!(OpClass::of(Opcode::Pbr), OpClass::Alu);
    }

    #[test]
    fn unlimited_machine_counts_only_total_slots() {
        // No class limits: the state is just "slots used", so exactly
        // width + 1 states, saturating on every class at once.
        for width in [1usize, 4, 8] {
            let a = HazardAutomaton::build(width, &[None; OpClass::COUNT]);
            assert_eq!(a.state_count(), width + 1, "width {width}");
            let mut state = a.start();
            for step in 0..width {
                state = a.go(state, OpClass::ALL[step % OpClass::COUNT]).unwrap();
            }
            for class in OpClass::ALL {
                assert_eq!(a.go(state, class), None, "width {width} {class:?}");
            }
        }
    }

    #[test]
    fn go_agrees_with_brute_force_counters_on_all_sequences() {
        // Exhaustive depth-first over all class sequences up to the issue
        // width (+1 to probe past saturation) on the asymmetric preset:
        // the automaton must accept exactly what the counters accept and
        // land in the interned state for the counter vector.
        let m = MachineModel::model_4u_asym();
        let a = m.hazard_automaton();
        let units = [None, Some(2), Some(1), Some(1)];
        let width = m.issue_width();
        // Stack of (state, counters, depth).
        let mut stack = vec![(a.start(), [0usize; OpClass::COUNT], 0usize)];
        let mut visited = 0usize;
        while let Some((state, used, depth)) = stack.pop() {
            visited += 1;
            for class in OpClass::ALL {
                let mut u = used;
                let expect = counters_accept(width, &units, &mut u, class);
                match a.go(state, class) {
                    Some(next) => {
                        assert!(expect, "automaton accepted {class:?} at {used:?}");
                        if depth < width {
                            stack.push((next, u, depth + 1));
                        }
                    }
                    None => assert!(!expect, "automaton rejected {class:?} at {used:?}"),
                }
            }
        }
        assert!(visited > 1);
    }

    #[test]
    fn state_counts_stay_small() {
        assert_eq!(MachineModel::model_1u().hazard_automaton().state_count(), 2);
        assert_eq!(MachineModel::model_4u().hazard_automaton().state_count(), 5);
        assert_eq!(MachineModel::model_8u().hazard_automaton().state_count(), 9);
        // 4-wide, mem<=2, branch<=1, fdiv<=1: the reachable
        // (total, mem, branch, fdiv) tuples with mem+branch+fdiv <= total
        // <= 4 number exactly 36.
        assert_eq!(
            MachineModel::model_4u_asym()
                .hazard_automaton()
                .state_count(),
            36
        );
    }

    #[test]
    #[should_panic(expected = "state space overflow")]
    fn state_space_overflow_panics() {
        // Four unbounded-ish classes at an absurd width: the number of
        // usage vectors exceeds the u16 id space and must panic loudly
        // rather than mis-intern.
        let _ = HazardAutomaton::build(4096, &[Some(4096), Some(4096), Some(4096), Some(4096)]);
    }
}
