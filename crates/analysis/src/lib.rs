//! # treegion-analysis
//!
//! CFG analyses for the treegion scheduling reproduction: cached
//! predecessor/successor views and traversal orders ([`Cfg`]), dominator
//! trees ([`DomTree`]), per-block register liveness ([`Liveness`]), and
//! back-edge/natural-loop detection ([`Loops`]).
//!
//! Region formation uses [`Cfg::is_merge_point`] (treegion boundaries are
//! merge points), the scheduler uses [`Liveness`] for renaming decisions
//! and [`DomTree`] for dominator-parallelism checks, and the workload
//! generators use [`Loops`] to validate generated control flow.
//!
//! ## Example
//!
//! ```
//! use treegion_analysis::{Cfg, DomTree, Liveness};
//! use treegion_ir::{FunctionBuilder, Op};
//!
//! let mut b = FunctionBuilder::new("f");
//! let (bb0, bb1) = (b.block(), b.block());
//! let x = b.gpr();
//! b.push(bb0, Op::movi(x, 1));
//! b.jump(bb0, bb1, 1.0);
//! b.ret(bb1, Some(x));
//! let f = b.finish();
//!
//! let cfg = Cfg::new(&f);
//! let dom = DomTree::new(&cfg);
//! let live = Liveness::new(&f, &cfg);
//! assert!(dom.dominates(bb0, bb1));
//! assert!(live.live_out(bb0).contains(&x));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cfg;
mod dom;
mod liveness;
mod loops;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use liveness::{terminator_uses, Liveness};
pub use loops::{BackEdge, Loops, NaturalLoop};
