//! Dominator tree (Cooper–Harvey–Kennedy algorithm).
//!
//! Used by the scheduler's dominator-parallelism detection and by tests
//! that check the treegion invariant "any block in a treegion dominates
//! all blocks below it" (Section 4 of the paper).

use crate::Cfg;
use treegion_ir::BlockId;

/// The dominator tree of a function's reachable blocks.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`;
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse-postorder number per block (`usize::MAX` if unreachable).
    rpo_number: Vec<usize>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree from a CFG view.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let rpo = cfg.reverse_postorder();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_number[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = cfg.entry();
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_number, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            rpo_number,
            entry,
        }
    }

    /// The immediate dominator of `b`, or `None` if `b` is the entry or
    /// unreachable.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            return false; // unreachable blocks dominate nothing
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Reverse-postorder number of `b` (useful as a topological key).
    pub fn rpo_number(&self, b: BlockId) -> usize {
        self.rpo_number[b.index()]
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_number: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_number[a.index()] > rpo_number[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_number[b.index()] > rpo_number[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use treegion_ir::{Function, FunctionBuilder, Op};

    fn ids(f: &Function) -> Vec<BlockId> {
        f.block_ids().collect()
    }

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d");
        let (bb0, bb1, bb2, bb3) = (b.block(), b.block(), b.block(), b.block());
        let c = b.gpr();
        b.push(bb0, Op::movi(c, 1));
        b.branch(bb0, c, (bb1, 1.0), (bb2, 1.0));
        b.jump(bb1, bb3, 1.0);
        b.jump(bb2, bb3, 1.0);
        b.ret(bb3, None);
        b.finish()
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let dt = DomTree::new(&Cfg::new(&f));
        let b = ids(&f);
        assert_eq!(dt.idom(b[0]), None);
        assert_eq!(dt.idom(b[1]), Some(b[0]));
        assert_eq!(dt.idom(b[2]), Some(b[0]));
        assert_eq!(dt.idom(b[3]), Some(b[0])); // merge dominated by fork
        assert!(dt.dominates(b[0], b[3]));
        assert!(!dt.dominates(b[1], b[3]));
        assert!(dt.dominates(b[3], b[3]));
    }

    #[test]
    fn chain_dominance_is_transitive() {
        let mut bld = FunctionBuilder::new("chain");
        let (bb0, bb1, bb2) = (bld.block(), bld.block(), bld.block());
        bld.jump(bb0, bb1, 1.0);
        bld.jump(bb1, bb2, 1.0);
        bld.ret(bb2, None);
        let f = bld.finish();
        let dt = DomTree::new(&Cfg::new(&f));
        let b = ids(&f);
        assert!(dt.dominates(b[0], b[2]));
        assert!(dt.dominates(b[1], b[2]));
        assert_eq!(dt.idom(b[2]), Some(b[1]));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut bld = FunctionBuilder::new("loop");
        let (bb0, bb1, bb2, bb3) = (bld.block(), bld.block(), bld.block(), bld.block());
        let c = bld.gpr();
        bld.push(bb0, Op::movi(c, 1));
        bld.jump(bb0, bb1, 10.0);
        bld.branch(bb1, c, (bb2, 90.0), (bb3, 10.0));
        bld.jump(bb2, bb1, 90.0);
        bld.ret(bb3, None);
        let f = bld.finish();
        let dt = DomTree::new(&Cfg::new(&f));
        let b = ids(&f);
        assert!(dt.dominates(b[1], b[2]));
        assert!(dt.dominates(b[1], b[3]));
        assert!(!dt.dominates(b[2], b[1]));
    }

    #[test]
    fn unreachable_blocks_dominate_nothing() {
        let mut bld = FunctionBuilder::new("u");
        let (bb0, bb1) = (bld.block(), bld.block());
        bld.ret(bb0, None);
        bld.ret(bb1, None);
        let f = bld.finish();
        let dt = DomTree::new(&Cfg::new(&f));
        let b = ids(&f);
        assert!(!dt.dominates(b[1], b[0]));
        assert!(!dt.dominates(b[1], b[1]));
    }
}
