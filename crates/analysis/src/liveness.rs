//! Per-block register liveness (backward dataflow).
//!
//! The scheduler needs live-out sets to decide which values must be
//! restored (via renaming copies) at region exits, and which speculated
//! definitions would violate live-outs on other paths — the situations
//! Section 3 of the paper resolves with compile-time register renaming.

use crate::Cfg;
use std::collections::HashSet;
use treegion_ir::{BlockId, Function, Reg, Terminator};

/// Live-in / live-out register sets for every block of a function.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<HashSet<Reg>>,
    live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    /// Computes liveness to fixpoint.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.num_blocks();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen_ = vec![HashSet::new(); n];
        let mut kill = vec![HashSet::new(); n];
        for (id, block) in f.blocks() {
            let g = &mut gen_[id.index()];
            let k = &mut kill[id.index()];
            for op in &block.ops {
                for u in &op.uses {
                    if !k.contains(u) {
                        g.insert(*u);
                    }
                }
                for d in &op.defs {
                    k.insert(*d);
                }
            }
            for u in terminator_uses(&block.term) {
                if !k.contains(&u) {
                    g.insert(u);
                }
            }
        }
        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];
        // Iterate in postorder (approximately reverse of flow) to converge
        // quickly; repeat until no set changes.
        let order = cfg.postorder().to_vec();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let bi = b.index();
                let mut out = HashSet::new();
                for &s in cfg.succs(b) {
                    for r in &live_in[s.index()] {
                        out.insert(*r);
                    }
                }
                let mut inn: HashSet<Reg> = gen_[bi].clone();
                for r in &out {
                    if !kill[bi].contains(r) {
                        inn.insert(*r);
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if inn != live_in[bi] {
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_out[b.index()]
    }
}

/// Registers read by a terminator.
pub fn terminator_uses(t: &Terminator) -> Vec<Reg> {
    match t {
        Terminator::Jump(_) => vec![],
        Terminator::Branch { cond, .. } => vec![*cond],
        Terminator::Switch { on, .. } => vec![*on],
        Terminator::Ret { value } => value.iter().copied().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treegion_ir::{Cond, FunctionBuilder, Op, Reg};

    #[test]
    fn value_used_across_blocks_is_live() {
        // bb0: x = 1; jump bb1. bb1: ret x.
        let mut b = FunctionBuilder::new("t");
        let (bb0, bb1) = (b.block(), b.block());
        let x = b.gpr();
        b.push(bb0, Op::movi(x, 1));
        b.jump(bb0, bb1, 1.0);
        b.ret(bb1, Some(x));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::new(&f, &cfg);
        assert!(lv.live_out(bb0).contains(&x));
        assert!(lv.live_in(bb1).contains(&x));
        assert!(!lv.live_in(bb0).contains(&x));
    }

    #[test]
    fn redefined_value_kills_liveness() {
        // bb0: x = 1; jump bb1. bb1: x = 2; ret x.
        let mut b = FunctionBuilder::new("t");
        let (bb0, bb1) = (b.block(), b.block());
        let x = b.gpr();
        b.push(bb0, Op::movi(x, 1));
        b.jump(bb0, bb1, 1.0);
        b.push(bb1, Op::movi(x, 2));
        b.ret(bb1, Some(x));
        let f = b.finish();
        let lv = Liveness::new(&f, &Cfg::new(&f));
        assert!(!lv.live_out(bb0).contains(&x));
        assert!(!lv.live_in(bb1).contains(&x));
    }

    #[test]
    fn branch_condition_is_upward_exposed() {
        let mut b = FunctionBuilder::new("t");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let c = b.gpr();
        // c defined nowhere in bb0 — live-in of bb0.
        b.branch(bb0, c, (bb1, 1.0), (bb2, 1.0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let lv = Liveness::new(&f, &Cfg::new(&f));
        assert!(lv.live_in(bb0).contains(&c));
    }

    #[test]
    fn loop_carried_value_stays_live_around_backedge() {
        // bb0: i=0 -> bb1; bb1: i=i+1; c=i<10; branch c bb1 / bb2; bb2: ret i
        let mut b = FunctionBuilder::new("t");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (i, one, ten, c) = (b.gpr(), b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::movi(i, 0), Op::movi(one, 1), Op::movi(ten, 10)]);
        b.jump(bb0, bb1, 1.0);
        b.push_all(bb1, [Op::add(i, i, one), Op::cmp(Cond::Lt, c, i, ten)]);
        b.branch(bb1, c, (bb1, 9.0), (bb2, 1.0));
        b.ret(bb2, Some(i));
        let f = b.finish();
        let lv = Liveness::new(&f, &Cfg::new(&f));
        assert!(lv.live_out(bb1).contains(&i));
        assert!(lv.live_in(bb1).contains(&i)); // used before (re)defined? add reads i
        assert!(lv.live_in(bb1).contains(&one));
    }

    #[test]
    fn partial_use_before_def_in_same_block() {
        // bb0: y = x + x; x = 1; ret y  — x is upward exposed.
        let mut b = FunctionBuilder::new("t");
        let bb0 = b.block();
        let (x, y) = (Reg::gpr(0), Reg::gpr(1));
        b.push_all(bb0, [Op::add(y, x, x), Op::movi(x, 1)]);
        b.ret(bb0, Some(y));
        let f = b.finish();
        let lv = Liveness::new(&f, &Cfg::new(&f));
        assert!(lv.live_in(bb0).contains(&x));
        assert!(!lv.live_in(bb0).contains(&y));
    }
}
