//! A cached control-flow-graph view of a function.

use treegion_ir::{BlockId, Function};

/// Predecessor/successor lists plus traversal orders for a [`Function`].
///
/// The view is a snapshot: if the function is mutated (e.g. by tail
/// duplication), build a new `Cfg`.
#[derive(Clone, Debug)]
pub struct Cfg {
    entry: BlockId,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    postorder: Vec<BlockId>,
    reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG view of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut succs = Vec::with_capacity(n);
        for (_, block) in f.blocks() {
            succs.push(block.successors());
        }
        let mut preds = vec![Vec::new(); n];
        for (i, ss) in succs.iter().enumerate() {
            for s in ss {
                preds[s.index()].push(BlockId::from_index(i));
            }
        }
        let entry = f.entry();
        // Iterative DFS computing postorder over reachable blocks.
        let mut postorder = Vec::with_capacity(n);
        let mut reachable = vec![false; n];
        let mut visited = vec![false; n];
        // Stack of (block, next successor index).
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        reachable[entry.index()] = true;
        while let Some((b, i)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *i < ss.len() {
                let next = ss[*i];
                *i += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    reachable[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                postorder.push(*b);
                stack.pop();
            }
        }
        Cfg {
            entry,
            succs,
            preds,
            postorder,
            reachable,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of blocks (including unreachable ones).
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Successors of `b`, in terminator order.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b` (one entry per incoming edge).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Number of incoming edges (the paper's *merge count*; a block with
    /// more than one is a merge point).
    pub fn merge_count(&self, b: BlockId) -> usize {
        self.preds[b.index()].len()
    }

    /// `true` if `b` has two or more incoming edges.
    pub fn is_merge_point(&self, b: BlockId) -> bool {
        self.merge_count(b) > 1
    }

    /// `true` if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Reachable blocks in postorder.
    pub fn postorder(&self) -> &[BlockId] {
        &self.postorder
    }

    /// Reachable blocks in reverse postorder (a topological order for
    /// acyclic CFGs).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut v = self.postorder.clone();
        v.reverse();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treegion_ir::{FunctionBuilder, Op};

    fn diamond() -> treegion_ir::Function {
        let mut b = FunctionBuilder::new("d");
        let (bb0, bb1, bb2, bb3) = (b.block(), b.block(), b.block(), b.block());
        let c = b.gpr();
        b.push(bb0, Op::movi(c, 1));
        b.branch(bb0, c, (bb1, 1.0), (bb2, 1.0));
        b.jump(bb1, bb3, 1.0);
        b.jump(bb2, bb3, 1.0);
        b.ret(bb3, None);
        b.finish()
    }

    #[test]
    fn diamond_preds_succs_merge() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let ids: Vec<BlockId> = f.block_ids().collect();
        assert_eq!(cfg.succs(ids[0]), &[ids[1], ids[2]]);
        assert_eq!(cfg.preds(ids[3]).len(), 2);
        assert!(cfg.is_merge_point(ids[3]));
        assert!(!cfg.is_merge_point(ids[1]));
        assert_eq!(cfg.merge_count(ids[0]), 0);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_topology() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 4);
        // bb3 must come after bb1 and bb2.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        let ids: Vec<BlockId> = f.block_ids().collect();
        assert!(pos(ids[3]) > pos(ids[1]));
        assert!(pos(ids[3]) > pos(ids[2]));
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut b = FunctionBuilder::new("u");
        let (bb0, bb1) = (b.block(), b.block());
        b.ret(bb0, None);
        b.ret(bb1, None); // unreachable
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let ids: Vec<BlockId> = f.block_ids().collect();
        assert!(cfg.is_reachable(ids[0]));
        assert!(!cfg.is_reachable(ids[1]));
        assert_eq!(cfg.postorder().len(), 1);
    }

    #[test]
    fn cyclic_cfg_terminates() {
        let mut b = FunctionBuilder::new("loop");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let c = b.gpr();
        b.push(bb0, Op::movi(c, 1));
        b.jump(bb0, bb1, 10.0);
        b.branch(bb1, c, (bb1, 90.0), (bb2, 10.0));
        b.ret(bb2, None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.postorder().len(), 3);
        assert_eq!(cfg.preds(f.block_ids().nth(1).unwrap()).len(), 2);
    }
}
