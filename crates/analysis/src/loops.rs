//! Back-edge and natural-loop detection.
//!
//! Treegions are acyclic by construction, but the *functions* they are
//! formed over contain loops; formation must treat loop headers as merge
//! points (they have at least two incoming edges: entry and back edge).
//! The workload generators also use this analysis to validate that the
//! CFGs they emit have the intended loop structure.

use crate::{Cfg, DomTree};
use std::collections::HashSet;
use treegion_ir::BlockId;

/// A back edge `tail -> header` where `header` dominates `tail`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct BackEdge {
    /// Source of the back edge.
    pub tail: BlockId,
    /// The loop header.
    pub header: BlockId,
}

/// A natural loop: a header plus its body (header included).
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// All blocks in the loop, header included.
    pub body: Vec<BlockId>,
}

/// Loop structure of a function.
#[derive(Clone, Debug)]
pub struct Loops {
    back_edges: Vec<BackEdge>,
    loops: Vec<NaturalLoop>,
}

impl Loops {
    /// Detects back edges and natural loops.
    pub fn new(cfg: &Cfg, dom: &DomTree) -> Self {
        let mut back_edges = Vec::new();
        for &b in cfg.postorder() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    back_edges.push(BackEdge { tail: b, header: s });
                }
            }
        }
        back_edges.sort_by_key(|e| (e.header.index(), e.tail.index()));
        // Natural loop per back edge (merged per header).
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for edge in &back_edges {
            let body = natural_loop_body(cfg, *edge);
            if let Some(existing) = loops.iter_mut().find(|l| l.header == edge.header) {
                let have: HashSet<BlockId> = existing.body.iter().copied().collect();
                for b in body {
                    if !have.contains(&b) {
                        existing.body.push(b);
                    }
                }
                existing.body.sort_by_key(|b| b.index());
            } else {
                loops.push(NaturalLoop {
                    header: edge.header,
                    body,
                });
            }
        }
        Loops { back_edges, loops }
    }

    /// The detected back edges, sorted by (header, tail).
    pub fn back_edges(&self) -> &[BackEdge] {
        &self.back_edges
    }

    /// The natural loops, one per distinct header.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// `true` if the CFG is acyclic (no back edges). Irreducible cycles
    /// would not be caught here, but the workload generators only emit
    /// reducible CFGs.
    pub fn is_acyclic(&self) -> bool {
        self.back_edges.is_empty()
    }
}

fn natural_loop_body(cfg: &Cfg, edge: BackEdge) -> Vec<BlockId> {
    let mut body = vec![edge.header];
    let mut seen: HashSet<BlockId> = body.iter().copied().collect();
    let mut stack = vec![edge.tail];
    while let Some(b) = stack.pop() {
        if seen.insert(b) {
            body.push(b);
            for &p in cfg.preds(b) {
                stack.push(p);
            }
        }
    }
    body.sort_by_key(|b| b.index());
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use treegion_ir::{FunctionBuilder, Op};

    #[test]
    fn straight_line_is_acyclic() {
        let mut b = FunctionBuilder::new("t");
        let (bb0, bb1) = (b.block(), b.block());
        b.jump(bb0, bb1, 1.0);
        b.ret(bb1, None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let loops = Loops::new(&cfg, &DomTree::new(&cfg));
        assert!(loops.is_acyclic());
        assert!(loops.loops().is_empty());
    }

    #[test]
    fn simple_loop_found_with_correct_body() {
        // bb0 -> bb1; bb1 -> {bb2, bb3}; bb2 -> bb1 (back edge); bb3 ret.
        let mut b = FunctionBuilder::new("t");
        let (bb0, bb1, bb2, bb3) = (b.block(), b.block(), b.block(), b.block());
        let c = b.gpr();
        b.push(bb0, Op::movi(c, 1));
        b.jump(bb0, bb1, 10.0);
        b.branch(bb1, c, (bb2, 90.0), (bb3, 10.0));
        b.jump(bb2, bb1, 90.0);
        b.ret(bb3, None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let loops = Loops::new(&cfg, &DomTree::new(&cfg));
        assert_eq!(loops.back_edges().len(), 1);
        assert_eq!(
            loops.back_edges()[0],
            BackEdge {
                tail: bb2,
                header: bb1
            }
        );
        assert_eq!(loops.loops().len(), 1);
        assert_eq!(loops.loops()[0].body, vec![bb1, bb2]);
    }

    #[test]
    fn nested_loops_have_two_headers() {
        // outer: bb1..bb4 ; inner: bb2..bb3
        let mut b = FunctionBuilder::new("t");
        let ids: Vec<_> = (0..6).map(|_| b.block()).collect();
        let c = b.gpr();
        b.push(ids[0], Op::movi(c, 1));
        b.jump(ids[0], ids[1], 1.0);
        b.jump(ids[1], ids[2], 10.0);
        b.branch(ids[2], c, (ids[3], 90.0), (ids[4], 10.0));
        b.jump(ids[3], ids[2], 90.0); // inner back edge
        b.branch(ids[4], c, (ids[1], 9.0), (ids[5], 1.0)); // outer back edge
        b.ret(ids[5], None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let loops = Loops::new(&cfg, &DomTree::new(&cfg));
        assert_eq!(loops.back_edges().len(), 2);
        assert_eq!(loops.loops().len(), 2);
        let outer = loops.loops().iter().find(|l| l.header == ids[1]).unwrap();
        assert!(outer.body.contains(&ids[4]));
        assert!(outer.body.contains(&ids[2]));
    }

    #[test]
    fn self_loop_detected() {
        let mut b = FunctionBuilder::new("t");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let c = b.gpr();
        b.push(bb0, Op::movi(c, 1));
        b.jump(bb0, bb1, 1.0);
        b.branch(bb1, c, (bb1, 5.0), (bb2, 1.0));
        b.ret(bb2, None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let loops = Loops::new(&cfg, &DomTree::new(&cfg));
        assert_eq!(loops.back_edges().len(), 1);
        assert_eq!(loops.loops()[0].body, vec![bb1]);
    }
}
