//! Crash-point materialization: turn a recorded operation journal plus a
//! crash index into the on-disk state a hard kill could leave behind.
//!
//! The model (documented in DESIGN.md §14):
//!
//! * Each file carries **synced** bytes (survive any crash) and
//!   **pending** bytes (written but never fsynced — may be arbitrarily
//!   torn).
//! * [`Op::Write`] appends to pending; [`Op::Sync`] promotes all pending
//!   bytes to synced; [`Op::Create`] resets both (truncation).
//! * [`Op::Rename`] moves the whole durability state from `from` to
//!   `to` — so renaming a never-synced temp file publishes *pending*
//!   bytes, and a crash right after tears the published file. This is
//!   the exact failure the fsync-before-rename discipline exists to
//!   prevent, and the sweep proves the workspace observes it.
//! * A crash at operation `k` applies operations `0..k` fully and
//!   operation `k` *partially* (a seeded prefix of a write; a seeded
//!   coin for create/sync/rename — the operation raced the kill). After
//!   the crash every file keeps its synced bytes plus a seeded-length
//!   prefix of its pending bytes (the torn tail).
//!
//! Simplification: renames that happened before the crash point are
//! treated as surviving even without a directory fsync. Journaling
//! filesystems make this overwhelmingly likely in practice; the
//! workspace still fsyncs directories where cheap, and the model keeps
//! the sweep deterministic.

use crate::plan::{mix, Op, OpRecord};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Durability state of one modeled file.
#[derive(Clone, Debug, Default)]
struct FileModel {
    synced: Vec<u8>,
    pending: Vec<u8>,
}

/// The simulated post-crash filesystem: path → surviving bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsImage {
    /// Files that survive the crash, with their surviving bytes.
    pub files: BTreeMap<PathBuf, Vec<u8>>,
}

impl FsImage {
    /// Writes the image under `new_root`, rebasing every journaled path
    /// from `old_root` (paths outside `old_root` are skipped — the
    /// journal should never contain any). Parent directories are
    /// created as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as strings.
    pub fn materialize_under(&self, old_root: &Path, new_root: &Path) -> Result<(), String> {
        for (path, bytes) in &self.files {
            let Ok(rel) = path.strip_prefix(old_root) else {
                continue;
            };
            let dest = new_root.join(rel);
            if let Some(parent) = dest.parent() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
            }
            std::fs::write(&dest, bytes)
                .map_err(|e| format!("cannot write `{}`: {e}", dest.display()))?;
        }
        Ok(())
    }
}

/// Replays `journal[0..crash_at]` fully and `journal[crash_at]`
/// partially (seeded), returning the simulated post-crash filesystem.
/// `crash_at == journal.len()` means the run completed — but even then
/// pending (never-synced) bytes are torn, modeling a kill after the
/// last operation.
pub fn materialize(journal: &[OpRecord], crash_at: usize, seed: u64) -> FsImage {
    let crash_at = crash_at.min(journal.len());
    let mut models: BTreeMap<PathBuf, FileModel> = BTreeMap::new();
    for rec in &journal[..crash_at] {
        apply_full(&mut models, &rec.op);
    }
    if let Some(rec) = journal.get(crash_at) {
        apply_partial(&mut models, &rec.op, seed, crash_at as u64);
    }
    // Survivors: synced bytes plus a seeded torn prefix of pending.
    let mut files = BTreeMap::new();
    for (path, m) in models {
        let torn = if m.pending.is_empty() {
            0
        } else {
            (mix(seed ^ 0x7361_6c74, path_mix(&path)) as usize) % (m.pending.len() + 1)
        };
        let mut bytes = m.synced;
        bytes.extend_from_slice(&m.pending[..torn]);
        files.insert(path, bytes);
    }
    FsImage { files }
}

fn path_mix(p: &Path) -> u64 {
    // FNV-1a over the path bytes: stable, dependency-free.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in p.to_string_lossy().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn apply_full(models: &mut BTreeMap<PathBuf, FileModel>, op: &Op) {
    match op {
        Op::Create { path } => {
            models.insert(path.clone(), FileModel::default());
        }
        Op::Write { path, bytes } => {
            models
                .entry(path.clone())
                .or_default()
                .pending
                .extend_from_slice(bytes);
        }
        Op::Sync { path } => {
            if let Some(m) = models.get_mut(path) {
                let pending = std::mem::take(&mut m.pending);
                m.synced.extend_from_slice(&pending);
            }
        }
        Op::Rename { from, to } => {
            if let Some(m) = models.remove(from) {
                models.insert(to.clone(), m);
            }
        }
    }
}

/// The crashing operation itself raced the kill: a write lands a seeded
/// prefix (still pending — nothing synced it); create/sync/rename apply
/// on a seeded coin.
fn apply_partial(models: &mut BTreeMap<PathBuf, FileModel>, op: &Op, seed: u64, idx: u64) {
    let coin = mix(seed, idx) & 1 == 0;
    match op {
        Op::Write { path, bytes } => {
            let n = if bytes.is_empty() {
                0
            } else {
                (mix(seed, idx) as usize) % (bytes.len() + 1)
            };
            models
                .entry(path.clone())
                .or_default()
                .pending
                .extend_from_slice(&bytes[..n]);
        }
        other if coin => apply_full(models, other),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(site: &str, op: Op) -> OpRecord {
        OpRecord {
            site: site.into(),
            op,
        }
    }

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn synced_bytes_always_survive() {
        let j = vec![
            rec(
                "t",
                Op::Create {
                    path: p("/r/a.txt"),
                },
            ),
            rec(
                "t",
                Op::Write {
                    path: p("/r/a.txt"),
                    bytes: b"safe".to_vec(),
                },
            ),
            rec(
                "t",
                Op::Sync {
                    path: p("/r/a.txt"),
                },
            ),
            rec(
                "t",
                Op::Write {
                    path: p("/r/a.txt"),
                    bytes: b"-doomed".to_vec(),
                },
            ),
        ];
        for seed in 0..16 {
            // Crash after the sync: the synced prefix must be intact.
            let img = materialize(&j, 4, seed);
            let bytes = img.files.get(&p("/r/a.txt")).unwrap();
            assert!(bytes.starts_with(b"safe"), "seed {seed}: {bytes:?}");
            assert!(bytes.len() <= b"safe-doomed".len());
            // Crash before anything synced: the file may hold any prefix
            // of the pending bytes, never more.
            let img = materialize(&j, 2, seed);
            let bytes = img.files.get(&p("/r/a.txt")).unwrap();
            assert!(b"safe".starts_with(&bytes[..]), "seed {seed}: {bytes:?}");
        }
    }

    #[test]
    fn unsynced_rename_publishes_a_tearable_file() {
        // tmp is written but never synced, then renamed over the target:
        // some seed must tear the published file — the missing-fsync bug
        // the sweep exists to catch.
        let j = vec![
            rec("t", Op::Create { path: p("/r/tmp") }),
            rec(
                "t",
                Op::Write {
                    path: p("/r/tmp"),
                    bytes: b"manifest-contents".to_vec(),
                },
            ),
            rec(
                "t",
                Op::Rename {
                    from: p("/r/tmp"),
                    to: p("/r/manifest"),
                },
            ),
        ];
        let torn = (0..64).any(|seed| {
            let img = materialize(&j, 3, seed);
            img.files
                .get(&p("/r/manifest"))
                .is_some_and(|b| b.len() < b"manifest-contents".len())
        });
        assert!(torn, "no seed tore the unsynced renamed file");

        // With a sync before the rename the target is always intact.
        let j_fixed = vec![
            j[0].clone(),
            j[1].clone(),
            rec("t", Op::Sync { path: p("/r/tmp") }),
            j[2].clone(),
        ];
        for seed in 0..64 {
            let img = materialize(&j_fixed, 4, seed);
            assert_eq!(
                img.files.get(&p("/r/manifest")).map(Vec::as_slice),
                Some(&b"manifest-contents"[..]),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn crash_mid_write_lands_a_prefix_only() {
        let j = vec![
            rec("t", Op::Create { path: p("/r/f") }),
            rec(
                "t",
                Op::Write {
                    path: p("/r/f"),
                    bytes: b"0123456789".to_vec(),
                },
            ),
        ];
        for seed in 0..32 {
            // Crash *at* the write (index 1): partial prefix, still torn.
            let img = materialize(&j, 1, seed);
            if let Some(bytes) = img.files.get(&p("/r/f")) {
                assert!(b"0123456789".starts_with(&bytes[..]), "seed {seed}");
            }
        }
    }

    #[test]
    fn materialization_is_deterministic_per_seed() {
        let j = vec![
            rec("t", Op::Create { path: p("/r/f") }),
            rec(
                "t",
                Op::Write {
                    path: p("/r/f"),
                    bytes: vec![7u8; 100],
                },
            ),
            rec("t", Op::Sync { path: p("/r/f") }),
        ];
        for k in 0..=j.len() {
            assert_eq!(materialize(&j, k, 9), materialize(&j, k, 9));
        }
        // Past-the-end crash indexes clamp.
        assert_eq!(materialize(&j, 99, 9), materialize(&j, j.len(), 9));
    }

    #[test]
    fn materialize_under_rebases_paths() {
        let dir = std::env::temp_dir().join(format!("tgc-chaos-replay-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let img = FsImage {
            files: [
                (p("/r/sub/a.txt"), b"aaa".to_vec()),
                (p("/r/b.txt"), b"b".to_vec()),
                (p("/elsewhere/x"), b"skip".to_vec()),
            ]
            .into_iter()
            .collect(),
        };
        img.materialize_under(&p("/r"), &dir).unwrap();
        assert_eq!(std::fs::read(dir.join("sub/a.txt")).unwrap(), b"aaa");
        assert_eq!(std::fs::read(dir.join("b.txt")).unwrap(), b"b");
        assert!(!dir.join("x").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
