//! # treegion-chaos
//!
//! Deterministic I/O fault injection and crash-consistency fuzzing for
//! the treegion workspace — the storage-layer sibling of the scheduler's
//! seeded `FaultInjector` (DESIGN.md §7).
//!
//! Three pieces, std-only and dependency-free:
//!
//! * **[`FaultPlan`]** — a seeded, thread-safe plan that decides, per
//!   durable I/O operation, whether to proceed, fail with an
//!   [`std::io::ErrorKind`], short-write, or simulate a crash. Parsed
//!   from the same operator-facing spec grammar everywhere
//!   (`--chaos-plan record`, `err-every:N`, `short-every:N`,
//!   `crash-at:N`).
//! * **[`shim`]** — `ChaosFile` and free-function wrappers around the
//!   handful of `std::fs` durability primitives the workspace uses
//!   (create/append/write/flush/fsync/rename). When no plan is armed
//!   (`chaos == None`) every wrapper is a transparent pass-through; when
//!   armed, every durable operation is journaled and the plan may
//!   perturb it.
//! * **[`replay`]** — given the journal of a clean recorded run, the
//!   crash-point sweep: for any prefix of the operation log,
//!   [`replay::materialize`] builds the on-disk state a hard kill at
//!   that point could leave behind (unsynced bytes torn, unsynced
//!   renames lost) so recovery invariants can be asserted against every
//!   possible crash, not a handful of hand-crafted truncations.
//!
//! The durability model behind the sweep: bytes written but never
//! fsynced are *pending* and may be arbitrarily torn by a crash;
//! `sync_all`/`sync_data` promote pending bytes to *synced* (guaranteed
//! to survive); a rename publishes whatever durability state the source
//! had — renaming a never-synced temp file yields a torn target, which
//! is exactly the bug class the sweep exists to catch.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod plan;
pub mod replay;
pub mod shim;

pub use plan::{Action, ChaosSnapshot, FaultPlan, Mode, Op, OpRecord};

/// The chaos handle threaded through I/O call sites: `None` = unarmed
/// (transparent pass-through), `Some` = every durable operation consults
/// (and is journaled by) the shared plan.
pub type Chaos = Option<std::sync::Arc<FaultPlan>>;
