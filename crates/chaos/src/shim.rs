//! The injectable I/O shim: thin wrappers over the `std::fs` durability
//! primitives the workspace uses, with a [`Chaos`] handle threaded
//! through every call.
//!
//! Unarmed (`chaos == None`) every wrapper compiles down to the plain
//! `std::fs` call — zero behavior change, the property the differential
//! tests pin. Armed, every mutating operation is journaled on the plan
//! and the plan may fail it, tear it, or declare the simulated crash
//! point reached (after which all shimmed I/O fails).

use crate::plan::{Action, Op};
use crate::Chaos;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Builds the injected-error `io::Error` for a failed action.
fn injected(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("chaos: injected {what} failure"))
}

/// Applies a plan decision to a zero-byte-count operation.
fn gate(chaos: &Chaos, site: &str, op: Op, what: &str) -> io::Result<()> {
    if let Some(plan) = chaos {
        match plan.on_op(site, op) {
            Action::Proceed => {}
            Action::Short(_) => {} // shorts only apply to writes
            Action::Fail(kind) => return Err(injected(kind, what)),
            Action::Crash => return Err(injected(io::ErrorKind::Other, "simulated-crash")),
        }
    }
    Ok(())
}

/// A [`File`] whose durability operations consult the chaos plan.
#[derive(Debug)]
pub struct ChaosFile {
    file: File,
    path: PathBuf,
    chaos: Chaos,
    site: String,
}

impl ChaosFile {
    /// Creates (truncating) a file — `File::create` with injection.
    ///
    /// # Errors
    ///
    /// Real or injected I/O errors.
    pub fn create(path: &Path, chaos: &Chaos, site: &str) -> io::Result<ChaosFile> {
        gate(
            chaos,
            site,
            Op::Create {
                path: path.to_path_buf(),
            },
            "create",
        )?;
        Ok(ChaosFile {
            file: File::create(path)?,
            path: path.to_path_buf(),
            chaos: chaos.clone(),
            site: site.to_string(),
        })
    }

    /// Opens a file for appending — `OpenOptions::append` with
    /// injection. Opening for append is not itself a durable mutation,
    /// so it is gated like a read (error injection, no journal record).
    ///
    /// # Errors
    ///
    /// Real or injected I/O errors.
    pub fn append(path: &Path, chaos: &Chaos, site: &str) -> io::Result<ChaosFile> {
        if let Some(plan) = chaos {
            if let Action::Fail(kind) = plan.on_read(site) {
                return Err(injected(kind, "open"));
            }
        }
        Ok(ChaosFile {
            file: OpenOptions::new().append(true).open(path)?,
            path: path.to_path_buf(),
            chaos: chaos.clone(),
            site: site.to_string(),
        })
    }

    /// `write_all` with injection: the plan may fail the write outright
    /// or tear it (write a seeded prefix, then fail — what a full disk
    /// or a kill mid-`write(2)` leaves behind).
    ///
    /// # Errors
    ///
    /// Real or injected I/O errors. On a short write the prefix *is*
    /// written before the error returns, like the real failure mode.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some(plan) = &self.chaos {
            match plan.on_op(
                &self.site,
                Op::Write {
                    path: self.path.clone(),
                    bytes: buf.to_vec(),
                },
            ) {
                Action::Proceed => {}
                Action::Fail(kind) => return Err(injected(kind, "write")),
                Action::Crash => return Err(injected(io::ErrorKind::Other, "simulated-crash")),
                Action::Short(n) => {
                    self.file.write_all(&buf[..n.min(buf.len())])?;
                    return Err(injected(io::ErrorKind::WriteZero, "short-write"));
                }
            }
        }
        self.file.write_all(buf)
    }

    /// `flush` with injection (journaled as part of the sync discipline
    /// only when it fails — a userspace flush alone is not durable).
    ///
    /// # Errors
    ///
    /// Real or injected I/O errors.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(plan) = &self.chaos {
            if let Action::Fail(kind) = plan.on_read(&self.site) {
                return Err(injected(kind, "flush"));
            }
        }
        self.file.flush()
    }

    /// `sync_all` with injection — the durability point.
    ///
    /// # Errors
    ///
    /// Real or injected I/O errors.
    pub fn sync_all(&mut self) -> io::Result<()> {
        gate(
            &self.chaos,
            &self.site,
            Op::Sync {
                path: self.path.clone(),
            },
            "sync",
        )?;
        self.file.sync_all()
    }

    /// `sync_data` with injection — journaled identically to
    /// [`ChaosFile::sync_all`] (the sweep's durability model does not
    /// distinguish data from metadata syncs).
    ///
    /// # Errors
    ///
    /// Real or injected I/O errors.
    pub fn sync_data(&mut self) -> io::Result<()> {
        gate(
            &self.chaos,
            &self.site,
            Op::Sync {
                path: self.path.clone(),
            },
            "sync",
        )?;
        self.file.sync_data()
    }

    /// The wrapped path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// `std::fs::rename` with injection and journaling.
///
/// # Errors
///
/// Real or injected I/O errors.
pub fn rename(from: &Path, to: &Path, chaos: &Chaos, site: &str) -> io::Result<()> {
    gate(
        chaos,
        site,
        Op::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
        },
        "rename",
    )?;
    std::fs::rename(from, to)
}

/// Whole-file write (`std::fs::write` semantics: create + write, **no**
/// fsync) with injection and journaling.
///
/// # Errors
///
/// Real or injected I/O errors.
pub fn write(path: &Path, contents: &[u8], chaos: &Chaos, site: &str) -> io::Result<()> {
    let mut f = ChaosFile::create(path, chaos, site)?;
    f.write_all(contents)
}

/// Durable whole-file write: create + write + `sync_all`.
///
/// # Errors
///
/// Real or injected I/O errors.
pub fn write_durable(path: &Path, contents: &[u8], chaos: &Chaos, site: &str) -> io::Result<()> {
    let mut f = ChaosFile::create(path, chaos, site)?;
    f.write_all(contents)?;
    f.sync_all()
}

/// `std::fs::read_to_string` with read-error injection (reads are not
/// journaled — they leave no crash state).
///
/// # Errors
///
/// Real or injected I/O errors.
pub fn read_to_string(path: &Path, chaos: &Chaos, site: &str) -> io::Result<String> {
    if let Some(plan) = chaos {
        if let Action::Fail(kind) = plan.on_read(site) {
            return Err(injected(kind, "read"));
        }
    }
    let mut s = String::new();
    File::open(path)?.read_to_string(&mut s)?;
    Ok(s)
}

/// `std::fs::create_dir_all` with read-style injection (directory
/// creation is idempotent and journal-free: the sweep models files, and
/// materialization recreates parent directories as needed).
///
/// # Errors
///
/// Real or injected I/O errors.
pub fn create_dir_all(path: &Path, chaos: &Chaos, site: &str) -> io::Result<()> {
    if let Some(plan) = chaos {
        if let Action::Fail(kind) = plan.on_read(site) {
            return Err(injected(kind, "create-dir"));
        }
    }
    std::fs::create_dir_all(path)
}

/// Best-effort directory fsync: opens the directory and `sync_all`s it
/// so a just-renamed entry survives a power loss. Journaled as a
/// [`Op::Sync`] on the directory path. Errors are returned, but callers
/// typically treat directory-fsync failure as survivable (the rename
/// itself already happened).
///
/// # Errors
///
/// Real or injected I/O errors (notably on platforms where directories
/// cannot be opened for sync).
pub fn sync_dir(dir: &Path, chaos: &Chaos, site: &str) -> io::Result<()> {
    gate(
        chaos,
        site,
        Op::Sync {
            path: dir.to_path_buf(),
        },
        "sync-dir",
    )?;
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tgc-chaos-shim-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn unarmed_shim_is_a_transparent_pass_through() {
        let dir = tmpdir("unarmed");
        let chaos: Chaos = None;
        let p = dir.join("a.txt");
        let mut f = ChaosFile::create(&p, &chaos, "t").unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.flush().unwrap();
        f.sync_all().unwrap();
        drop(f);
        let q = dir.join("b.txt");
        rename(&p, &q, &chaos, "t").unwrap();
        assert_eq!(read_to_string(&q, &chaos, "t").unwrap(), "hello world");
        let mut f = ChaosFile::append(&q, &chaos, "t").unwrap();
        f.write_all(b"!").unwrap();
        f.sync_data().unwrap();
        assert_eq!(std::fs::read_to_string(&q).unwrap(), "hello world!");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn armed_record_plan_journals_every_durable_op() {
        let dir = tmpdir("record");
        let plan = Arc::new(FaultPlan::from_seed(1));
        let chaos: Chaos = Some(Arc::clone(&plan));
        let p = dir.join("a.txt");
        let mut f = ChaosFile::create(&p, &chaos, "site-a").unwrap();
        f.write_all(b"payload").unwrap();
        f.sync_all().unwrap();
        drop(f);
        rename(&p, &dir.join("b.txt"), &chaos, "site-b").unwrap();
        let j = plan.journal();
        let labels: Vec<&str> = j.iter().map(|r| r.op.label()).collect();
        assert_eq!(labels, ["create", "write", "sync", "rename"]);
        assert_eq!(j[0].site, "site-a");
        assert_eq!(j[3].site, "site-b");
        // The file contents are untouched by a record-only plan.
        assert_eq!(
            std::fs::read_to_string(dir.join("b.txt")).unwrap(),
            "payload"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_leaves_the_prefix_then_fails() {
        let dir = tmpdir("short");
        let plan = Arc::new(FaultPlan::parse("short-every:1", 3).unwrap());
        let chaos: Chaos = Some(plan);
        let p = dir.join("a.txt");
        let mut f = ChaosFile::create(&p, &chaos, "t").unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("chaos"), "{err}");
        let on_disk = std::fs::read(&p).unwrap();
        assert!(on_disk.len() < 10);
        assert_eq!(&on_disk[..], &b"0123456789"[..on_disk.len()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_at_zero_fails_everything() {
        let dir = tmpdir("crash");
        let plan = Arc::new(FaultPlan::parse("crash-at:0", 0).unwrap());
        let chaos: Chaos = Some(Arc::clone(&plan));
        assert!(ChaosFile::create(&dir.join("a.txt"), &chaos, "t").is_err());
        assert!(plan.crashed());
        assert!(write(&dir.join("b.txt"), b"x", &chaos, "t").is_err());
        assert!(read_to_string(&dir.join("a.txt"), &chaos, "t").is_err());
        // Nothing was created.
        assert!(!dir.join("a.txt").exists());
        assert!(!dir.join("b.txt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_durable_journals_the_sync_discipline() {
        let dir = tmpdir("durable");
        let plan = Arc::new(FaultPlan::from_seed(0));
        let chaos: Chaos = Some(Arc::clone(&plan));
        write_durable(&dir.join("d.txt"), b"bytes", &chaos, "t").unwrap();
        let labels: Vec<&str> = plan.journal().iter().map(|r| r.op.label()).collect();
        assert_eq!(labels, ["create", "write", "sync"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
