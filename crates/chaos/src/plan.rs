//! The seeded fault plan: spec parsing, per-operation decisions, the
//! durable-operation journal, and injection counters.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One durable filesystem operation, as journaled by the shim.
///
/// Only *mutating* operations are journaled — the crash-point sweep
/// replays writes, not reads. Reads still consult the plan for error
/// injection but leave no journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// A file was created (or truncated) at `path`.
    Create {
        /// The created file.
        path: PathBuf,
    },
    /// `bytes` were appended to the file's write stream.
    Write {
        /// The written file.
        path: PathBuf,
        /// The exact bytes of this write call.
        bytes: Vec<u8>,
    },
    /// The file (or directory) was fsynced (`sync_all`/`sync_data`).
    Sync {
        /// The synced path.
        path: PathBuf,
    },
    /// `from` was atomically renamed onto `to`.
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path.
        to: PathBuf,
    },
}

impl Op {
    /// Short operation label (`create`/`write`/`sync`/`rename`).
    pub fn label(&self) -> &'static str {
        match self {
            Op::Create { .. } => "create",
            Op::Write { .. } => "write",
            Op::Sync { .. } => "sync",
            Op::Rename { .. } => "rename",
        }
    }
}

/// One journal entry: which call site issued which operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// Call-site label (e.g. `diskcache.put`, `checkpoint.save`).
    pub site: String,
    /// The operation.
    pub op: Op,
}

/// What the plan decided for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Perform the operation normally.
    Proceed,
    /// Fail the operation with this error kind.
    Fail(std::io::ErrorKind),
    /// Write only the first `n` bytes, then fail (short write).
    Short(usize),
    /// Simulated crash: this and every later shimmed operation fails.
    Crash,
}

/// The injection mode parsed from a `--chaos-plan` spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Journal every durable operation; inject nothing.
    Record,
    /// Fail every `n`-th durable operation (seed shifts the phase).
    ErrEvery(u64),
    /// Short-write every `n`-th write (seed shifts the phase).
    ShortEvery(u64),
    /// Simulate a crash at durable operation `n` (0-based).
    CrashAt(u64),
}

impl Mode {
    fn describe(self) -> String {
        match self {
            Mode::Record => "record".into(),
            Mode::ErrEvery(n) => format!("err-every:{n}"),
            Mode::ShortEvery(n) => format!("short-every:{n}"),
            Mode::CrashAt(n) => format!("crash-at:{n}"),
        }
    }
}

/// A point-in-time copy of the plan's counters, for stats rendering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosSnapshot {
    /// Spec the plan was armed with (e.g. `record`, `err-every:3`).
    pub mode: String,
    /// Seed the plan was armed with.
    pub seed: u64,
    /// Durable operations observed (journaled or injected).
    pub ops: u64,
    /// Operations failed with an injected `ErrorKind`.
    pub injected_errors: u64,
    /// Writes truncated to a seeded prefix.
    pub short_writes: u64,
    /// Whether the simulated crash point has been reached.
    pub crashed: bool,
}

/// The seeded, thread-safe I/O fault plan. Shared via `Arc` between
/// every shimmed call site of a process; all state is internally
/// synchronized.
pub struct FaultPlan {
    mode: Mode,
    seed: u64,
    counter: AtomicU64,
    crashed: AtomicBool,
    injected_errors: AtomicU64,
    short_writes: AtomicU64,
    journal: Mutex<Vec<OpRecord>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("mode", &self.mode)
            .field("seed", &self.seed)
            .field("ops", &self.counter.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultPlan {
    /// A record-only plan: journals everything, injects nothing. This is
    /// what `--chaos-seed N` arms without a `--chaos-plan`.
    pub fn from_seed(seed: u64) -> FaultPlan {
        FaultPlan::new(Mode::Record, seed)
    }

    /// Builds a plan in an explicit mode.
    pub fn new(mode: Mode, seed: u64) -> FaultPlan {
        FaultPlan {
            mode,
            seed,
            counter: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            injected_errors: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
            journal: Mutex::new(Vec::new()),
        }
    }

    /// Parses an operator-facing plan spec: `record`, `err-every:N`,
    /// `short-every:N`, or `crash-at:N`.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message on unknown directives or bad
    /// counts (`err-every:0` would fail every op *and* read as a typo,
    /// so zero intervals are rejected).
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        let count = |rest: Option<&str>, what: &str| -> Result<u64, String> {
            let v = rest.ok_or_else(|| format!("`{what}` needs a count, e.g. `{what}:3`"))?;
            let n: u64 = v
                .parse()
                .map_err(|_| format!("bad count `{v}` in chaos plan `{spec}`"))?;
            Ok(n)
        };
        let (head, rest) = match spec.split_once(':') {
            Some((h, r)) => (h, Some(r)),
            None => (spec, None),
        };
        let mode = match head {
            "record" => Mode::Record,
            "err-every" => {
                let n = count(rest, "err-every")?;
                if n == 0 {
                    return Err("err-every interval must be positive".into());
                }
                Mode::ErrEvery(n)
            }
            "short-every" => {
                let n = count(rest, "short-every")?;
                if n == 0 {
                    return Err("short-every interval must be positive".into());
                }
                Mode::ShortEvery(n)
            }
            "crash-at" => Mode::CrashAt(count(rest, "crash-at")?),
            other => {
                return Err(format!(
                    "unknown chaos plan `{other}` (want record, err-every:N, short-every:N, or crash-at:N)"
                ))
            }
        };
        Ok(FaultPlan::new(mode, seed))
    }

    /// Journals one durable operation and decides its fate. Called by
    /// the shim for every mutating operation.
    pub fn on_op(&self, site: &str, op: Op) -> Action {
        if self.crashed.load(Ordering::Acquire) {
            // Post-crash: the process is "dead" to the filesystem.
            self.injected_errors.fetch_add(1, Ordering::Relaxed);
            return Action::Fail(std::io::ErrorKind::Other);
        }
        let idx = self.counter.fetch_add(1, Ordering::Relaxed);
        let is_write = matches!(op, Op::Write { .. });
        let write_len = match &op {
            Op::Write { bytes, .. } => bytes.len(),
            _ => 0,
        };
        lock(&self.journal).push(OpRecord {
            site: site.to_string(),
            op,
        });
        match self.mode {
            Mode::Record => Action::Proceed,
            Mode::ErrEvery(n) => {
                if (idx + self.seed).is_multiple_of(n) {
                    self.injected_errors.fetch_add(1, Ordering::Relaxed);
                    Action::Fail(pick_error_kind(self.seed, idx))
                } else {
                    Action::Proceed
                }
            }
            Mode::ShortEvery(n) => {
                if is_write && write_len > 0 && (idx + self.seed).is_multiple_of(n) {
                    self.short_writes.fetch_add(1, Ordering::Relaxed);
                    Action::Short((mix(self.seed, idx) as usize) % write_len)
                } else {
                    Action::Proceed
                }
            }
            Mode::CrashAt(n) => {
                if idx >= n {
                    self.crashed.store(true, Ordering::Release);
                    self.injected_errors.fetch_add(1, Ordering::Relaxed);
                    Action::Crash
                } else {
                    Action::Proceed
                }
            }
        }
    }

    /// Decides the fate of a *read* (not journaled — reads leave no
    /// crash-state behind, but error injection still applies).
    pub fn on_read(&self, _site: &str) -> Action {
        if self.crashed.load(Ordering::Acquire) {
            self.injected_errors.fetch_add(1, Ordering::Relaxed);
            return Action::Fail(std::io::ErrorKind::Other);
        }
        let idx = self.counter.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            Mode::ErrEvery(n) if (idx + self.seed).is_multiple_of(n) => {
                self.injected_errors.fetch_add(1, Ordering::Relaxed);
                Action::Fail(pick_error_kind(self.seed, idx))
            }
            _ => Action::Proceed,
        }
    }

    /// Whether the simulated crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// A copy of the journal so far (clean-run recording for the sweep).
    pub fn journal(&self) -> Vec<OpRecord> {
        lock(&self.journal).clone()
    }

    /// Counter snapshot for stats rendering.
    pub fn snapshot(&self) -> ChaosSnapshot {
        ChaosSnapshot {
            mode: self.mode.describe(),
            seed: self.seed,
            ops: self.counter.load(Ordering::Relaxed),
            injected_errors: self.injected_errors.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
            crashed: self.crashed(),
        }
    }
}

/// SplitMix64 — the workspace-standard cheap seeded mixer, inlined here
/// so the chaos crate stays dependency-free.
pub(crate) fn mix(seed: u64, idx: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(idx)
        .wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministically picks one of the error kinds real filesystems
/// produce under pressure.
fn pick_error_kind(seed: u64, idx: u64) -> std::io::ErrorKind {
    use std::io::ErrorKind::*;
    const KINDS: [std::io::ErrorKind; 4] = [Other, PermissionDenied, Interrupted, WriteZero];
    // `Interrupted` is retried by real I/O loops; as an *injected whole-
    // operation* failure it must not be, so it is mapped away at the
    // shim (which never returns raw Interrupted for injected faults).
    let k = KINDS[(mix(seed, idx) as usize) % KINDS.len()];
    if k == Interrupted {
        Other
    } else {
        k
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn w(n: usize) -> Op {
        Op::Write {
            path: PathBuf::from("/x"),
            bytes: vec![0u8; n],
        }
    }

    #[test]
    fn parse_accepts_the_grammar_and_rejects_garbage() {
        assert_eq!(FaultPlan::parse("record", 1).unwrap().mode, Mode::Record);
        assert_eq!(
            FaultPlan::parse("err-every:3", 1).unwrap().mode,
            Mode::ErrEvery(3)
        );
        assert_eq!(
            FaultPlan::parse("short-every:2", 1).unwrap().mode,
            Mode::ShortEvery(2)
        );
        assert_eq!(
            FaultPlan::parse("crash-at:7", 1).unwrap().mode,
            Mode::CrashAt(7)
        );
        for bad in [
            "explode",
            "err-every",
            "err-every:x",
            "err-every:0",
            "short-every:0",
            "crash-at",
        ] {
            assert!(FaultPlan::parse(bad, 1).is_err(), "{bad}");
        }
    }

    #[test]
    fn record_mode_journals_and_never_injects() {
        let p = FaultPlan::from_seed(42);
        for i in 0..10 {
            assert_eq!(p.on_op("t", w(i + 1)), Action::Proceed);
        }
        let snap = p.snapshot();
        assert_eq!(snap.ops, 10);
        assert_eq!(snap.injected_errors, 0);
        assert_eq!(p.journal().len(), 10);
        assert!(!p.crashed());
    }

    #[test]
    fn err_every_is_seeded_and_deterministic() {
        let run = |seed| {
            let p = FaultPlan::parse("err-every:3", seed).unwrap();
            (0..12).map(|i| p.on_op("t", w(i + 1))).collect::<Vec<_>>()
        };
        let a = run(5);
        assert_eq!(a, run(5), "same seed, same fault sequence");
        assert_eq!(a.iter().filter(|x| **x != Action::Proceed).count(), 4);
        // A different seed shifts the phase but keeps the density.
        let b = run(6);
        assert_ne!(a, b);
        assert_eq!(b.iter().filter(|x| **x != Action::Proceed).count(), 4);
    }

    #[test]
    fn short_every_only_tears_writes() {
        let p = FaultPlan::parse("short-every:1", 9).unwrap();
        match p.on_op("t", w(100)) {
            Action::Short(n) => assert!(n < 100),
            other => panic!("expected short write, got {other:?}"),
        }
        // Non-write ops pass through untouched.
        assert_eq!(
            p.on_op(
                "t",
                Op::Sync {
                    path: PathBuf::from("/x")
                }
            ),
            Action::Proceed
        );
        assert_eq!(p.snapshot().short_writes, 1);
    }

    #[test]
    fn crash_at_kills_everything_after() {
        let p = FaultPlan::parse("crash-at:2", 0).unwrap();
        assert_eq!(p.on_op("t", w(1)), Action::Proceed);
        assert_eq!(p.on_op("t", w(1)), Action::Proceed);
        assert_eq!(p.on_op("t", w(1)), Action::Crash);
        assert!(p.crashed());
        // Post-crash: every operation (and read) fails.
        assert!(matches!(p.on_op("t", w(1)), Action::Fail(_)));
        assert!(matches!(p.on_read("t"), Action::Fail(_)));
        // The journal holds only the pre-crash ops plus the crash op.
        assert_eq!(p.journal().len(), 3);
    }

    #[test]
    fn injected_errors_are_never_raw_interrupted() {
        let p = FaultPlan::parse("err-every:1", 0).unwrap();
        for i in 0..64 {
            match p.on_op("t", w(i + 1)) {
                Action::Fail(k) => assert_ne!(k, std::io::ErrorKind::Interrupted),
                other => panic!("expected failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn snapshot_reports_the_armed_mode() {
        let p = FaultPlan::parse("err-every:4", 11).unwrap();
        let s = p.snapshot();
        assert_eq!(s.mode, "err-every:4");
        assert_eq!(s.seed, 11);
    }
}
