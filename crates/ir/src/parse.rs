//! Textual IR parsing (the inverse of [`crate::print_function`]).

use crate::{
    Block, BlockId, Cond, Edge, Function, Module, Op, Opcode, Reg, RegClass, SwitchCase, Terminator,
};
use std::error::Error;
use std::fmt;

/// A parse failure, with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Parses a module from the textual IR format. Blank lines and `//`
/// comment lines are ignored (fuzz repro files carry their failure
/// description as a comment header).
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input.
///
/// # Examples
///
/// ```
/// let text = "module @m\n\nfunc @f {\n  bb0 (weight 1):\n    ret\n}\n";
/// let m = treegion_ir::parse_module(text)?;
/// assert_eq!(m.functions().len(), 1);
/// # Ok::<(), treegion_ir::ParseError>(())
/// ```
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut lines = text.lines().enumerate().peekable();
    let mut name = String::from("module");
    // Optional module header (blank lines and `//` comments may precede it).
    while let Some((_, raw)) = lines.peek() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            lines.next();
            continue;
        }
        if let Some(rest) = line.strip_prefix("module @") {
            name = rest.trim().to_string();
            lines.next();
        }
        break;
    }
    let mut module = Module::new(name);
    // Functions.
    loop {
        // Skip blanks and comments.
        while matches!(lines.peek(), Some((_, l)) if l.trim().is_empty() || l.trim().starts_with("//"))
        {
            lines.next();
        }
        let Some(&(n, raw)) = lines.peek() else { break };
        let line = raw.trim();
        let Some(rest) = line.strip_prefix("func @") else {
            return Err(err(n, format!("expected `func @name {{`, got `{line}`")));
        };
        let Some(fname) = rest.strip_suffix('{').map(str::trim) else {
            return Err(err(n, "expected `{` at end of func header".into()));
        };
        lines.next();
        let f = parse_function_body(fname, &mut lines)?;
        module.add_function(f);
    }
    Ok(module)
}

/// Parses a single `func @name { ... }` definition.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let m = parse_module(text)?;
    m.functions()
        .first()
        .cloned()
        .ok_or_else(|| err(1, "no function in input".into()))
}

type Lines<'a> = std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>;

fn err(line0: usize, message: String) -> ParseError {
    ParseError {
        line: line0 + 1,
        message,
    }
}

fn parse_function_body(name: &str, lines: &mut Lines<'_>) -> Result<Function, ParseError> {
    let mut f = Function::new(name);
    let mut pending: Option<(usize, f64, Vec<Op>)> = None; // (line, weight, ops)
    let mut blocks: Vec<(f64, Vec<Op>, Terminator)> = Vec::new();

    for (n, raw) in lines.by_ref() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if line == "}" {
            if pending.is_some() {
                return Err(err(n, "block is missing a terminator".into()));
            }
            for (weight, ops, term) in blocks {
                f.add_block(Block::new(ops, term, weight));
            }
            if f.num_blocks() == 0 {
                return Err(err(n, "function has no blocks".into()));
            }
            return Ok(f);
        }
        if let Some(rest) = line.strip_prefix("bb") {
            if let Some(colon) = rest.rfind(':') {
                // Block header: `bbN (weight W):`
                let header = &rest[..colon];
                let mut parts = header.splitn(2, '(');
                let idx: usize = parts
                    .next()
                    .unwrap()
                    .trim()
                    .parse()
                    .map_err(|_| err(n, "bad block index".into()))?;
                if idx != blocks.len() + usize::from(pending.is_some()) {
                    return Err(err(n, format!("blocks must appear in order; got bb{idx}")));
                }
                let weight = match parts.next() {
                    Some(w) => {
                        let w = w.trim_end_matches(')').trim();
                        let w = w.strip_prefix("weight").unwrap_or(w).trim();
                        w.parse().map_err(|_| err(n, format!("bad weight `{w}`")))?
                    }
                    None => 0.0,
                };
                if pending.is_some() {
                    return Err(err(n, "previous block is missing a terminator".into()));
                }
                pending = Some((n, weight, Vec::new()));
                continue;
            }
        }
        let Some((_, weight, ops)) = pending.as_mut() else {
            return Err(err(n, format!("statement outside a block: `{line}`")));
        };
        if let Some(term) = try_parse_terminator(line, n)? {
            blocks.push((*weight, std::mem::take(ops), term));
            pending = None;
        } else {
            ops.push(parse_op(line, n)?);
        }
    }
    Err(ParseError {
        line: 0,
        message: "unexpected end of input inside function".into(),
    })
}

fn try_parse_terminator(line: &str, n: usize) -> Result<Option<Terminator>, ParseError> {
    let word = line.split_whitespace().next().unwrap_or("");
    match word {
        "jump" => {
            let (target, count) = parse_edge(line["jump".len()..].trim(), n)?;
            Ok(Some(Terminator::Jump(Edge::new(target, count))))
        }
        "branch" => {
            let rest = line["branch".len()..].trim();
            let parts = split_top_level(rest);
            if parts.len() != 3 {
                return Err(err(n, "branch needs: cond, then (c), else (c)".into()));
            }
            let cond = parse_reg(parts[0].trim(), n)?;
            let (tt, tc) = parse_edge(parts[1].trim(), n)?;
            let (et, ec) = parse_edge(parts[2].trim(), n)?;
            Ok(Some(Terminator::Branch {
                cond,
                then_: Edge::new(tt, tc),
                else_: Edge::new(et, ec),
            }))
        }
        "switch" => {
            let rest = line["switch".len()..].trim();
            let parts = split_top_level(rest);
            if parts.len() < 2 {
                return Err(err(n, "switch needs operand and default".into()));
            }
            let on = parse_reg(parts[0].trim(), n)?;
            let mut cases = Vec::new();
            let mut default = None;
            for p in &parts[1..] {
                let p = p.trim();
                if let Some(d) = p.strip_prefix("default") {
                    let (t, c) = parse_edge(d.trim(), n)?;
                    default = Some(Edge::new(t, c));
                } else {
                    let inner = p
                        .strip_prefix('[')
                        .and_then(|s| s.strip_suffix(']'))
                        .ok_or_else(|| err(n, format!("bad switch case `{p}`")))?;
                    let (val, edge) = inner
                        .split_once("->")
                        .ok_or_else(|| err(n, format!("bad switch case `{p}`")))?;
                    let value: i64 = val
                        .trim()
                        .parse()
                        .map_err(|_| err(n, format!("bad case value `{val}`")))?;
                    let (t, c) = parse_edge(edge.trim(), n)?;
                    cases.push(SwitchCase {
                        value,
                        edge: Edge::new(t, c),
                    });
                }
            }
            let default = default.ok_or_else(|| err(n, "switch missing default".into()))?;
            Ok(Some(Terminator::Switch { on, cases, default }))
        }
        "ret" => {
            let rest = line["ret".len()..].trim();
            let value = if rest.is_empty() {
                None
            } else {
                Some(parse_reg(rest, n)?)
            };
            Ok(Some(Terminator::Ret { value }))
        }
        _ => Ok(None),
    }
}

/// Splits on commas that are not inside `[...]` or `(...)`.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in s.char_indices() {
        match ch {
            '[' | '(' => depth += 1,
            ']' | ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Parses `bbN (count)`.
fn parse_edge(s: &str, n: usize) -> Result<(BlockId, f64), ParseError> {
    let (bb, rest) = match s.find('(') {
        Some(i) => (s[..i].trim(), Some(s[i + 1..].trim_end_matches(')').trim())),
        None => (s.trim(), None),
    };
    let idx: usize = bb
        .strip_prefix("bb")
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| err(n, format!("bad block reference `{bb}`")))?;
    let count = match rest {
        Some(c) => c
            .parse()
            .map_err(|_| err(n, format!("bad edge count `{c}`")))?,
        None => 0.0,
    };
    Ok((BlockId::from_index(idx), count))
}

fn parse_reg(s: &str, n: usize) -> Result<Reg, ParseError> {
    let s = s.trim();
    let (class, rest) = match s.chars().next() {
        Some('r') => (RegClass::Gpr, &s[1..]),
        Some('p') => (RegClass::Pred, &s[1..]),
        Some('b') => (RegClass::Btr, &s[1..]),
        _ => return Err(err(n, format!("bad register `{s}`"))),
    };
    let index: u32 = rest
        .parse()
        .map_err(|_| err(n, format!("bad register `{s}`")))?;
    Ok(Reg::new(class, index))
}

fn parse_cond(s: &str, n: usize) -> Result<Cond, ParseError> {
    Cond::ALL
        .into_iter()
        .find(|c| c.mnemonic() == s)
        .ok_or_else(|| err(n, format!("bad condition `{s}`")))
}

/// Parses one op line: `[defs =] mnemonic operands`.
fn parse_op(line: &str, n: usize) -> Result<Op, ParseError> {
    let (defs_str, rest) = match line.split_once('=') {
        Some((d, r)) => (Some(d.trim()), r.trim()),
        None => (None, line.trim()),
    };
    let mut defs = Vec::new();
    if let Some(d) = defs_str {
        for part in d.split(',') {
            defs.push(parse_reg(part.trim(), n)?);
        }
    }
    let (mnemonic, operands) = match rest.split_once(char::is_whitespace) {
        Some((m, o)) => (m.trim(), o.trim()),
        None => (rest, ""),
    };
    let opcode = parse_opcode(mnemonic, n)?;
    let mut uses = Vec::new();
    let mut imm = 0i64;
    let mut target = None;
    if !operands.is_empty() {
        for part in split_top_level(operands) {
            let part = part.trim();
            if let Some(i) = part.strip_prefix('#') {
                imm = i
                    .parse()
                    .map_err(|_| err(n, format!("bad immediate `{part}`")))?;
            } else if let Some(t) = part.strip_prefix('@') {
                let idx: usize = t
                    .parse()
                    .map_err(|_| err(n, format!("bad target `{part}`")))?;
                target = Some(BlockId::from_index(idx));
            } else {
                uses.push(parse_reg(part, n)?);
            }
        }
    }
    let mut op = Op::new(opcode, defs, uses, imm);
    op.target = target;
    Ok(op)
}

fn parse_opcode(m: &str, n: usize) -> Result<Opcode, ParseError> {
    if let Some(c) = m.strip_prefix("cmp.") {
        return Ok(Opcode::Cmp(parse_cond(c, n)?));
    }
    if let Some(c) = m.strip_prefix("cmpp.") {
        return Ok(Opcode::Cmpp(parse_cond(c, n)?));
    }
    let op = match m {
        "nop" => Opcode::Nop,
        "movi" => Opcode::MovI,
        "mov" => Opcode::Mov,
        "add" => Opcode::Add,
        "sub" => Opcode::Sub,
        "mul" => Opcode::Mul,
        "div" => Opcode::Div,
        "and" => Opcode::And,
        "or" => Opcode::Or,
        "xor" => Opcode::Xor,
        "shl" => Opcode::Shl,
        "shr" => Opcode::Shr,
        "sar" => Opcode::Sar,
        "fadd" => Opcode::FAdd,
        "fsub" => Opcode::FSub,
        "fmul" => Opcode::FMul,
        "fdiv" => Opcode::FDiv,
        "load" => Opcode::Load,
        "store" => Opcode::Store,
        "call" => Opcode::Call,
        "pbr" => Opcode::Pbr,
        "brct" => Opcode::Brct,
        "brcf" => Opcode::Brcf,
        "bru" => Opcode::Bru,
        "ret" => Opcode::Ret,
        "copy" => Opcode::Copy,
        _ => return Err(err(n, format!("unknown mnemonic `{m}`"))),
    };
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{print_function, print_module, verify_function, FunctionBuilder};

    #[test]
    fn roundtrips_a_branching_function() {
        let mut b = FunctionBuilder::new("main");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (x, y, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [
                Op::load(x, y, 8),
                Op::cmp(Cond::Gt, c, x, y),
                Op::store(y, x, 16),
            ],
        );
        b.branch(bb0, c, (bb1, 35.0), (bb2, 65.0));
        b.ret(bb1, Some(c));
        b.jump(bb2, bb1, 65.0);
        let f = b.finish();
        let text = print_function(&f);
        let f2 = parse_function(&text).unwrap();
        assert_eq!(print_function(&f2), text);
    }

    #[test]
    fn roundtrips_switch_and_module() {
        let mut b = FunctionBuilder::new("sw");
        let (bb0, bb1, bb2, bb3) = (b.block(), b.block(), b.block(), b.block());
        let on = b.gpr();
        b.push(bb0, Op::movi(on, 3));
        b.switch(bb0, on, vec![(1, bb1, 5.0), (9, bb2, 2.0)], (bb3, 1.0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        b.ret(bb3, None);
        let mut m = Module::new("prog");
        m.add_function(b.finish());
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        assert_eq!(print_module(&m2), text);
        assert_eq!(m2.name(), "prog");
    }

    #[test]
    fn parsed_function_verifies() {
        let text = "func @f {\n  bb0 (weight 10):\n    r0 = movi #5\n    r1 = add r0, r0\n    jump bb1 (10)\n  bb1 (weight 10):\n    ret r1\n}\n";
        let f = parse_function(text).unwrap();
        verify_function(&f).unwrap();
        assert_eq!(f.num_ops(), 2);
    }

    #[test]
    fn reports_line_numbers_on_error() {
        let text = "func @f {\n  bb0 (weight 1):\n    r0 = bogus r1\n    ret\n}\n";
        let e = parse_function(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_missing_terminator() {
        let text = "func @f {\n  bb0 (weight 1):\n    r0 = movi #1\n}\n";
        assert!(parse_function(text).is_err());
    }

    #[test]
    fn rejects_out_of_order_blocks() {
        let text = "func @f {\n  bb1 (weight 1):\n    ret\n}\n";
        assert!(parse_function(text).is_err());
    }

    #[test]
    fn comments_are_skipped_everywhere() {
        let text = "// repro header\n// failing config: treegion/gw/8U\nmodule @m\n\nfunc @f {\n  // entry\n  bb0 (weight 1):\n    r0 = movi #5\n    // trailing note\n    ret r0\n}\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.functions().len(), 1);
        assert_eq!(m.functions()[0].num_ops(), 1);
    }

    #[test]
    fn fractional_weights_roundtrip() {
        let text =
            "func @f {\n  bb0 (weight 2.5):\n    jump bb1 (2.5)\n  bb1 (weight 2.5):\n    ret\n}\n";
        let f = parse_function(text).unwrap();
        assert_eq!(f.block(BlockId::from_index(0)).weight, 2.5);
    }
}
