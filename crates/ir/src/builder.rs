//! Ergonomic function construction.
//!
//! [`FunctionBuilder`] lets examples and tests build CFGs in two passes:
//! declare blocks first (so forward references work), then fill each block
//! with ops and a terminator.

use crate::{Block, BlockId, Edge, Function, Op, Reg, RegClass, SwitchCase, Terminator};

/// Builder for a [`Function`].
///
/// # Examples
///
/// Build a diamond CFG:
///
/// ```
/// use treegion_ir::{Cond, FunctionBuilder, Op, RegClass};
///
/// let mut b = FunctionBuilder::new("diamond");
/// let (bb0, bb1, bb2, bb3) = (b.block(), b.block(), b.block(), b.block());
/// let c = b.reg(RegClass::Gpr);
/// b.push(bb0, Op::movi(c, 1));
/// b.branch(bb0, c, (bb1, 60.0), (bb2, 40.0));
/// b.jump(bb1, bb3, 60.0);
/// b.jump(bb2, bb3, 40.0);
/// b.ret(bb3, None);
/// let f = b.finish();
/// assert_eq!(f.num_blocks(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    blocks: Vec<PendingBlock>,
    next_reg: [u32; 3],
}

#[derive(Debug, Default)]
struct PendingBlock {
    ops: Vec<Op>,
    term: Option<Terminator>,
}

impl FunctionBuilder {
    /// Creates a builder for a function named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            name: name.into(),
            blocks: Vec::new(),
            next_reg: [0; 3],
        }
    }

    /// Declares a new (empty) block; the first declared block is the entry.
    pub fn block(&mut self) -> BlockId {
        self.blocks.push(PendingBlock::default());
        BlockId::from_index(self.blocks.len() - 1)
    }

    /// Returns a fresh virtual register of the given class.
    pub fn reg(&mut self, class: RegClass) -> Reg {
        let slot = &mut self.next_reg[class.index()];
        let r = Reg::new(class, *slot);
        *slot += 1;
        r
    }

    /// Shorthand for `self.reg(RegClass::Gpr)`.
    pub fn gpr(&mut self) -> Reg {
        self.reg(RegClass::Gpr)
    }

    /// Appends an op to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not declared by this builder.
    pub fn push(&mut self, block: BlockId, op: Op) {
        for r in op.defs.iter().chain(op.uses.iter()) {
            let slot = &mut self.next_reg[r.class().index()];
            if r.index() >= *slot {
                *slot = r.index() + 1;
            }
        }
        self.blocks[block.index()].ops.push(op);
    }

    /// Appends several ops to `block`.
    pub fn push_all(&mut self, block: BlockId, ops: impl IntoIterator<Item = Op>) {
        for op in ops {
            self.push(block, op);
        }
    }

    /// Sets `block`'s terminator to an unconditional jump.
    pub fn jump(&mut self, block: BlockId, target: BlockId, count: f64) {
        self.set_term(block, Terminator::Jump(Edge::new(target, count)));
    }

    /// Sets `block`'s terminator to a two-way branch on `cond`.
    pub fn branch(
        &mut self,
        block: BlockId,
        cond: Reg,
        then_: (BlockId, f64),
        else_: (BlockId, f64),
    ) {
        self.set_term(
            block,
            Terminator::Branch {
                cond,
                then_: Edge::new(then_.0, then_.1),
                else_: Edge::new(else_.0, else_.1),
            },
        );
    }

    /// Sets `block`'s terminator to a multiway switch on `on`.
    pub fn switch(
        &mut self,
        block: BlockId,
        on: Reg,
        cases: Vec<(i64, BlockId, f64)>,
        default: (BlockId, f64),
    ) {
        self.set_term(
            block,
            Terminator::Switch {
                on,
                cases: cases
                    .into_iter()
                    .map(|(value, target, count)| SwitchCase {
                        value,
                        edge: Edge::new(target, count),
                    })
                    .collect(),
                default: Edge::new(default.0, default.1),
            },
        );
    }

    /// Sets `block`'s terminator to a return.
    pub fn ret(&mut self, block: BlockId, value: Option<Reg>) {
        self.set_term(block, Terminator::Ret { value });
    }

    /// Sets an arbitrary terminator.
    pub fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.index()].term = Some(term);
    }

    /// Finalizes the function. Block weights are set to the sum of outgoing
    /// edge counts; for return blocks, to the sum of incoming edge counts
    /// (1.0 for a return-only entry block).
    ///
    /// # Panics
    ///
    /// Panics if any declared block lacks a terminator.
    pub fn finish(self) -> Function {
        let mut f = Function::new(self.name);
        // First pass: materialize blocks with provisional weights.
        let terms: Vec<Terminator> = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                b.term
                    .clone()
                    .unwrap_or_else(|| panic!("block bb{i} has no terminator"))
            })
            .collect();
        // Incoming counts, to weight return blocks.
        let mut incoming = vec![0.0f64; self.blocks.len()];
        for t in &terms {
            for e in t.edges() {
                incoming[e.target.index()] += e.count;
            }
        }
        for (i, pending) in self.blocks.into_iter().enumerate() {
            let term = terms[i].clone();
            let weight = if term.is_ret() {
                if i == 0 {
                    1.0
                } else {
                    incoming[i]
                }
            } else {
                term.out_count()
            };
            f.add_block(Block::new(pending.ops, term, weight));
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cond;

    #[test]
    fn builder_constructs_diamond_with_weights() {
        let mut b = FunctionBuilder::new("diamond");
        let (bb0, bb1, bb2, bb3) = (b.block(), b.block(), b.block(), b.block());
        let c = b.gpr();
        b.push(bb0, Op::movi(c, 1));
        b.branch(bb0, c, (bb1, 60.0), (bb2, 40.0));
        b.jump(bb1, bb3, 60.0);
        b.jump(bb2, bb3, 40.0);
        b.ret(bb3, None);
        let f = b.finish();
        assert_eq!(f.block(bb0).weight, 100.0);
        assert_eq!(f.block(bb1).weight, 60.0);
        assert_eq!(f.block(bb3).weight, 100.0);
        assert_eq!(f.block(bb0).successors(), vec![bb1, bb2]);
    }

    #[test]
    #[should_panic(expected = "has no terminator")]
    fn finish_panics_on_missing_terminator() {
        let mut b = FunctionBuilder::new("bad");
        let _ = b.block();
        let _ = b.finish();
    }

    #[test]
    fn fresh_regs_do_not_collide_with_pushed_ops() {
        let mut b = FunctionBuilder::new("t");
        let bb0 = b.block();
        b.push(bb0, Op::movi(Reg::gpr(7), 0));
        let r = b.gpr();
        assert_eq!(r, Reg::gpr(8));
        b.ret(bb0, None);
        let _ = b.finish();
    }

    #[test]
    fn switch_builder_orders_cases_then_default() {
        let mut b = FunctionBuilder::new("sw");
        let (bb0, bb1, bb2, bb3) = (b.block(), b.block(), b.block(), b.block());
        let on = b.gpr();
        b.push(bb0, Op::movi(on, 2));
        b.switch(bb0, on, vec![(1, bb1, 5.0), (2, bb2, 10.0)], (bb3, 1.0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        b.ret(bb3, None);
        let f = b.finish();
        assert_eq!(f.block(bb0).successors(), vec![bb1, bb2, bb3]);
        assert_eq!(f.block(bb0).weight, 16.0);
    }

    #[test]
    fn cmp_feeding_branch_builds() {
        let mut b = FunctionBuilder::new("cmp");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (x, y, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [Op::movi(x, 1), Op::movi(y, 2), Op::cmp(Cond::Lt, c, x, y)],
        );
        b.branch(bb0, c, (bb1, 1.0), (bb2, 0.0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        assert_eq!(f.num_ops(), 3);
    }
}
