//! Basic blocks, control-flow edges, and terminators.

use crate::{Op, Reg};
use std::fmt;

/// Identifies a basic block within a [`Function`](crate::Function).
///
/// Block ids are dense indices; blocks are never removed, only added (tail
/// duplication creates new blocks), so ids stay stable for the lifetime of
/// a function.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a raw index.
    pub fn from_index(index: usize) -> Self {
        BlockId(index as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A profile-weighted control-flow edge to `target`.
///
/// `count` is the number of times the edge was traversed in the profiling
/// run (the paper uses training-input profiles from SPECint95; our
/// workloads synthesize equivalent counts).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Edge {
    /// Destination block.
    pub target: BlockId,
    /// Profile traversal count.
    pub count: f64,
}

impl Edge {
    /// Creates an edge.
    pub fn new(target: BlockId, count: f64) -> Self {
        Edge { target, count }
    }
}

/// One case of a [`Terminator::Switch`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SwitchCase {
    /// The matched value.
    pub value: i64,
    /// The edge taken when the switch operand equals `value`.
    pub edge: Edge,
}

/// How control leaves a basic block.
///
/// Control flow is structured at the IR level; region lowering converts
/// terminators into the PlayDoh-style `CMPP`/`PBR`/branch op sequences seen
/// in the paper's figures.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(Edge),
    /// Two-way conditional branch: taken if `cond != 0`.
    Branch {
        /// GPR holding the condition (0 = false).
        cond: Reg,
        /// Edge taken when `cond != 0`.
        then_: Edge,
        /// Edge taken when `cond == 0`.
        else_: Edge,
    },
    /// Multiway branch on the value of `on`. The paper's gcc/perl treegions
    /// are rooted by such branches (Figure 9).
    Switch {
        /// GPR that is compared against each case value.
        on: Reg,
        /// The cases, in matching order.
        cases: Vec<SwitchCase>,
        /// Edge taken when no case matches.
        default: Edge,
    },
    /// Function return with an optional value.
    Ret {
        /// Returned GPR, if any.
        value: Option<Reg>,
    },
}

impl Terminator {
    /// Iterates over the outgoing edges, in successor order
    /// (then/else for branches; cases then default for switches).
    pub fn edges(&self) -> Vec<Edge> {
        match self {
            Terminator::Jump(e) => vec![*e],
            Terminator::Branch { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Switch { cases, default, .. } => {
                let mut v: Vec<Edge> = cases.iter().map(|c| c.edge).collect();
                v.push(*default);
                v
            }
            Terminator::Ret { .. } => vec![],
        }
    }

    /// Successor block ids, in successor order.
    pub fn successors(&self) -> Vec<BlockId> {
        self.edges().into_iter().map(|e| e.target).collect()
    }

    /// Total outgoing profile count.
    pub fn out_count(&self) -> f64 {
        self.edges().iter().map(|e| e.count).sum()
    }

    /// Number of successors.
    pub fn num_successors(&self) -> usize {
        match self {
            Terminator::Jump(_) => 1,
            Terminator::Branch { .. } => 2,
            Terminator::Switch { cases, .. } => cases.len() + 1,
            Terminator::Ret { .. } => 0,
        }
    }

    /// `true` if this is a return.
    pub fn is_ret(&self) -> bool {
        matches!(self, Terminator::Ret { .. })
    }

    /// Rewrites every edge target using `f`, which is called once per edge
    /// in successor order (used by tail duplication).
    pub fn retarget(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(e) => e.target = f(e.target),
            Terminator::Branch { then_, else_, .. } => {
                then_.target = f(then_.target);
                else_.target = f(else_.target);
            }
            Terminator::Switch { cases, default, .. } => {
                for c in cases.iter_mut() {
                    c.edge.target = f(c.edge.target);
                }
                default.target = f(default.target);
            }
            Terminator::Ret { .. } => {}
        }
    }

    /// Scales every edge count by `factor` (used when splitting profile
    /// weight across tail-duplicated copies).
    pub fn scale_counts(&mut self, factor: f64) {
        match self {
            Terminator::Jump(e) => e.count *= factor,
            Terminator::Branch { then_, else_, .. } => {
                then_.count *= factor;
                else_.count *= factor;
            }
            Terminator::Switch { cases, default, .. } => {
                for c in cases.iter_mut() {
                    c.edge.count *= factor;
                }
                default.count *= factor;
            }
            Terminator::Ret { .. } => {}
        }
    }
}

/// A basic block: straight-line ops plus a terminator, with a profile
/// execution count.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Straight-line operations (no control flow).
    pub ops: Vec<Op>,
    /// How control leaves the block.
    pub term: Terminator,
    /// Profile execution count of the block.
    pub weight: f64,
}

impl Block {
    /// Creates a block.
    pub fn new(ops: Vec<Op>, term: Terminator, weight: f64) -> Self {
        Block { ops, term, weight }
    }

    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        self.term.successors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    fn bb(i: usize) -> BlockId {
        BlockId::from_index(i)
    }

    #[test]
    fn block_id_roundtrip_and_display() {
        assert_eq!(bb(7).index(), 7);
        assert_eq!(bb(7).to_string(), "bb7");
    }

    #[test]
    fn branch_edges_in_then_else_order() {
        let t = Terminator::Branch {
            cond: Reg::gpr(0),
            then_: Edge::new(bb(1), 30.0),
            else_: Edge::new(bb(2), 70.0),
        };
        assert_eq!(t.successors(), vec![bb(1), bb(2)]);
        assert_eq!(t.out_count(), 100.0);
        assert_eq!(t.num_successors(), 2);
    }

    #[test]
    fn switch_edges_cases_then_default() {
        let t = Terminator::Switch {
            on: Reg::gpr(1),
            cases: vec![
                SwitchCase {
                    value: 0,
                    edge: Edge::new(bb(1), 10.0),
                },
                SwitchCase {
                    value: 5,
                    edge: Edge::new(bb(2), 20.0),
                },
            ],
            default: Edge::new(bb(3), 5.0),
        };
        assert_eq!(t.successors(), vec![bb(1), bb(2), bb(3)]);
        assert_eq!(t.num_successors(), 3);
        assert_eq!(t.out_count(), 35.0);
    }

    #[test]
    fn ret_has_no_successors() {
        let t = Terminator::Ret { value: None };
        assert!(t.successors().is_empty());
        assert!(t.is_ret());
        assert_eq!(t.out_count(), 0.0);
    }

    #[test]
    fn retarget_rewrites_all_edges() {
        let mut t = Terminator::Branch {
            cond: Reg::gpr(0),
            then_: Edge::new(bb(1), 1.0),
            else_: Edge::new(bb(2), 2.0),
        };
        t.retarget(|b| if b == bb(1) { bb(9) } else { b });
        assert_eq!(t.successors(), vec![bb(9), bb(2)]);
    }

    #[test]
    fn scale_counts_scales_everything() {
        let mut t = Terminator::Switch {
            on: Reg::gpr(1),
            cases: vec![SwitchCase {
                value: 0,
                edge: Edge::new(bb(1), 10.0),
            }],
            default: Edge::new(bb(2), 30.0),
        };
        t.scale_counts(0.5);
        assert_eq!(t.out_count(), 20.0);
    }
}
