//! Operations (`Op`s in the paper's Op/MultiOp terminology).
//!
//! The IR has two tiers that share this one `Op` type:
//!
//! * **Source-level ops** appear inside basic blocks: arithmetic, memory,
//!   compares, moves, calls. Control flow lives in the block
//!   [`Terminator`](crate::Terminator), not in ops.
//! * **Lowered ops** are materialized by region lowering just before
//!   scheduling: `CMPP` (compare-to-predicate), `PBR` (prepare branch
//!   target), the `BRCT`/`BRCF`/`BRU` branches, `RET`, and `COPY` (renaming
//!   fix-up). These mirror the HP PlayDoh operation repertoire used in the
//!   paper's example schedules (Figures 4 and 5).

use crate::{BlockId, Reg};
use std::fmt;

/// Comparison condition for `Cmp`-family ops and `CMPP`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// All conditions, in a stable order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    /// Evaluates the condition over two signed integers.
    ///
    /// # Examples
    ///
    /// ```
    /// use treegion_ir::Cond;
    /// assert!(Cond::Lt.eval(1, 2));
    /// assert!(!Cond::Gt.eval(1, 2));
    /// ```
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// The negated condition: `a ~c b == !(a c b)` for all inputs.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// The textual-IR mnemonic suffix (`eq`, `ne`, `lt`, `le`, `gt`, `ge`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The operation code of an [`Op`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Opcode {
    /// No operation.
    Nop,
    /// `d = imm` — load immediate.
    MovI,
    /// `d = s` — register move.
    Mov,
    /// `d = s0 + s1`.
    Add,
    /// `d = s0 - s1`.
    Sub,
    /// `d = s0 * s1`.
    Mul,
    /// `d = s0 / s1` (signed; division by zero yields 0 by definition).
    Div,
    /// `d = s0 & s1`.
    And,
    /// `d = s0 | s1`.
    Or,
    /// `d = s0 ^ s1`.
    Xor,
    /// `d = s0 << (s1 & 63)`.
    Shl,
    /// `d = ((s0 as u64) >> (s1 & 63)) as i64` — logical shift right.
    Shr,
    /// `d = s0 >> (s1 & 63)` — arithmetic shift right.
    Sar,
    /// `d = (s0 cond s1) as i64` — compare into a GPR (0 or 1).
    Cmp(Cond),
    /// Floating-point add over the `f64` bit patterns of the operands.
    FAdd,
    /// Floating-point subtract.
    FSub,
    /// Floating-point multiply (3-cycle latency on the paper's machines).
    FMul,
    /// Floating-point divide (9-cycle latency on the paper's machines).
    FDiv,
    /// `d = mem[s0 + imm]` — load (2-cycle latency).
    Load,
    /// `mem[s0 + imm] = s1` — store. Never speculated.
    Store,
    /// `d = call(args...)` — opaque call, modeled as a deterministic pure
    /// function of its arguments so schedules remain simulatable.
    Call,

    // ---- Lowered (PlayDoh-style) ops, produced by region lowering ----
    /// `p[, p'] = CMPP(s0 cond s1) [? pin]` — compare to predicate, with
    /// optional complement destination and optional AND-guard input
    /// predicate, exactly as in Figure 5 of the paper.
    Cmpp(Cond),
    /// `b = PBR(block)` — prepare-to-branch: load a branch-target register.
    Pbr,
    /// `BRCT(b, p)` — branch to `b` if predicate `p` is true.
    Brct,
    /// `BRCF(b, p)` — branch to `b` if predicate `p` is false.
    Brcf,
    /// `BRU(b)` — unconditional branch to `b`.
    Bru,
    /// Return from the function (optional value in `uses[0]`).
    Ret,
    /// `d = s` — copy inserted by compile-time register renaming at region
    /// exits. Excluded from speedup computation, per Section 3.
    Copy,
    /// `SPILL(s) -> slot #imm` — store a register to a private spill slot,
    /// inserted by the lowering layer when a finite register file
    /// overflows. Occupies a memory unit but never aliases program memory
    /// (slots are compiler-owned), so it stays outside the memory
    /// serialization chain.
    Spill,
    /// `d = RELOAD slot #imm` — load a previously spilled value back from
    /// its private slot (load-latency memory op, same aliasing exemption
    /// as [`Opcode::Spill`]).
    Reload,
}

impl Opcode {
    /// `true` for ops that read or write memory.
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// `true` for ops that transfer control (lowered branches and `RET`).
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Opcode::Brct | Opcode::Brcf | Opcode::Bru | Opcode::Ret
        )
    }

    /// `true` for ops that may be speculated above branches.
    ///
    /// Stores, branches, and calls are never speculated. Loads are
    /// speculable under the paper's evaluation model (no caches, no
    /// faults). Everything else is freely speculable after renaming.
    /// Spills stay put (store-like; also keeps them out of twin merging),
    /// while reloads are speculable like any load.
    pub fn is_speculable(self) -> bool {
        !matches!(
            self,
            Opcode::Store
                | Opcode::Call
                | Opcode::Brct
                | Opcode::Brcf
                | Opcode::Bru
                | Opcode::Ret
                | Opcode::Spill
        )
    }

    /// `true` for ops with side effects that must be guarded by their path
    /// predicate when scheduled into a multi-path region.
    pub fn has_side_effects(self) -> bool {
        matches!(self, Opcode::Store | Opcode::Call)
    }

    /// The textual-IR mnemonic.
    pub fn mnemonic(self) -> String {
        match self {
            Opcode::Nop => "nop".into(),
            Opcode::MovI => "movi".into(),
            Opcode::Mov => "mov".into(),
            Opcode::Add => "add".into(),
            Opcode::Sub => "sub".into(),
            Opcode::Mul => "mul".into(),
            Opcode::Div => "div".into(),
            Opcode::And => "and".into(),
            Opcode::Or => "or".into(),
            Opcode::Xor => "xor".into(),
            Opcode::Shl => "shl".into(),
            Opcode::Shr => "shr".into(),
            Opcode::Sar => "sar".into(),
            Opcode::Cmp(c) => format!("cmp.{c}"),
            Opcode::FAdd => "fadd".into(),
            Opcode::FSub => "fsub".into(),
            Opcode::FMul => "fmul".into(),
            Opcode::FDiv => "fdiv".into(),
            Opcode::Load => "load".into(),
            Opcode::Store => "store".into(),
            Opcode::Call => "call".into(),
            Opcode::Cmpp(c) => format!("cmpp.{c}"),
            Opcode::Pbr => "pbr".into(),
            Opcode::Brct => "brct".into(),
            Opcode::Brcf => "brcf".into(),
            Opcode::Bru => "bru".into(),
            Opcode::Ret => "ret".into(),
            Opcode::Copy => "copy".into(),
            Opcode::Spill => "spill".into(),
            Opcode::Reload => "reload".into(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// A single operation.
///
/// `defs` are the registers written, `uses` the registers read. `imm` is an
/// immediate operand (address offset for memory ops, literal for `MovI`).
/// `target` is the destination block for `PBR`.
///
/// # Examples
///
/// ```
/// use treegion_ir::{Op, Reg};
/// let op = Op::add(Reg::gpr(3), Reg::gpr(1), Reg::gpr(2));
/// assert_eq!(op.defs, vec![Reg::gpr(3)]);
/// assert_eq!(op.uses, vec![Reg::gpr(1), Reg::gpr(2)]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Op {
    /// Operation code.
    pub opcode: Opcode,
    /// Registers written by this op.
    pub defs: Vec<Reg>,
    /// Registers read by this op.
    pub uses: Vec<Reg>,
    /// Immediate operand (meaning depends on the opcode; 0 when unused).
    pub imm: i64,
    /// Branch target block, for `PBR` ops.
    pub target: Option<BlockId>,
}

impl Op {
    /// Creates an op from raw parts.
    pub fn new(opcode: Opcode, defs: Vec<Reg>, uses: Vec<Reg>, imm: i64) -> Self {
        Op {
            opcode,
            defs,
            uses,
            imm,
            target: None,
        }
    }

    /// `nop`.
    pub fn nop() -> Self {
        Op::new(Opcode::Nop, vec![], vec![], 0)
    }

    /// `d = imm`.
    pub fn movi(d: Reg, imm: i64) -> Self {
        Op::new(Opcode::MovI, vec![d], vec![], imm)
    }

    /// `d = s`.
    pub fn mov(d: Reg, s: Reg) -> Self {
        Op::new(Opcode::Mov, vec![d], vec![s], 0)
    }

    /// A two-source ALU op.
    pub fn alu(opcode: Opcode, d: Reg, a: Reg, b: Reg) -> Self {
        Op::new(opcode, vec![d], vec![a, b], 0)
    }

    /// `d = a + b`.
    pub fn add(d: Reg, a: Reg, b: Reg) -> Self {
        Op::alu(Opcode::Add, d, a, b)
    }

    /// `d = a - b`.
    pub fn sub(d: Reg, a: Reg, b: Reg) -> Self {
        Op::alu(Opcode::Sub, d, a, b)
    }

    /// `d = a * b`.
    pub fn mul(d: Reg, a: Reg, b: Reg) -> Self {
        Op::alu(Opcode::Mul, d, a, b)
    }

    /// `d = (a cond b) as i64`.
    pub fn cmp(cond: Cond, d: Reg, a: Reg, b: Reg) -> Self {
        Op::alu(Opcode::Cmp(cond), d, a, b)
    }

    /// `d = mem[addr + offset]`.
    pub fn load(d: Reg, addr: Reg, offset: i64) -> Self {
        Op::new(Opcode::Load, vec![d], vec![addr], offset)
    }

    /// `mem[addr + offset] = value`.
    pub fn store(addr: Reg, value: Reg, offset: i64) -> Self {
        Op::new(Opcode::Store, vec![], vec![addr, value], offset)
    }

    /// `d = call(args...)` — opaque, deterministic call.
    pub fn call(d: Reg, args: Vec<Reg>) -> Self {
        Op::new(Opcode::Call, vec![d], args, 0)
    }

    /// `p = CMPP(a cond b)` with optional complement `pc` and guard `pin`.
    pub fn cmpp(cond: Cond, p: Reg, pc: Option<Reg>, a: Reg, b: Reg, pin: Option<Reg>) -> Self {
        let mut defs = vec![p];
        if let Some(pc) = pc {
            defs.push(pc);
        }
        let mut uses = vec![a, b];
        if let Some(pin) = pin {
            uses.push(pin);
        }
        Op::new(Opcode::Cmpp(cond), defs, uses, 0)
    }

    /// `p = CMPP(a cond #imm)` — immediate-operand compare-to-predicate
    /// (PlayDoh compares accept literals), with optional complement and
    /// guard. Used by switch lowering so case constants cost no issue slot.
    pub fn cmpp_imm(
        cond: Cond,
        p: Reg,
        pc: Option<Reg>,
        a: Reg,
        imm: i64,
        pin: Option<Reg>,
    ) -> Self {
        let mut defs = vec![p];
        if let Some(pc) = pc {
            defs.push(pc);
        }
        let mut uses = vec![a];
        if let Some(pin) = pin {
            uses.push(pin);
        }
        Op::new(Opcode::Cmpp(cond), defs, uses, imm)
    }

    /// `b = PBR(target)`.
    pub fn pbr(b: Reg, target: BlockId) -> Self {
        let mut op = Op::new(Opcode::Pbr, vec![b], vec![], 0);
        op.target = Some(target);
        op
    }

    /// `BRCT(b, p)`.
    pub fn brct(b: Reg, p: Reg) -> Self {
        Op::new(Opcode::Brct, vec![], vec![b, p], 0)
    }

    /// `BRCF(b, p)`.
    pub fn brcf(b: Reg, p: Reg) -> Self {
        Op::new(Opcode::Brcf, vec![], vec![b, p], 0)
    }

    /// `BRU(b)`.
    pub fn bru(b: Reg) -> Self {
        Op::new(Opcode::Bru, vec![], vec![b], 0)
    }

    /// `RET` with optional return value.
    pub fn ret(value: Option<Reg>) -> Self {
        Op::new(Opcode::Ret, vec![], value.into_iter().collect(), 0)
    }

    /// `d = s` renaming fix-up copy.
    pub fn copy(d: Reg, s: Reg) -> Self {
        Op::new(Opcode::Copy, vec![d], vec![s], 0)
    }

    /// `SPILL(s) -> slot #slot` — save `s` to a private spill slot.
    pub fn spill(s: Reg, slot: i64) -> Self {
        Op::new(Opcode::Spill, vec![], vec![s], slot)
    }

    /// `d = RELOAD slot #slot` — restore a spilled value.
    pub fn reload(d: Reg, slot: i64) -> Self {
        Op::new(Opcode::Reload, vec![d], vec![], slot)
    }

    /// The single def, if this op defines exactly one register.
    pub fn def(&self) -> Option<Reg> {
        if self.defs.len() == 1 {
            Some(self.defs[0])
        } else {
            None
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.defs.is_empty() {
            for (i, d) in self.defs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{d}")?;
            }
            write!(f, " = ")?;
        }
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        for u in &self.uses {
            sep(f)?;
            write!(f, "{u}")?;
        }
        if let Some(t) = self.target {
            sep(f)?;
            write!(f, "@{}", t.index())?;
        }
        if self.imm != 0
            || matches!(
                self.opcode,
                Opcode::MovI | Opcode::Load | Opcode::Store | Opcode::Spill | Opcode::Reload
            )
        {
            sep(f)?;
            write!(f, "#{}", self.imm)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_and_negate_are_consistent() {
        for c in Cond::ALL {
            for a in [-2i64, 0, 1, 7] {
                for b in [-2i64, 0, 1, 7] {
                    assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn store_is_not_speculable() {
        assert!(!Opcode::Store.is_speculable());
        assert!(!Opcode::Call.is_speculable());
        assert!(Opcode::Load.is_speculable());
        assert!(Opcode::Add.is_speculable());
        assert!(!Opcode::Brct.is_speculable());
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::Brct.is_branch());
        assert!(Opcode::Bru.is_branch());
        assert!(Opcode::Ret.is_branch());
        assert!(!Opcode::Pbr.is_branch());
        assert!(!Opcode::Cmpp(Cond::Eq).is_branch());
    }

    #[test]
    fn display_formats_match_expectations() {
        assert_eq!(
            Op::add(Reg::gpr(3), Reg::gpr(1), Reg::gpr(2)).to_string(),
            "r3 = add r1, r2"
        );
        assert_eq!(Op::movi(Reg::gpr(4), 1).to_string(), "r4 = movi #1");
        assert_eq!(
            Op::load(Reg::gpr(1), Reg::gpr(0), 8).to_string(),
            "r1 = load r0, #8"
        );
        assert_eq!(
            Op::cmpp(
                Cond::Gt,
                Reg::pred(1),
                Some(Reg::pred(2)),
                Reg::gpr(1),
                Reg::gpr(2),
                None
            )
            .to_string(),
            "p1, p2 = cmpp.gt r1, r2"
        );
    }

    #[test]
    fn cmpp_with_guard_has_three_uses() {
        let op = Op::cmpp(
            Cond::Lt,
            Reg::pred(3),
            None,
            Reg::gpr(3),
            Reg::gpr(9),
            Some(Reg::pred(1)),
        );
        assert_eq!(op.uses.len(), 3);
        assert_eq!(op.defs.len(), 1);
    }

    #[test]
    fn def_returns_single_def_only() {
        assert_eq!(Op::movi(Reg::gpr(1), 5).def(), Some(Reg::gpr(1)));
        assert_eq!(Op::store(Reg::gpr(0), Reg::gpr(1), 0).def(), None);
        let two = Op::cmpp(
            Cond::Eq,
            Reg::pred(1),
            Some(Reg::pred(2)),
            Reg::gpr(0),
            Reg::gpr(0),
            None,
        );
        assert_eq!(two.def(), None);
    }
}
