//! Textual IR printing.
//!
//! The textual form is a stand-in for the Rebel textual intermediate
//! representation the paper's LEGO compiler consumed. It round-trips
//! through [`crate::parse_module`].
//!
//! ```text
//! func @main {
//!   bb0 (weight 100):
//!     r1 = load r0, #0
//!     r3 = cmp.gt r1, r2
//!     branch r3, bb1 (35), bb2 (65)
//!   bb1 (weight 35):
//!     ret r3
//!   bb2 (weight 65):
//!     ret
//! }
//! ```

use crate::{Function, Module, Terminator};
use std::fmt::Write as _;

/// Renders a function in the textual IR format.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "func @{} {{", f.name());
    for (id, block) in f.blocks() {
        let _ = writeln!(out, "  {} (weight {}):", id, fmt_count(block.weight));
        for op in &block.ops {
            let _ = writeln!(out, "    {op}");
        }
        let _ = writeln!(out, "    {}", fmt_terminator(&block.term));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a module (all functions, in order).
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module @{}", m.name());
    for f in m.functions() {
        out.push('\n');
        out.push_str(&print_function(f));
    }
    out
}

fn fmt_terminator(t: &Terminator) -> String {
    match t {
        Terminator::Jump(e) => format!("jump {} ({})", e.target, fmt_count(e.count)),
        Terminator::Branch { cond, then_, else_ } => format!(
            "branch {cond}, {} ({}), {} ({})",
            then_.target,
            fmt_count(then_.count),
            else_.target,
            fmt_count(else_.count)
        ),
        Terminator::Switch { on, cases, default } => {
            let mut s = format!("switch {on}");
            for c in cases {
                let _ = write!(
                    s,
                    ", [{} -> {} ({})]",
                    c.value,
                    c.edge.target,
                    fmt_count(c.edge.count)
                );
            }
            let _ = write!(
                s,
                ", default {} ({})",
                default.target,
                fmt_count(default.count)
            );
            s
        }
        Terminator::Ret { value: Some(v) } => format!("ret {v}"),
        Terminator::Ret { value: None } => "ret".to_string(),
    }
}

/// Formats a profile count, dropping the fractional part when integral.
fn fmt_count(c: f64) -> String {
    if c.fract() == 0.0 && c.abs() < 1e15 {
        format!("{}", c as i64)
    } else {
        format!("{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, FunctionBuilder, Op};

    #[test]
    fn prints_branching_function() {
        let mut b = FunctionBuilder::new("main");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (x, y, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::load(x, y, 0), Op::cmp(Cond::Gt, c, x, y)]);
        b.branch(bb0, c, (bb1, 35.0), (bb2, 65.0));
        b.ret(bb1, Some(c));
        b.ret(bb2, None);
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("func @main {"));
        assert!(text.contains("bb0 (weight 100):"));
        assert!(text.contains("branch r2, bb1 (35), bb2 (65)"));
        assert!(text.contains("ret r2"));
    }

    #[test]
    fn fractional_counts_are_preserved() {
        assert_eq!(fmt_count(2.5), "2.5");
        assert_eq!(fmt_count(100.0), "100");
    }

    #[test]
    fn prints_switch_with_cases_and_default() {
        let mut b = FunctionBuilder::new("sw");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let on = b.gpr();
        b.push(bb0, Op::movi(on, 1));
        b.switch(bb0, on, vec![(4, bb1, 7.0)], (bb2, 3.0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let text = print_function(&b.finish());
        assert!(
            text.contains("switch r0, [4 -> bb1 (7)], default bb2 (3)"),
            "{text}"
        );
    }
}
