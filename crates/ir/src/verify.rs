//! IR verifier.
//!
//! Checks structural invariants that the rest of the pipeline relies on:
//! block targets are in range, register classes match opcode expectations,
//! source-level blocks contain no lowered (scheduler-output) opcodes, and
//! profile counts are flow-conserving.

use crate::{BlockId, Function, Opcode, RegClass, Terminator};
use std::error::Error;
use std::fmt;

/// Relative tolerance for profile flow conservation checks.
pub const PROFILE_EPSILON: f64 = 1e-6;

/// A verification failure.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// Function name.
    pub function: String,
    /// Offending block, when the failure is block-local.
    pub block: Option<BlockId>,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify failed in `{}`", self.function)?;
        if let Some(b) = self.block {
            write!(f, " at {b}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Error for VerifyError {}

/// Verifies a function, returning the first violated invariant.
///
/// # Errors
///
/// Returns a [`VerifyError`] describing the first structural problem found:
/// out-of-range block targets, ops of the wrong register class shape,
/// lowered opcodes in source blocks, or profile counts that are not
/// flow-conserving (within [`PROFILE_EPSILON`] relative tolerance).
///
/// # Examples
///
/// ```
/// use treegion_ir::{verify_function, Block, Function, Terminator};
/// let mut f = Function::new("ok");
/// f.add_block(Block::new(vec![], Terminator::Ret { value: None }, 1.0));
/// verify_function(&f)?;
/// # Ok::<(), treegion_ir::VerifyError>(())
/// ```
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let err = |block: Option<BlockId>, message: String| VerifyError {
        function: f.name().to_string(),
        block,
        message,
    };

    if f.num_blocks() == 0 {
        return Err(err(None, "function has no blocks".into()));
    }

    for (id, block) in f.blocks() {
        // Targets in range.
        for succ in block.successors() {
            if succ.index() >= f.num_blocks() {
                return Err(err(Some(id), format!("edge target {succ} out of range")));
            }
        }
        // Ops well-formed, and only source-level opcodes in source IR.
        for (i, op) in block.ops.iter().enumerate() {
            if let Some(msg) = check_op_shape(op) {
                return Err(err(Some(id), format!("op {i} (`{op}`): {msg}")));
            }
            if is_lowered_opcode(op.opcode) {
                return Err(err(
                    Some(id),
                    format!("op {i} (`{op}`): lowered opcode in source block"),
                ));
            }
        }
        // Terminator condition registers must be GPRs.
        match &block.term {
            Terminator::Branch { cond, .. } if cond.class() != RegClass::Gpr => {
                return Err(err(Some(id), "branch condition must be a GPR".into()));
            }
            Terminator::Switch { on, .. } if on.class() != RegClass::Gpr => {
                return Err(err(Some(id), "switch operand must be a GPR".into()));
            }
            Terminator::Ret { value: Some(v) } if v.class() != RegClass::Gpr => {
                return Err(err(Some(id), "return value must be a GPR".into()));
            }
            _ => {}
        }
        // Negative counts are meaningless.
        for e in block.term.edges() {
            if e.count < 0.0 || !e.count.is_finite() {
                return Err(err(
                    Some(id),
                    format!("edge to {} has invalid count {}", e.target, e.count),
                ));
            }
        }
        if block.weight < 0.0 || !block.weight.is_finite() {
            return Err(err(Some(id), format!("invalid weight {}", block.weight)));
        }
    }

    verify_profile(f)?;
    Ok(())
}

/// Verifies only the profile flow-conservation invariants of `f`.
///
/// For every non-return block, `weight == Σ outgoing edge counts`; for
/// every non-entry block, `weight == Σ incoming edge counts`. Both within
/// [`PROFILE_EPSILON`] relative tolerance.
///
/// # Errors
///
/// Returns a [`VerifyError`] naming the first non-conserving block.
pub fn verify_profile(f: &Function) -> Result<(), VerifyError> {
    let mut incoming = vec![0.0f64; f.num_blocks()];
    for (_, block) in f.blocks() {
        for e in block.term.edges() {
            incoming[e.target.index()] += e.count;
        }
    }
    for (id, block) in f.blocks() {
        if !block.term.is_ret() {
            let out = block.term.out_count();
            if !approx_eq(block.weight, out) {
                return Err(VerifyError {
                    function: f.name().to_string(),
                    block: Some(id),
                    message: format!(
                        "weight {} != outgoing count {} (flow not conserved)",
                        block.weight, out
                    ),
                });
            }
        }
        if id != f.entry() {
            let inc = incoming[id.index()];
            if !approx_eq(block.weight, inc) {
                return Err(VerifyError {
                    function: f.name().to_string(),
                    block: Some(id),
                    message: format!(
                        "weight {} != incoming count {} (flow not conserved)",
                        block.weight, inc
                    ),
                });
            }
        }
    }
    Ok(())
}

fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= PROFILE_EPSILON * scale
}

fn is_lowered_opcode(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Cmpp(_)
            | Opcode::Pbr
            | Opcode::Brct
            | Opcode::Brcf
            | Opcode::Bru
            | Opcode::Ret
            | Opcode::Copy
            | Opcode::Spill
            | Opcode::Reload
    )
}

/// Checks operand shape (def/use arity and register classes) for an op.
/// Returns a description of the problem, or `None` when well-formed.
fn check_op_shape(op: &crate::Op) -> Option<String> {
    use Opcode::*;
    let gprs = |regs: &[crate::Reg]| regs.iter().all(|r| r.class() == RegClass::Gpr);
    let want = |ok: bool, msg: &str| if ok { None } else { Some(msg.to_string()) };
    match op.opcode {
        Nop => want(
            op.defs.is_empty() && op.uses.is_empty(),
            "nop takes no operands",
        ),
        MovI => want(
            op.defs.len() == 1 && op.uses.is_empty() && gprs(&op.defs),
            "movi: d(gpr), imm",
        ),
        Mov | Copy => want(
            op.defs.len() == 1 && op.uses.len() == 1 && op.defs[0].class() == op.uses[0].class(),
            "mov/copy: one def, one use, same class",
        ),
        Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Sar | FAdd | FSub | FMul | FDiv => {
            want(
                op.defs.len() == 1 && op.uses.len() == 2 && gprs(&op.defs) && gprs(&op.uses),
                "alu: d(gpr) = a(gpr) op b(gpr)",
            )
        }
        Cmp(_) => want(
            op.defs.len() == 1 && op.uses.len() == 2 && gprs(&op.defs) && gprs(&op.uses),
            "cmp: d(gpr) = a(gpr) cond b(gpr)",
        ),
        Load => want(
            op.defs.len() == 1 && op.uses.len() == 1 && gprs(&op.defs) && gprs(&op.uses),
            "load: d(gpr) = [a(gpr)+imm]",
        ),
        Store => want(
            op.defs.is_empty() && op.uses.len() == 2 && gprs(&op.uses),
            "store: [a(gpr)+imm] = v(gpr)",
        ),
        Call => want(
            op.defs.len() == 1 && gprs(&op.defs) && gprs(&op.uses),
            "call: d(gpr) = call(gpr args)",
        ),
        Cmpp(_) => {
            // Register form: uses = [a, b, pin?]; immediate form (second
            // operand in `imm`): uses = [a, pin?].
            let shape_ok = (1..=2).contains(&op.defs.len())
                && op.defs.iter().all(|r| r.class() == RegClass::Pred)
                && !op.uses.is_empty()
                && op.uses[0].class() == RegClass::Gpr
                && match op.uses.len() {
                    1 => true,
                    2 => op.uses[1].class() != RegClass::Btr,
                    3 => {
                        op.uses[1].class() == RegClass::Gpr && op.uses[2].class() == RegClass::Pred
                    }
                    _ => false,
                };
            want(shape_ok, "cmpp: p[,p'] = (a cond b|#imm) [? pin]")
        }
        Pbr => want(
            op.defs.len() == 1
                && op.defs[0].class() == RegClass::Btr
                && op.uses.is_empty()
                && op.target.is_some(),
            "pbr: b = @target",
        ),
        Brct | Brcf => want(
            op.defs.is_empty()
                && op.uses.len() == 2
                && op.uses[0].class() == RegClass::Btr
                && op.uses[1].class() == RegClass::Pred,
            "brct/brcf: (b, p)",
        ),
        Bru => want(
            op.defs.is_empty() && op.uses.len() == 1 && op.uses[0].class() == RegClass::Btr,
            "bru: (b)",
        ),
        Ret => want(
            op.defs.is_empty() && op.uses.len() <= 1 && gprs(&op.uses),
            "ret: [value(gpr)]",
        ),
        Spill => want(
            op.defs.is_empty() && op.uses.len() == 1 && gprs(&op.uses),
            "spill: slot #imm = s(gpr)",
        ),
        Reload => want(
            op.defs.len() == 1 && op.uses.is_empty() && gprs(&op.defs),
            "reload: d(gpr) = slot #imm",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, Edge, Op, Reg};

    fn ret_block(weight: f64) -> Block {
        Block::new(vec![], Terminator::Ret { value: None }, weight)
    }

    #[test]
    fn accepts_minimal_function() {
        let mut f = Function::new("t");
        f.add_block(ret_block(1.0));
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn rejects_out_of_range_target() {
        let mut f = Function::new("t");
        f.add_block(Block::new(
            vec![],
            Terminator::Jump(Edge::new(BlockId::from_index(5), 1.0)),
            1.0,
        ));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_lowered_opcode_in_source_block() {
        let mut f = Function::new("t");
        f.add_block(Block::new(
            vec![Op::bru(Reg::btr(0))],
            Terminator::Ret { value: None },
            1.0,
        ));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("lowered opcode"), "{e}");
    }

    #[test]
    fn rejects_flow_violation_on_weights() {
        let mut f = Function::new("t");
        f.add_block(Block::new(
            vec![],
            Terminator::Jump(Edge::new(BlockId::from_index(1), 10.0)),
            99.0, // should be 10.0
        ));
        f.add_block(ret_block(10.0));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("flow not conserved"), "{e}");
    }

    #[test]
    fn rejects_incoming_mismatch() {
        let mut f = Function::new("t");
        f.add_block(Block::new(
            vec![],
            Terminator::Jump(Edge::new(BlockId::from_index(1), 10.0)),
            10.0,
        ));
        f.add_block(ret_block(33.0)); // incoming is 10
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_bad_operand_classes() {
        let mut f = Function::new("t");
        f.add_block(Block::new(
            vec![Op::new(
                Opcode::Add,
                vec![Reg::pred(0)],
                vec![Reg::gpr(0), Reg::gpr(1)],
                0,
            )],
            Terminator::Ret { value: None },
            1.0,
        ));
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_negative_edge_count() {
        let mut f = Function::new("t");
        f.add_block(Block::new(
            vec![],
            Terminator::Jump(Edge::new(BlockId::from_index(1), -1.0)),
            -1.0,
        ));
        f.add_block(ret_block(-1.0));
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn error_display_mentions_function_and_block() {
        let e = VerifyError {
            function: "foo".into(),
            block: Some(BlockId::from_index(3)),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "verify failed in `foo` at bb3: boom");
    }
}
