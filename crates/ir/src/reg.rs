//! Virtual registers and register classes.
//!
//! The IR uses the three register classes of the HP PlayDoh-style machines
//! the paper schedules for: general-purpose integer registers (`r`),
//! predicate registers (`p`), and branch-target registers (`b`, "BTRs").
//! Registers are *virtual*: the evaluation model of the paper ignores
//! register pressure, and compile-time renaming freely mints new names.

use std::fmt;

/// The architectural class a [`Reg`] belongs to.
///
/// # Examples
///
/// ```
/// use treegion_ir::{Reg, RegClass};
/// let r = Reg::gpr(4);
/// assert_eq!(r.class(), RegClass::Gpr);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General-purpose integer register (`r` in the paper's figures).
    Gpr,
    /// One-bit predicate register (`p`), written by compare-to-predicate ops.
    Pred,
    /// Branch-target register (`b`), initialized by the `PBR` operation.
    Btr,
}

impl RegClass {
    /// All register classes, in a stable order.
    pub const ALL: [RegClass; 3] = [RegClass::Gpr, RegClass::Pred, RegClass::Btr];

    /// The single-character prefix used in the textual IR (`r`, `p`, `b`).
    pub fn prefix(self) -> char {
        match self {
            RegClass::Gpr => 'r',
            RegClass::Pred => 'p',
            RegClass::Btr => 'b',
        }
    }

    /// Index of the class within [`RegClass::ALL`]; handy for per-class tables.
    pub fn index(self) -> usize {
        match self {
            RegClass::Gpr => 0,
            RegClass::Pred => 1,
            RegClass::Btr => 2,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RegClass::Gpr => "gpr",
            RegClass::Pred => "pred",
            RegClass::Btr => "btr",
        };
        f.write_str(name)
    }
}

/// A virtual register: a class plus an index within that class.
///
/// Displayed in the paper's notation: `r0`, `p3`, `b7`.
///
/// # Examples
///
/// ```
/// use treegion_ir::Reg;
/// assert_eq!(Reg::pred(3).to_string(), "p3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    class: RegClass,
    index: u32,
}

impl Reg {
    /// Creates a register of the given class and index.
    pub fn new(class: RegClass, index: u32) -> Self {
        Reg { class, index }
    }

    /// Creates a general-purpose register `r{index}`.
    pub fn gpr(index: u32) -> Self {
        Reg::new(RegClass::Gpr, index)
    }

    /// Creates a predicate register `p{index}`.
    pub fn pred(index: u32) -> Self {
        Reg::new(RegClass::Pred, index)
    }

    /// Creates a branch-target register `b{index}`.
    pub fn btr(index: u32) -> Self {
        Reg::new(RegClass::Btr, index)
    }

    /// The register's class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The register's index within its class.
    pub fn index(self) -> u32 {
        self.index
    }

    /// `true` if this is a general-purpose integer register.
    pub fn is_gpr(self) -> bool {
        self.class == RegClass::Gpr
    }

    /// `true` if this is a predicate register.
    pub fn is_pred(self) -> bool {
        self.class == RegClass::Pred
    }

    /// `true` if this is a branch-target register.
    pub fn is_btr(self) -> bool {
        self.class == RegClass::Btr
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(Reg::gpr(0).to_string(), "r0");
        assert_eq!(Reg::pred(12).to_string(), "p12");
        assert_eq!(Reg::btr(5).to_string(), "b5");
    }

    #[test]
    fn class_predicates() {
        assert!(Reg::gpr(1).is_gpr());
        assert!(!Reg::gpr(1).is_pred());
        assert!(Reg::pred(1).is_pred());
        assert!(Reg::btr(1).is_btr());
    }

    #[test]
    fn ordering_groups_by_class_then_index() {
        let mut regs = vec![Reg::btr(0), Reg::gpr(2), Reg::gpr(1), Reg::pred(0)];
        regs.sort();
        assert_eq!(
            regs,
            vec![Reg::gpr(1), Reg::gpr(2), Reg::pred(0), Reg::btr(0)]
        );
    }

    #[test]
    fn class_index_matches_all_order() {
        for (i, c) in RegClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn class_display_names() {
        assert_eq!(RegClass::Gpr.to_string(), "gpr");
        assert_eq!(RegClass::Pred.to_string(), "pred");
        assert_eq!(RegClass::Btr.to_string(), "btr");
    }
}
