//! # treegion-ir
//!
//! Low-level compiler IR substrate for the reproduction of *"Treegion
//! Scheduling for Wide Issue Processors"* (Havanki, Banerjia, Conte —
//! HPCA 1998).
//!
//! The paper's toolchain consumed SPECint95 programs in the Rebel textual
//! IR produced by HP's Elcor compiler. This crate plays that role: a small
//! Cranelift-flavoured IR with
//!
//! * three virtual register classes matching the PlayDoh machine model the
//!   paper targets — GPRs (`r`), predicates (`p`), branch-target
//!   registers (`b`);
//! * basic blocks of straight-line [`Op`]s ended by a structured
//!   [`Terminator`] (jump / two-way branch / multiway switch / return);
//! * profile counts on every edge and block, with a verifier that checks
//!   flow conservation;
//! * a textual format ([`print_module`] / [`parse_module`]) standing in
//!   for Rebel.
//!
//! Region formation, scheduling, and the machine model live in the
//! `treegion`, `treegion-analysis`, and `treegion-machine` crates.
//!
//! ## Example
//!
//! ```
//! use treegion_ir::{Cond, FunctionBuilder, Op, verify_function};
//!
//! // if (a < b) { x = 1 } else { x = 2 }; return x
//! let mut b = FunctionBuilder::new("select");
//! let (bb0, bb1, bb2, bb3) = (b.block(), b.block(), b.block(), b.block());
//! let (a, v, c, x) = (b.gpr(), b.gpr(), b.gpr(), b.gpr());
//! b.push_all(bb0, [Op::movi(a, 10), Op::movi(v, 20), Op::cmp(Cond::Lt, c, a, v)]);
//! b.branch(bb0, c, (bb1, 70.0), (bb2, 30.0));
//! b.push(bb1, Op::movi(x, 1));
//! b.jump(bb1, bb3, 70.0);
//! b.push(bb2, Op::movi(x, 2));
//! b.jump(bb2, bb3, 30.0);
//! b.ret(bb3, Some(x));
//! let f = b.finish();
//! verify_function(&f)?;
//! # Ok::<(), treegion_ir::VerifyError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod block;
mod builder;
mod func;
mod op;
mod parse;
mod print;
mod reg;
mod verify;

pub use block::{Block, BlockId, Edge, SwitchCase, Terminator};
pub use builder::FunctionBuilder;
pub use func::{Function, Module};
pub use op::{Cond, Op, Opcode};
pub use parse::{parse_function, parse_module, ParseError};
pub use print::{print_function, print_module};
pub use reg::{Reg, RegClass};
pub use verify::{verify_function, verify_profile, VerifyError, PROFILE_EPSILON};
