//! Functions and modules.

use crate::{Block, BlockId, Reg, RegClass, Terminator};

/// A function: an entry block plus a set of basic blocks forming a CFG.
///
/// Blocks are stored densely and never removed; region formation and tail
/// duplication only ever *add* blocks, so [`BlockId`]s are stable.
///
/// # Examples
///
/// ```
/// use treegion_ir::{Block, Function, Terminator};
/// let mut f = Function::new("f");
/// let entry = f.add_block(Block::new(vec![], Terminator::Ret { value: None }, 1.0));
/// assert_eq!(f.entry(), entry);
/// assert_eq!(f.num_blocks(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Function {
    name: String,
    blocks: Vec<Block>,
    next_reg: [u32; 3],
}

impl Function {
    /// Creates an empty function. The first block added becomes the entry.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            blocks: Vec::new(),
            next_reg: [0; 3],
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks yet.
    pub fn entry(&self) -> BlockId {
        assert!(!self.blocks.is_empty(), "function has no blocks");
        BlockId::from_index(0)
    }

    /// Appends a block and returns its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        // Keep the virtual register counters ahead of any register that
        // appears in the block, so `new_reg` never collides.
        for op in &block.ops {
            for r in op.defs.iter().chain(op.uses.iter()) {
                self.note_reg(*r);
            }
        }
        for r in terminator_regs(&block.term) {
            self.note_reg(r);
        }
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(block);
        id
    }

    fn note_reg(&mut self, r: Reg) {
        let slot = &mut self.next_reg[r.class().index()];
        if r.index() >= *slot {
            *slot = r.index() + 1;
        }
    }

    /// Returns a fresh virtual register of the given class.
    pub fn new_reg(&mut self, class: RegClass) -> Reg {
        let slot = &mut self.next_reg[class.index()];
        let r = Reg::new(class, *slot);
        *slot += 1;
        r
    }

    /// The number of virtual registers allocated in `class`.
    pub fn num_regs(&self, class: RegClass) -> u32 {
        self.next_reg[class.index()]
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over `(id, block)` pairs in id order.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// All block ids in id order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Total number of source-level ops across all blocks (terminators not
    /// included).
    pub fn num_ops(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }

    /// Computes the predecessor lists of every block, in id order.
    ///
    /// Exposed here (rather than only in the analysis crate) because region
    /// formation needs merge-point detection and tail duplication edits the
    /// CFG as it goes.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, block) in self.blocks() {
            for succ in block.successors() {
                preds[succ.index()].push(id);
            }
        }
        preds
    }
}

fn terminator_regs(term: &Terminator) -> Vec<Reg> {
    match term {
        Terminator::Jump(_) => vec![],
        Terminator::Branch { cond, .. } => vec![*cond],
        Terminator::Switch { on, .. } => vec![*on],
        Terminator::Ret { value } => value.iter().copied().collect(),
    }
}

/// A module: a named collection of functions (one synthetic "program").
#[derive(Clone, Debug, Default)]
pub struct Module {
    name: String,
    functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// The module's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a function, returning its index.
    pub fn add_function(&mut self, f: Function) -> usize {
        self.functions.push(f);
        self.functions.len() - 1
    }

    /// The functions, in insertion order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable access to the functions.
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// Total block count over all functions.
    pub fn num_blocks(&self) -> usize {
        self.functions.iter().map(|f| f.num_blocks()).sum()
    }

    /// Total source-level op count over all functions.
    pub fn num_ops(&self) -> usize {
        self.functions.iter().map(|f| f.num_ops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, Op, Reg};

    #[test]
    fn add_block_assigns_dense_ids() {
        let mut f = Function::new("t");
        let b0 = f.add_block(Block::new(
            vec![],
            Terminator::Jump(Edge::new(BlockId::from_index(1), 1.0)),
            1.0,
        ));
        let b1 = f.add_block(Block::new(vec![], Terminator::Ret { value: None }, 1.0));
        assert_eq!(b0.index(), 0);
        assert_eq!(b1.index(), 1);
        assert_eq!(f.entry(), b0);
    }

    #[test]
    fn new_reg_avoids_existing_registers() {
        let mut f = Function::new("t");
        f.add_block(Block::new(
            vec![Op::movi(Reg::gpr(10), 3)],
            Terminator::Ret {
                value: Some(Reg::gpr(10)),
            },
            1.0,
        ));
        let fresh = f.new_reg(RegClass::Gpr);
        assert_eq!(fresh, Reg::gpr(11));
        assert_eq!(f.new_reg(RegClass::Pred), Reg::pred(0));
    }

    #[test]
    fn predecessors_are_computed_per_edge() {
        let mut f = Function::new("t");
        let b2 = BlockId::from_index(2);
        f.add_block(Block::new(
            vec![],
            Terminator::Branch {
                cond: Reg::gpr(0),
                then_: Edge::new(b2, 1.0),
                else_: Edge::new(BlockId::from_index(1), 1.0),
            },
            2.0,
        ));
        f.add_block(Block::new(
            vec![],
            Terminator::Jump(Edge::new(b2, 1.0)),
            1.0,
        ));
        f.add_block(Block::new(vec![], Terminator::Ret { value: None }, 2.0));
        let preds = f.predecessors();
        assert_eq!(preds[2].len(), 2);
        assert_eq!(preds[0].len(), 0);
    }

    #[test]
    fn module_counts_aggregate() {
        let mut m = Module::new("prog");
        let mut f = Function::new("a");
        f.add_block(Block::new(
            vec![Op::nop(), Op::nop()],
            Terminator::Ret { value: None },
            1.0,
        ));
        m.add_function(f);
        assert_eq!(m.num_blocks(), 1);
        assert_eq!(m.num_ops(), 2);
        assert_eq!(m.name(), "prog");
    }
}
