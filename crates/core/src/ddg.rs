//! Data dependence graph (DDG) construction over a lowered region —
//! step one of the paper's Figure 3 scheduling algorithm.
//!
//! Edge kinds:
//!
//! * **Data (RAW)** — renaming has made every definition unique, so these
//!   are the only register dependences. Latency is the producer's op
//!   latency (a consumer issues once the value is ready).
//! * **Memory order** — memory operations are serialized along each
//!   control path (no aliasing information, per Section 3), with latency
//!   [`MachineModel::mem_dep_latency`] (0 on PlayDoh-style machines: a
//!   store and a dependent memory op may share a cycle). Ops on *different*
//!   tree paths never conflict — at run time only one path's guarded ops
//!   take effect.
//! * **Guard** — side-effecting ops and predicated branches wait for their
//!   path predicate.
//! * **Retirement** — an exit branch may not issue before every value the
//!   exit's copies restore is ready at the end of the branch cycle
//!   (latency − 1), nor before the stores/calls on its path have issued
//!   (latency 0). This is what "delaying an exit" means in the paper's
//!   speculative-hedge discussion: speculated ops that squat on issue
//!   slots push these edges' sources later, which pushes the exits later.

use crate::lower::LoweredRegion;
use treegion_ir::{Opcode, Reg};
use treegion_machine::MachineModel;

/// Dense `Reg -> defining lop` map: one `Vec<u32>` per register class,
/// indexed by register number, with `u32::MAX` as the "no def" sentinel.
/// Replaces the seed's `HashMap<Reg, usize>` on the DDG hot path —
/// renaming mints small dense register indices, so a direct-indexed table
/// is both smaller and an order of magnitude faster to probe.
struct DefMap<'a> {
    tables: &'a [Vec<u32>; 3],
}

const NO_DEF: u32 = u32::MAX;

/// Rebuilds the per-class def tables in place (cleared first; unused
/// classes stay empty so lookups fall through to `None`).
fn fill_def_tables(lr: &LoweredRegion, tables: &mut [Vec<u32>; 3]) {
    // Size each class table from the maximum defined index.
    let mut max_idx = [0usize; 3];
    let mut any = [false; 3];
    for l in &lr.lops {
        for d in &l.op.defs {
            let c = d.class().index();
            max_idx[c] = max_idx[c].max(d.index() as usize);
            any[c] = true;
        }
    }
    for c in 0..3 {
        tables[c].clear();
        if any[c] {
            tables[c].resize(max_idx[c] + 1, NO_DEF);
        }
    }
    for (i, l) in lr.lops.iter().enumerate() {
        for d in &l.op.defs {
            tables[d.class().index()][d.index() as usize] = i as u32;
        }
    }
}

impl DefMap<'_> {
    #[inline]
    fn get(&self, r: &Reg) -> Option<usize> {
        match self.tables[r.class().index()].get(r.index() as usize) {
            Some(&v) if v != NO_DEF => Some(v as usize),
            _ => None,
        }
    }
}

/// Per-path memory-serialization state for the DDG build's tree walk:
/// the last store/call barrier plus the loads issued since it.
#[derive(Clone, Default)]
struct MemState {
    last_barrier: Option<usize>,
    loads: Vec<usize>,
}

/// Reusable per-thread buffers for [`Ddg::build`]; every field is
/// cleared or overwritten per call, so only capacity persists between
/// regions (including the `loads` vecs nested inside `node_state`).
#[derive(Default)]
struct BuildScratch {
    def_tables: [Vec<u32>; 3],
    node_off: Vec<u32>,
    node_lops: Vec<u32>,
    children_left: Vec<usize>,
    node_state: Vec<MemState>,
}

thread_local! {
    static BUILD_SCRATCH: std::cell::RefCell<BuildScratch> =
        std::cell::RefCell::new(BuildScratch::default());
}

/// Why an edge exists (useful for debugging and tests).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write register dependence.
    Data,
    /// Memory serialization along a path.
    Memory,
    /// Guard (path predicate) availability.
    Guard,
    /// Exit retirement (live-out value or side effect must be complete).
    Retire,
}

/// A dependence edge `from -> to` with an issue-to-issue latency:
/// `cycle(to) >= cycle(from) + latency`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Dep {
    /// Producer lop index.
    pub from: usize,
    /// Consumer lop index.
    pub to: usize,
    /// Minimum issue-cycle distance.
    pub latency: u32,
    /// Edge kind.
    pub kind: DepKind,
}

/// The dependence graph: edges plus per-op adjacency in CSR
/// (compressed sparse row) form.
///
/// The seed stored adjacency as `Vec<Vec<usize>>` edge-index lists — `2n`
/// heap allocations per region and a double indirection
/// (`edges[succs[op][k]]`) on every scheduler walk. The CSR layout packs
/// each op's out-/in-edges contiguously (`succ_csr`/`pred_csr`) behind an
/// `n + 1` offset table, so [`Ddg::succs`]/[`Ddg::preds`] are plain
/// slices: four flat allocations total, one pointer chase per walk, and
/// within-bucket order identical to the seed's push order (the counting
/// fill visits `edges` in the same order `rebuild_adjacency` used to).
#[derive(Clone, Debug)]
pub struct Ddg {
    num_ops: usize,
    edges: Vec<Dep>,
    succ_off: Vec<u32>, // n + 1 offsets into succ_csr, bucketed by producer
    succ_csr: Vec<Dep>,
    pred_off: Vec<u32>, // n + 1 offsets into pred_csr, bucketed by consumer
    pred_csr: Vec<Dep>,
    // Every edge satisfies `from < to` (true for every graph `build`
    // produces: defs precede uses, memory/guard/retire edges follow
    // program order). When set, one reverse sweep computes exact
    // dependence heights; when cleared (a hand-inserted or fault-injected
    // backward edge), `heights` falls back to relaxation to a fixpoint.
    forward_only: bool,
}

/// Builds both CSR halves in one counting pass over `edges`.
///
/// Within-bucket order is the order edges appear in `edges`, exactly
/// matching the seed's `push`-per-edge adjacency fill — this is what keeps
/// every downstream consumer (heights relaxation, release order in the
/// list scheduler) byte-identical.
fn fill_csr(n: usize, edges: &[Dep]) -> (Vec<u32>, Vec<Dep>, Vec<u32>, Vec<Dep>) {
    let mut succ_off = vec![0u32; n + 1];
    let mut pred_off = vec![0u32; n + 1];
    for e in edges {
        succ_off[e.from + 1] += 1;
        pred_off[e.to + 1] += 1;
    }
    for i in 0..n {
        succ_off[i + 1] += succ_off[i];
        pred_off[i + 1] += pred_off[i];
    }
    let filler = Dep {
        from: 0,
        to: 0,
        latency: 0,
        kind: DepKind::Data,
    };
    let mut succ_csr = vec![filler; edges.len()];
    let mut pred_csr = vec![filler; edges.len()];
    // The offset tables double as fill cursors (no scratch allocation):
    // after the fill, entry `i` holds the *end* of bucket `i`, i.e. the
    // start of bucket `i + 1` — one shift restores start-offset form.
    for e in edges {
        succ_csr[succ_off[e.from] as usize] = *e;
        succ_off[e.from] += 1;
        pred_csr[pred_off[e.to] as usize] = *e;
        pred_off[e.to] += 1;
    }
    for i in (1..=n).rev() {
        succ_off[i] = succ_off[i - 1];
        pred_off[i] = pred_off[i - 1];
    }
    succ_off[0] = 0;
    pred_off[0] = 0;
    (succ_off, succ_csr, pred_off, pred_csr)
}

impl Ddg {
    /// Builds the DDG for `lr` under machine model `m`.
    pub fn build(lr: &LoweredRegion, m: &MachineModel) -> Self {
        // The transient build tables (def maps, node CSR, walk state) are
        // region-sized and fully reinitialized per call; a thread-local
        // arena hands their allocations from one region to the next.
        BUILD_SCRATCH.with(|cell| Self::build_inner(&mut cell.borrow_mut(), lr, m))
    }

    fn build_inner(scratch: &mut BuildScratch, lr: &LoweredRegion, m: &MachineModel) -> Self {
        let n = lr.lops.len();
        // Pre-size from op counts: in practice regions average ~2 edges
        // per op (one data edge per use plus memory/guard/retire edges);
        // reserving up front avoids repeated growth in the hot loop.
        // (`edges` is retained inside the returned graph, so it is the
        // one build table that genuinely allocates per call.)
        let per_op_uses: usize = lr.lops.iter().map(|l| l.op.uses.len()).sum();
        let mut edges: Vec<Dep> = Vec::with_capacity(per_op_uses + 2 * n);

        // --- Data edges: single-assignment defs -> uses. ---
        fill_def_tables(lr, &mut scratch.def_tables);
        let def_of = DefMap {
            tables: &scratch.def_tables,
        };
        for (i, l) in lr.lops.iter().enumerate() {
            for u in &l.op.uses {
                if let Some(p) = def_of.get(u) {
                    if p != i {
                        edges.push(Dep {
                            from: p,
                            to: i,
                            latency: m.latency(lr.lops[p].op.opcode),
                            kind: DepKind::Data,
                        });
                    }
                }
            }
            // Guard availability (covers RET, whose guard is not a use).
            if let Some(g) = l.guard {
                if let Some(p) = def_of.get(&g) {
                    let already = l.op.uses.contains(&g);
                    if !already && p != i {
                        edges.push(Dep {
                            from: p,
                            to: i,
                            latency: m.latency(lr.lops[p].op.opcode),
                            kind: DepKind::Guard,
                        });
                    }
                }
            }
        }

        // --- Memory serialization along each root-to-node path. ---
        // Walk the tree carrying (last barrier, loads since barrier).
        let num_nodes = lr.nodes.len();
        let node_state = &mut scratch.node_state;
        for st in node_state.iter_mut() {
            st.last_barrier = None;
            st.loads.clear();
        }
        node_state.resize_with(num_nodes, MemState::default);
        // lop indices grouped by node, in program order — flat CSR
        // (two allocations in the seed rewrite, now arena-backed) instead
        // of one `Vec` per node.
        let node_off = &mut scratch.node_off;
        node_off.clear();
        node_off.resize(num_nodes + 1, 0);
        for l in &lr.lops {
            node_off[l.home + 1] += 1;
        }
        for i in 0..num_nodes {
            node_off[i + 1] += node_off[i];
        }
        let node_lops = &mut scratch.node_lops;
        node_lops.clear();
        node_lops.resize(n, 0);
        // `node_off` doubles as the fill cursor (see `fill_csr`).
        for (i, l) in lr.lops.iter().enumerate() {
            node_lops[node_off[l.home] as usize] = i as u32;
            node_off[l.home] += 1;
        }
        for i in (1..=num_nodes).rev() {
            node_off[i] = node_off[i - 1];
        }
        node_off[0] = 0;
        let node_off: &[u32] = node_off; // freeze
        let node_lops: &[u32] = node_lops;
        let by_node = |node: usize| -> &[u32] {
            &node_lops[node_off[node] as usize..node_off[node + 1] as usize]
        };
        // Child counts let the walk *move* a parent's MemState into its
        // last (often only) child instead of cloning the `loads` vec for
        // every node — the per-node clone the seed paid on this hot path.
        let children_left = &mut scratch.children_left;
        children_left.clear();
        children_left.resize(num_nodes, 0);
        for node in &lr.nodes {
            if let Some(p) = node.parent {
                children_left[p] += 1;
            }
        }
        let lat = m.mem_dep_latency();
        for node in 0..lr.nodes.len() {
            let mut st = match lr.nodes[node].parent {
                Some(p) => {
                    children_left[p] -= 1;
                    if children_left[p] == 0 {
                        std::mem::take(&mut node_state[p])
                    } else {
                        node_state[p].clone()
                    }
                }
                None => MemState::default(),
            };
            for &i in by_node(node) {
                let i = i as usize;
                match lr.lops[i].op.opcode {
                    Opcode::Load => {
                        if let Some(b) = st.last_barrier {
                            edges.push(Dep {
                                from: b,
                                to: i,
                                latency: lat,
                                kind: DepKind::Memory,
                            });
                        }
                        st.loads.push(i);
                    }
                    Opcode::Store | Opcode::Call => {
                        if let Some(b) = st.last_barrier {
                            edges.push(Dep {
                                from: b,
                                to: i,
                                latency: lat,
                                kind: DepKind::Memory,
                            });
                        }
                        for &ld in &st.loads {
                            edges.push(Dep {
                                from: ld,
                                to: i,
                                latency: lat,
                                kind: DepKind::Memory,
                            });
                        }
                        st.loads.clear();
                        st.last_barrier = Some(i);
                    }
                    _ => {}
                }
            }
            node_state[node] = st;
        }

        // --- Exit retirement. ---
        for exit in &lr.exits {
            let br = exit.branch_lop;
            // Values restored by the exit's copies must be ready by the
            // end of the branch cycle.
            for (_, renamed) in &exit.copies {
                if let Some(p) = def_of.get(renamed) {
                    let l = m.latency(lr.lops[p].op.opcode);
                    edges.push(Dep {
                        from: p,
                        to: br,
                        latency: l.saturating_sub(1),
                        kind: DepKind::Retire,
                    });
                }
            }
            // Side effects on the exit's path must have issued.
            let mut cur = Some(exit.from_node);
            while let Some(nidx) = cur {
                for &i in by_node(nidx) {
                    let i = i as usize;
                    if lr.lops[i].op.opcode.has_side_effects() && i != br {
                        edges.push(Dep {
                            from: i,
                            to: br,
                            latency: 0,
                            kind: DepKind::Retire,
                        });
                    }
                }
                cur = lr.nodes[nidx].parent;
            }
        }

        // --- Spill-slot dependences. ---
        // Spill/reload traffic targets private per-value stack slots, so
        // it never aliases program memory (no serialization against the
        // load/store chain above); the only ordering requirement is that
        // a slot's reloads follow its spill, at the machine's
        // store-to-load distance.
        {
            let mut spill_of: Option<std::collections::HashMap<i64, usize>> = None;
            for (i, l) in lr.lops.iter().enumerate() {
                if l.op.opcode == Opcode::Spill {
                    spill_of
                        .get_or_insert_with(Default::default)
                        .insert(l.op.imm, i);
                }
            }
            if let Some(spill_of) = spill_of {
                for (i, l) in lr.lops.iter().enumerate() {
                    if l.op.opcode == Opcode::Reload {
                        if let Some(&s) = spill_of.get(&l.op.imm) {
                            edges.push(Dep {
                                from: s,
                                to: i,
                                latency: lat,
                                kind: DepKind::Memory,
                            });
                        }
                    }
                }
            }
        }

        // Dedup (keep max latency per (from, to)). The sort key packs
        // (from, to, descending latency) into one integer — a single
        // u128 compare per element instead of a three-field tuple
        // compare — and the *stable* sort preserves the original order
        // among full-key ties, so the surviving edge (and hence the
        // public `edges()` order) is byte-identical to the seed's.
        edges.sort_by_key(|e| {
            ((e.from as u128) << 64) | ((e.to as u128) << 32) | (!e.latency as u128)
        });
        edges.dedup_by_key(|e| (e.from, e.to));

        let (succ_off, succ_csr, pred_off, pred_csr) = fill_csr(n, &edges);
        let forward_only = edges.iter().all(|e| e.from < e.to);
        Ddg {
            num_ops: n,
            edges,
            succ_off,
            succ_csr,
            pred_off,
            pred_csr,
            forward_only,
        }
    }

    /// Number of ops the graph covers.
    pub fn num_ops(&self) -> usize {
        self.num_ops
    }

    /// Removes edge `k` and rebuilds the adjacency lists, returning the
    /// removed edge. Used by the fault injector to model a scheduler that
    /// lost a dependence; verification against the *true* graph then
    /// attributes the resulting schedule damage.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn remove_edge(&mut self, k: usize) -> Dep {
        let d = self.edges.remove(k);
        self.rebuild_adjacency();
        d
    }

    /// Adds an edge and rebuilds the adjacency lists. The counterpart of
    /// [`Ddg::remove_edge`] for fault injection and for tests that build
    /// graphs by hand.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn insert_edge(&mut self, d: Dep) {
        assert!(
            d.from < self.num_ops && d.to < self.num_ops,
            "edge endpoint out of range"
        );
        self.edges.push(d);
        self.rebuild_adjacency();
    }

    fn rebuild_adjacency(&mut self) {
        let (succ_off, succ_csr, pred_off, pred_csr) = fill_csr(self.num_ops, &self.edges);
        self.succ_off = succ_off;
        self.succ_csr = succ_csr;
        self.pred_off = pred_off;
        self.pred_csr = pred_csr;
        self.forward_only = self.edges.iter().all(|e| e.from < e.to);
    }

    /// All edges.
    pub fn edges(&self) -> &[Dep] {
        &self.edges
    }

    /// Outgoing edges of `op`, as a contiguous CSR slice.
    #[inline]
    pub fn succs(&self, op: usize) -> &[Dep] {
        &self.succ_csr[self.succ_off[op] as usize..self.succ_off[op + 1] as usize]
    }

    /// Incoming edges of `op`, as a contiguous CSR slice.
    #[inline]
    pub fn preds(&self, op: usize) -> &[Dep] {
        &self.pred_csr[self.pred_off[op] as usize..self.pred_off[op + 1] as usize]
    }

    /// In-degree of `op` — an O(1) offset subtraction in the CSR layout.
    #[inline]
    pub fn pred_count(&self, op: usize) -> usize {
        (self.pred_off[op + 1] - self.pred_off[op]) as usize
    }

    /// Dependence heights: `height[i] = max(latency(i), max over edges
    /// (edge latency + height(target)))` — the longest issue-distance path
    /// from `i` to the end of the schedule, including `i`'s own latency.
    /// This is the paper's *dependence height* (critical path) priority.
    pub fn heights(&self, lr: &LoweredRegion, m: &MachineModel) -> Vec<u32> {
        let mut height = Vec::new();
        self.heights_into(lr, m, &mut height);
        height
    }

    /// [`Ddg::heights`] into a caller-provided buffer (cleared first) —
    /// the list scheduler's per-region calls reuse one thread-local
    /// buffer instead of allocating a fresh vec per region.
    pub(crate) fn heights_into(&self, lr: &LoweredRegion, m: &MachineModel, height: &mut Vec<u32>) {
        height.clear();
        height.resize(self.num_ops, 0);
        // All edges `build` produces point from earlier lop indices to
        // later ones (defs are emitted before uses, memory/guard/retire
        // edges follow program order), so a single reverse sweep computes
        // the exact fixpoint — the `forward_only` flag proves it and
        // skips the seed's confirmation re-sweep. Hand-edited graphs with
        // a backward edge relax to a fixpoint as before.
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..self.num_ops).rev() {
                let mut h = m.latency(lr.lops[i].op.opcode);
                for e in self.succs(i) {
                    h = h.max(e.latency + height[e.to]);
                }
                if h != height[i] {
                    height[i] = h;
                    changed = true;
                }
            }
            if self.forward_only {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_region;
    use crate::{form_treegions, RegionSet};
    use treegion_analysis::{Cfg, Liveness};
    use treegion_ir::{Cond, Function, FunctionBuilder, Op};

    fn lowered(f: &Function) -> LoweredRegion {
        let set: RegionSet = form_treegions(f);
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let r = set.region(set.region_of(f.entry()).unwrap()).clone();
        lower_region(f, &r, &live, None)
    }

    fn straightline(ops: Vec<Op>) -> Function {
        let mut b = FunctionBuilder::new("s");
        let bb0 = b.block();
        b.push_all(bb0, ops);
        b.ret(bb0, None);
        b.finish()
    }

    #[test]
    fn raw_edges_carry_producer_latency() {
        use treegion_ir::Reg;
        let (a, x, y) = (Reg::gpr(0), Reg::gpr(1), Reg::gpr(2));
        let f = straightline(vec![Op::load(x, a, 0), Op::add(y, x, x)]);
        let lr = lowered(&f);
        let m = treegion_machine::MachineModel::model_4u();
        let ddg = Ddg::build(&lr, &m);
        let e = ddg
            .edges()
            .iter()
            .find(|e| {
                e.kind == DepKind::Data && lr.lops[e.to].op.opcode == treegion_ir::Opcode::Add
            })
            .unwrap();
        assert_eq!(e.latency, 2); // load latency
    }

    #[test]
    fn memory_ops_serialize_along_a_path_with_zero_latency() {
        use treegion_ir::Reg;
        let (a, v, x) = (Reg::gpr(0), Reg::gpr(1), Reg::gpr(2));
        let f = straightline(vec![
            Op::store(a, v, 0),
            Op::load(x, a, 0),
            Op::store(a, x, 8),
        ]);
        let lr = lowered(&f);
        let m = treegion_machine::MachineModel::model_4u();
        let ddg = Ddg::build(&lr, &m);
        let mem: Vec<&Dep> = ddg
            .edges()
            .iter()
            .filter(|e| e.kind == DepKind::Memory)
            .collect();
        // store->load, store->store(? via barrier chain), load->store.
        assert!(mem.len() >= 2);
        for e in &mem {
            assert_eq!(e.latency, 0);
        }
    }

    #[test]
    fn sibling_paths_have_no_memory_edges() {
        // Two stores on sibling branches must not be ordered.
        let mut b = FunctionBuilder::new("sib");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (a, v, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::movi(v, 1), Op::movi(c, 0)]);
        b.branch(bb0, c, (bb1, 1.0), (bb2, 1.0));
        b.push(bb1, Op::store(a, v, 0));
        b.ret(bb1, None);
        b.push(bb2, Op::store(a, v, 8));
        b.ret(bb2, None);
        let f = b.finish();
        let lr = lowered(&f);
        let m = treegion_machine::MachineModel::model_4u();
        let ddg = Ddg::build(&lr, &m);
        let store_idxs: Vec<usize> = lr
            .lops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.op.opcode == treegion_ir::Opcode::Store)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(store_idxs.len(), 2);
        let (s1, s2) = (store_idxs[0], store_idxs[1]);
        assert!(!ddg
            .edges()
            .iter()
            .any(|e| (e.from == s1 && e.to == s2) || (e.from == s2 && e.to == s1)));
        let _ = a;
    }

    #[test]
    fn guarded_store_waits_for_its_predicate() {
        let mut b = FunctionBuilder::new("g");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (a, v, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::movi(v, 1), Op::movi(c, 0)]);
        b.branch(bb0, c, (bb1, 1.0), (bb2, 1.0));
        b.push(bb1, Op::store(a, v, 0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let lr = lowered(&f);
        let ddg = Ddg::build(&lr, &treegion_machine::MachineModel::model_4u());
        let store = lr
            .lops
            .iter()
            .position(|l| l.op.opcode == treegion_ir::Opcode::Store)
            .unwrap();
        let guard = lr.lops[store].guard.unwrap();
        let has_guard_edge = ddg
            .preds(store)
            .iter()
            .any(|e| lr.lops[e.from].op.defs.contains(&guard));
        assert!(has_guard_edge);
        let _ = a;
    }

    #[test]
    fn exit_branch_retires_after_copied_values() {
        let mut b = FunctionBuilder::new("ret");
        let ids: Vec<_> = (0..3).map(|_| b.block()).collect();
        let (a, x) = (b.gpr(), b.gpr());
        b.push(ids[0], Op::load(x, a, 0));
        b.jump(ids[0], ids[1], 1.0);
        b.jump(ids[1], ids[2], 1.0);
        b.ret(ids[2], Some(x));
        let mut f = b.finish();
        // Make ids[2] a merge so the region ends with an exit to it.
        // (Add a second pred.)
        let extra = f.add_block(treegion_ir::Block::new(
            vec![],
            treegion_ir::Terminator::Jump(treegion_ir::Edge::new(ids[2], 0.0)),
            0.0,
        ));
        let _ = extra;
        f.block_mut(ids[2]).weight = 1.0;
        let lr = lowered(&f);
        // The region is {ids[0], ids[1]} with an exit to ids[2], which
        // reads x: retirement edge load -> exit branch with latency 1.
        let ddg = Ddg::build(&lr, &treegion_machine::MachineModel::model_4u());
        let e = ddg
            .edges()
            .iter()
            .find(|e| e.kind == DepKind::Retire)
            .expect("retire edge");
        assert_eq!(e.latency, 1); // load latency 2 - 1
        assert_eq!(lr.lops[e.from].op.opcode, treegion_ir::Opcode::Load);
    }

    #[test]
    fn spill_slot_orders_reloads_after_their_spill() {
        use treegion_ir::Reg;
        let (x, y, z, w) = (Reg::gpr(0), Reg::gpr(1), Reg::gpr(2), Reg::gpr(3));
        // x spans the whole block and feeds both adds: the spill victim.
        let f = straightline(vec![
            Op::movi(x, 1),
            Op::movi(y, 2),
            Op::add(z, x, y),
            Op::add(w, z, x),
        ]);
        let lr = lowered(&f);
        let (sp, n) = crate::lower::insert_spills(&lr, 1).expect("victim");
        assert_eq!(n, 1);
        let m = treegion_machine::MachineModel::model_4u();
        let ddg = Ddg::build(&sp, &m);
        let spill = sp
            .lops
            .iter()
            .position(|l| l.op.opcode == Opcode::Spill)
            .unwrap();
        let reloads: Vec<usize> = sp
            .lops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.op.opcode == Opcode::Reload)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(reloads.len(), 2, "one reload per use of the victim");
        for &r in &reloads {
            assert!(
                ddg.edges().iter().any(|e| e.from == spill
                    && e.to == r
                    && e.kind == DepKind::Memory
                    && e.latency == m.mem_dep_latency()),
                "reload {r} must be ordered after spill {spill}"
            );
        }
        // Spill traffic is private: no serialization against the (absent
        // here) program-memory chain, and reloads stay mutually unordered.
        assert!(!ddg
            .edges()
            .iter()
            .any(|e| reloads.contains(&e.from) && reloads.contains(&e.to)));
    }

    #[test]
    fn heights_reflect_latency_chains() {
        use treegion_ir::Reg;
        let (a, x, y, z) = (Reg::gpr(0), Reg::gpr(1), Reg::gpr(2), Reg::gpr(3));
        let f = straightline(vec![
            Op::load(x, a, 0), // lat 2
            Op::add(y, x, x),  // lat 1
            Op::add(z, y, y),  // lat 1
        ]);
        let lr = lowered(&f);
        let m = treegion_machine::MachineModel::model_4u();
        let ddg = Ddg::build(&lr, &m);
        let h = ddg.heights(&lr, &m);
        let load = lr
            .lops
            .iter()
            .position(|l| l.op.opcode == treegion_ir::Opcode::Load)
            .unwrap();
        let adds: Vec<usize> = lr
            .lops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.op.opcode == treegion_ir::Opcode::Add)
            .map(|(i, _)| i)
            .collect();
        assert!(h[load] > h[adds[0]], "{} vs {}", h[load], h[adds[0]]);
        assert!(h[adds[0]] > h[adds[1]]);
    }

    #[test]
    fn cmp_feeding_branch_chains_into_exit_branches() {
        let mut b = FunctionBuilder::new("chain");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (x, y, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [Op::movi(x, 1), Op::movi(y, 2), Op::cmp(Cond::Lt, c, x, y)],
        );
        b.branch(bb0, c, (bb1, 1.0), (bb2, 1.0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let lr = lowered(&f);
        let m = treegion_machine::MachineModel::model_4u();
        let ddg = Ddg::build(&lr, &m);
        // Rets are guarded by path preds which chain to the cmpp and the cmp.
        for exit in &lr.exits {
            let br = exit.branch_lop;
            assert!(ddg.pred_count(br) >= 1, "exit branch has no deps");
        }
        // Critical path: movi(1) -> cmp(1) -> cmpp(1) -> ret: height of movi >= 4.
        let h = ddg.heights(&lr, &m);
        let movi_x = 0usize;
        assert!(h[movi_x] >= 4, "height {}", h[movi_x]);
    }
}
