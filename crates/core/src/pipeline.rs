//! The staged pipeline driver: formation → lowering → DDG → list
//! scheduling → verification → degradation, behind one instrumented
//! entry point.
//!
//! The paper's Fig. 2/3 flow is one pipeline, but the repo historically
//! drove it from three divergent stacks (the eval crate's ad-hoc
//! helpers, the robust chain, and the CLI) plus a dozen figure binaries
//! that re-wired the stages by hand. [`Pipeline`] is the single driver
//! they all share now: it owns the stage order, threads a
//! [`PassObserver`] through every stage, and exposes both the
//! *infallible* staged kernels (for caching drivers that want to reuse
//! intermediate artifacts) and the *robust* verifier-gated chain (the
//! Primary→SLR→BB policy of [`crate::RobustOptions`]).
//!
//! Byte-identity contract: every method composes exactly the kernels the
//! legacy call sites used (`lower_region`, `Ddg::build`,
//! `schedule_with_ddg`, the robust chain), fans out across
//! `treegion_par` with order-preserving merges, and adds only observer
//! bracketing — so outputs are bit-for-bit what the pre-pipeline stacks
//! produced, at any job count.

use crate::ddg::Ddg;
use crate::error::{Budgets, SchedFailure};
use crate::error::{DegradationEvent, PipelineError};
use crate::former::{FormOutcome, RegionFormer};
use crate::lower::{lower_region, LoweredRegion};
use crate::observe::{PassObserver, Stage, StageScope, StageStats};
use crate::region::RegionSet;
use crate::robust::{run_robust, RobustOptions, RobustResult, MAX_SPILL_ROUNDS};
use crate::sched::{schedule_with_ddg, try_schedule_with_ddg, Schedule};
use std::time::Instant;
use treegion_analysis::{Cfg, Liveness};
use treegion_ir::{BlockId, Function, Module};
use treegion_machine::MachineModel;

/// A function's regions after lowering: the analysis artifacts plus one
/// [`LoweredRegion`] per region, in region order. Caching drivers keep
/// these around and re-schedule them under many heuristics/machines.
#[derive(Clone, Debug)]
pub struct LoweredFunction {
    /// The function's CFG.
    pub cfg: Cfg,
    /// Liveness over that CFG.
    pub live: Liveness,
    /// One lowered region per region of the partition, in region order.
    pub lowered: Vec<LoweredRegion>,
}

/// A scheduled region with its lowering — one element of the infallible
/// staged path's output.
#[derive(Clone, Debug)]
pub struct RegionSchedule {
    /// Lowered form.
    pub lowered: LoweredRegion,
    /// Its schedule.
    pub schedule: Schedule,
}

/// The result of driving one function end to end through the robust
/// pipeline: the formation outcome plus the accepted schedules/events.
#[derive(Clone, Debug)]
pub struct FunctionRun {
    /// What formation produced (possibly a transformed function).
    pub formed: FormOutcome,
    /// The robust chain's accepted schedules and survived events.
    pub result: RobustResult,
}

/// The result of driving a whole module through the robust pipeline.
#[derive(Clone, Debug, Default)]
pub struct ModuleRun {
    /// Total estimated execution time (Σ count × height over accepted
    /// schedules, including fallback pieces).
    pub time: f64,
    /// Number of accepted (sub-)region schedules.
    pub regions: usize,
    /// Every recovered or tolerated failure, across all functions, in
    /// pipeline order (the same stream [`PassObserver::degradation`]
    /// observes).
    pub events: Vec<DegradationEvent>,
}

impl ModuleRun {
    /// Events that fell back to a simpler region shape.
    pub fn recovered(&self) -> usize {
        self.events.iter().filter(|e| e.recovered).count()
    }

    /// Events tolerated under `--verify warn` (schedule kept unverified).
    pub fn tolerated(&self) -> usize {
        self.events.iter().filter(|e| !e.recovered).count()
    }
}

/// Stages 1–2 without a machine: formation and lowering are
/// machine-independent, so caching drivers (which share one formation
/// across heuristics and machines) drive the front half directly.
/// Observer-bracketed exactly as [`Pipeline::form`] / [`Pipeline::lower`]
/// — this *is* the driver's front half, not a bypass.
pub fn form_and_lower(
    f: &Function,
    former: &dyn RegionFormer,
    obs: &dyn PassObserver,
) -> (FormOutcome, LoweredFunction) {
    let formed = stage_form(f, former, obs);
    let lowered = stage_lower_set(&formed.function, &formed.regions, Some(&formed.origin), obs);
    (formed, lowered)
}

/// Stage 1 implementation shared by [`Pipeline::form`] and
/// [`form_and_lower`].
fn stage_form(f: &Function, former: &dyn RegionFormer, obs: &dyn PassObserver) -> FormOutcome {
    let scope = StageScope {
        function: f.name(),
        region: None,
    };
    obs.stage_enter(Stage::Formation, scope);
    let t = Instant::now();
    let out = former.form(f);
    obs.stage_exit(
        Stage::Formation,
        scope,
        t.elapsed(),
        StageStats {
            regions: out.regions.len(),
            ops: out.function.num_ops(),
            edges: 0,
            ..StageStats::default()
        },
    );
    out
}

/// Stage 2 implementation shared by [`Pipeline::lower_set`] and
/// [`form_and_lower`]: fans the per-region lowering out across the
/// worker budget; results in region order.
fn stage_lower_set(
    f: &Function,
    set: &RegionSet,
    origin: Option<&[BlockId]>,
    obs: &dyn PassObserver,
) -> LoweredFunction {
    let cfg = Cfg::new(f);
    let live = Liveness::new(f, &cfg);
    let indexed: Vec<usize> = (0..set.len()).collect();
    let lowered = treegion_par::par_map(&indexed, |&idx| {
        stage_lower_one(f, set, &live, origin, idx, obs)
    });
    LoweredFunction { cfg, live, lowered }
}

fn stage_lower_one(
    f: &Function,
    set: &RegionSet,
    live: &Liveness,
    origin: Option<&[BlockId]>,
    idx: usize,
    obs: &dyn PassObserver,
) -> LoweredRegion {
    let scope = StageScope {
        function: f.name(),
        region: Some(idx),
    };
    obs.stage_enter(Stage::Lowering, scope);
    let t = Instant::now();
    let lr = lower_region(f, &set.regions()[idx], live, origin);
    obs.stage_exit(
        Stage::Lowering,
        scope,
        t.elapsed(),
        StageStats {
            regions: 1,
            ops: lr.num_ops(),
            edges: 0,
            ..StageStats::default()
        },
    );
    lr
}

/// The unified formation → schedule → verify driver.
///
/// Construct one per (machine, options) pair — it is two words plus the
/// options, so per-cell construction in the eval harness is free.
#[derive(Clone, Debug)]
pub struct Pipeline<'m> {
    machine: &'m MachineModel,
    options: RobustOptions,
}

impl<'m> Pipeline<'m> {
    /// A pipeline with default [`RobustOptions`] (strict verification,
    /// SLR→BB fallback).
    pub fn new(machine: &'m MachineModel) -> Self {
        Pipeline {
            machine,
            options: RobustOptions::default(),
        }
    }

    /// A pipeline with explicit options (heuristic, verification mode,
    /// fallback policy, budgets, fault plan).
    pub fn with_options(machine: &'m MachineModel, options: RobustOptions) -> Self {
        Pipeline { machine, options }
    }

    /// The target machine model.
    pub fn machine(&self) -> &'m MachineModel {
        self.machine
    }

    /// The configured options.
    pub fn options(&self) -> &RobustOptions {
        &self.options
    }

    // ---- Staged, infallible kernels ------------------------------------

    /// Stage 1 — region formation, observer-bracketed.
    pub fn form(
        &self,
        f: &Function,
        former: &dyn RegionFormer,
        obs: &dyn PassObserver,
    ) -> FormOutcome {
        stage_form(f, former, obs)
    }

    /// Stage 2 — lowering every region of a formed function (fans out
    /// across the worker budget; results in region order).
    pub fn lower(&self, formed: &FormOutcome, obs: &dyn PassObserver) -> LoweredFunction {
        self.lower_set(&formed.function, &formed.regions, Some(&formed.origin), obs)
    }

    /// Stage 2 over an explicit partition (`origin` as for
    /// [`crate::lower_region`]; `None` means identity).
    pub fn lower_set(
        &self,
        f: &Function,
        set: &RegionSet,
        origin: Option<&[BlockId]>,
        obs: &dyn PassObserver,
    ) -> LoweredFunction {
        stage_lower_set(f, set, origin, obs)
    }

    /// Stages 3–4 — DDG construction and list scheduling of one lowered
    /// region, observer-bracketed per stage. Byte-identical to the legacy
    /// `schedule_region` kernel (which composes the same two stages).
    pub fn schedule_lowered(
        &self,
        lr: &LoweredRegion,
        scope: StageScope<'_>,
        obs: &dyn PassObserver,
    ) -> Schedule {
        obs.stage_enter(Stage::DdgBuild, scope);
        let t = Instant::now();
        let ddg = Ddg::build(lr, self.machine);
        obs.stage_exit(
            Stage::DdgBuild,
            scope,
            t.elapsed(),
            StageStats {
                regions: 1,
                ops: lr.num_ops(),
                edges: ddg.edges().len(),
                ..StageStats::default()
            },
        );
        obs.stage_enter(Stage::ListSched, scope);
        let t = Instant::now();
        let schedule = schedule_with_ddg(lr, &ddg, self.machine, &self.options.sched);
        // The scheduler published its automaton counters for this run on
        // this thread just before returning; fold them into the stage
        // bracket so profilers see them.
        let metrics = crate::sched::last_sched_metrics();
        obs.stage_exit(
            Stage::ListSched,
            scope,
            t.elapsed(),
            StageStats {
                regions: 1,
                ops: lr.num_ops(),
                edges: ddg.edges().len(),
                hazard_hits: metrics.hazard_hits,
                deferral_parks: metrics.deferral_parks,
                pressure_peak: metrics.pressure_peak.iter().copied().max().unwrap_or(0),
                pressure_parks: metrics.pressure_parks,
                ..StageStats::default()
            },
        );
        schedule
    }

    /// Spill-aware stages 3–4: like [`Pipeline::schedule_lowered`], but
    /// when the machine has a finite GPR file and the region livelocks on
    /// register pressure, inserts spill code and reschedules — the same
    /// escalating loop as the robust driver. Returns the (possibly
    /// spill-rewritten) region with its schedule. Under unbounded
    /// register files the loop body runs exactly once and the output is
    /// byte-identical to [`Pipeline::schedule_lowered`].
    ///
    /// # Panics
    ///
    /// Like the rest of the infallible path, panics when the region
    /// cannot be scheduled — here additionally when spilling cannot
    /// relieve the pressure (non-GPR class, no spillable range left, or
    /// [`MAX_SPILL_ROUNDS`] exhausted). Callers needing a structured
    /// failure use the robust chain instead.
    pub fn schedule_lowered_spilled(
        &self,
        mut lr: LoweredRegion,
        scope: StageScope<'_>,
        obs: &dyn PassObserver,
    ) -> (LoweredRegion, Schedule) {
        let mut spills_inserted: u64 = 0;
        let mut rounds = 0usize;
        loop {
            obs.stage_enter(Stage::DdgBuild, scope);
            let t = Instant::now();
            let ddg = Ddg::build(&lr, self.machine);
            obs.stage_exit(
                Stage::DdgBuild,
                scope,
                t.elapsed(),
                StageStats {
                    regions: 1,
                    ops: lr.num_ops(),
                    edges: ddg.edges().len(),
                    ..StageStats::default()
                },
            );
            obs.stage_enter(Stage::ListSched, scope);
            let t = Instant::now();
            let result = try_schedule_with_ddg(
                &lr,
                &ddg,
                self.machine,
                &self.options.sched,
                &Budgets::UNLIMITED,
            );
            match result {
                Ok(schedule) => {
                    #[cfg(debug_assertions)]
                    crate::verify_sched::verify_schedule(&lr, &ddg, self.machine, &schedule)
                        .expect("scheduler produced an invalid schedule");
                    let metrics = crate::sched::last_sched_metrics();
                    obs.stage_exit(
                        Stage::ListSched,
                        scope,
                        t.elapsed(),
                        StageStats {
                            regions: 1,
                            ops: lr.num_ops(),
                            edges: ddg.edges().len(),
                            hazard_hits: metrics.hazard_hits,
                            deferral_parks: metrics.deferral_parks,
                            pressure_peak: metrics.pressure_peak.iter().copied().max().unwrap_or(0),
                            pressure_parks: metrics.pressure_parks,
                            spills: spills_inserted,
                        },
                    );
                    return (lr, schedule);
                }
                Err(SchedFailure::RegisterPressure {
                    class: rc,
                    live: live_regs,
                    cap,
                }) if rc == treegion_ir::RegClass::Gpr && rounds < MAX_SPILL_ROUNDS => {
                    // Same escalation as the robust chain: the parking
                    // scheduler livelocks at `live <= cap`, so widen the
                    // victim set with the round count.
                    let excess = ((live_regs.saturating_sub(cap) as usize) + 1).max(rounds + 1);
                    match crate::lower::insert_spills(&lr, excess) {
                        Some((spilled, n)) => {
                            lr = spilled;
                            spills_inserted += n as u64;
                            rounds += 1;
                        }
                        None => panic!(
                            "register pressure unrecoverable by spilling: \
                             {live_regs} live {rc} regs against a file of {cap}"
                        ),
                    }
                }
                Err(e) => panic!("scheduler failed to make progress: {e}"),
            }
        }
    }

    /// Stages 2–4 over an explicit partition: lowers and schedules every
    /// region (no verification, no degradation — the infallible path the
    /// analytic evaluator and the VLIW compiler use). Regions that
    /// livelock on GPR pressure under a finite register file are
    /// spill-rewritten and rescheduled via
    /// [`Pipeline::schedule_lowered_spilled`]; with the default unbounded
    /// files the output is byte-identical to the historical path. Fans
    /// out across the worker budget; results in region order.
    pub fn schedule_set(
        &self,
        f: &Function,
        set: &RegionSet,
        origin: Option<&[BlockId]>,
        obs: &dyn PassObserver,
    ) -> Vec<RegionSchedule> {
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let indexed: Vec<usize> = (0..set.len()).collect();
        treegion_par::par_map(&indexed, |&idx| {
            let lowered = stage_lower_one(f, set, &live, origin, idx, obs);
            let scope = StageScope {
                function: f.name(),
                region: Some(idx),
            };
            let (lowered, schedule) = self.schedule_lowered_spilled(lowered, scope, obs);
            RegionSchedule { lowered, schedule }
        })
    }

    /// Stages 1–4 — forms, lowers, and schedules one function through the
    /// infallible path.
    pub fn schedule_function(
        &self,
        f: &Function,
        former: &dyn RegionFormer,
        obs: &dyn PassObserver,
    ) -> (FormOutcome, Vec<RegionSchedule>) {
        let formed = self.form(f, former, obs);
        let scheds =
            self.schedule_set(&formed.function, &formed.regions, Some(&formed.origin), obs);
        (formed, scheds)
    }

    // ---- Robust (verifier-gated) driver --------------------------------

    /// Runs the robust chain over an explicit partition: every region is
    /// lowered, scheduled, and verified, degrading Primary→SLR→BB per the
    /// configured [`crate::FallbackPolicy`]. The canonical successor of
    /// the old free `schedule_function_robust` entry points.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when one region fails at the primary
    /// level *and* at every fallback level the policy permits.
    pub fn run_set(
        &self,
        f: &Function,
        set: &RegionSet,
        origin: Option<&[BlockId]>,
        obs: &dyn PassObserver,
    ) -> Result<RobustResult, PipelineError> {
        run_robust(f, set, origin, self.machine, &self.options, obs)
    }

    /// [`Pipeline::run_set`] over a [`FormOutcome`].
    ///
    /// # Errors
    ///
    /// See [`Pipeline::run_set`].
    pub fn run_formed(
        &self,
        formed: &FormOutcome,
        obs: &dyn PassObserver,
    ) -> Result<RobustResult, PipelineError> {
        self.run_set(&formed.function, &formed.regions, Some(&formed.origin), obs)
    }

    /// Stages 1–6 — forms one function and drives it through the robust
    /// chain.
    ///
    /// # Errors
    ///
    /// See [`Pipeline::run_set`].
    pub fn run_function(
        &self,
        f: &Function,
        former: &dyn RegionFormer,
        obs: &dyn PassObserver,
    ) -> Result<FunctionRun, PipelineError> {
        let formed = self.form(f, former, obs);
        let result = self.run_formed(&formed, obs)?;
        Ok(FunctionRun { formed, result })
    }

    /// Drives a whole module through the robust pipeline, function by
    /// function (functions in module order, so times, regions, and the
    /// event stream are deterministic).
    ///
    /// # Errors
    ///
    /// Returns the first terminal [`PipelineError`].
    pub fn run_module(
        &self,
        module: &Module,
        former: &dyn RegionFormer,
        obs: &dyn PassObserver,
    ) -> Result<ModuleRun, PipelineError> {
        let mut run = ModuleRun::default();
        for f in module.functions() {
            let fr = self.run_function(f, former, obs)?;
            run.time += fr.result.estimated_time();
            run.regions += fr.result.outcomes.len();
            run.events.extend(fr.result.events);
        }
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::former::RegionConfig;
    use crate::observe::{EventLog, NullObserver, Profiler};
    use crate::sched::{schedule_region, ScheduleOptions};
    use crate::{form_treegions, FaultPlan, TailDupLimits};

    fn model() -> MachineModel {
        MachineModel::model_4u()
    }

    #[test]
    fn staged_path_matches_legacy_kernels() {
        let (f, _) = crate::testutil::figure1_cfg();
        let m = model();
        let p = Pipeline::new(&m);
        let (formed, scheds) = p.schedule_function(&f, &RegionConfig::Treegion, &NullObserver);
        // Legacy: free formers + lower_region + schedule_region.
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        assert_eq!(formed.regions.len(), set.len());
        for (i, (r, rs)) in set.regions().iter().zip(&scheds).enumerate() {
            let lr = lower_region(&f, r, &live, None);
            let s = schedule_region(&lr, &m, &ScheduleOptions::default());
            assert_eq!(rs.schedule.length(), s.length(), "region {i}");
            assert_eq!(
                rs.schedule.estimated_time(&rs.lowered).to_bits(),
                s.estimated_time(&lr).to_bits(),
                "region {i}"
            );
        }
    }

    #[test]
    fn run_formed_matches_staged_times_on_clean_input() {
        let (f, _) = crate::testutil::figure1_cfg();
        let m = model();
        let p = Pipeline::new(&m);
        let (_, scheds) = p.schedule_function(&f, &RegionConfig::Treegion, &NullObserver);
        let staged: f64 = scheds
            .iter()
            .map(|rs| rs.schedule.estimated_time(&rs.lowered))
            .sum();
        let run = p
            .run_function(&f, &RegionConfig::Treegion, &NullObserver)
            .unwrap();
        assert!(run.result.is_clean());
        assert_eq!(run.result.estimated_time().to_bits(), staged.to_bits());
    }

    #[test]
    fn run_module_aggregates_and_logs_events_in_order() {
        // One-function "module" with a fault campaign: the EventLog
        // observer must see exactly the events the ModuleRun reports, in
        // the same order.
        let (f, _) = crate::testutil::figure1_cfg();
        let mut module = Module::new("m");
        module.add_function(f);
        let m = model();
        let opts = RobustOptions {
            fault: Some(FaultPlan::from_seed(7)),
            ..Default::default()
        };
        let p = Pipeline::with_options(&m, opts);
        let log = EventLog::new();
        let run = p
            .run_module(&module, &RegionConfig::Treegion, &log)
            .unwrap();
        let observed = log.take_degradations();
        assert_eq!(observed, run.events);
        assert_eq!(run.recovered() + run.tolerated(), run.events.len());
    }

    #[test]
    fn profiler_sees_formation_once_per_function() {
        let (f, _) = crate::testutil::figure1_cfg();
        let m = model();
        let p = Pipeline::new(&m);
        let prof = Profiler::new();
        let run = p
            .run_function(
                &f,
                &RegionConfig::TreegionTd(TailDupLimits::default()),
                &prof,
            )
            .unwrap();
        let report = prof.report();
        assert_eq!(report[0].stage, Stage::Formation);
        assert_eq!(report[0].calls, 1);
        assert_eq!(report[0].stats.regions, run.formed.regions.len());
        // Every per-region stage fired once per region on a clean run.
        for sp in &report[1..] {
            assert_eq!(
                sp.calls,
                run.formed.regions.len(),
                "stage {} call count",
                sp.stage
            );
        }
    }
}
