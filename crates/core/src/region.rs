//! Scheduling regions and region sets.
//!
//! A [`Region`] is a set of basic blocks with a distinguished root and a
//! recorded *parent edge* for every non-root member — the CFG edge through
//! which the block was absorbed during formation. For treegions the
//! members form a tree (Section 2 of the paper); for SLRs and superblocks
//! a path; basic-block regions are singletons.

use std::collections::HashMap;
use treegion_ir::{BlockId, Function};

/// The flavour of region a [`RegionSet`] was formed as.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// One region per basic block (the paper's scheduling baseline).
    BasicBlock,
    /// Simple linear region: single-entry multiple-exit path, formed like a
    /// treegion but following only the heaviest successor (Section 3).
    Slr,
    /// Superblock: profile-selected trace made single-entry by tail
    /// duplication (Hwu et al.; the paper's main comparison point).
    Superblock,
    /// Treegion: decision-tree subgraph of the CFG (the paper's
    /// contribution), optionally enlarged by tail duplication (Section 4).
    Treegion,
}

impl std::fmt::Display for RegionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RegionKind::BasicBlock => "bb",
            RegionKind::Slr => "slr",
            RegionKind::Superblock => "sb",
            RegionKind::Treegion => "tree",
        };
        f.write_str(s)
    }
}

/// Identifies a region within a [`RegionSet`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub usize);

/// An edge out of a region: `(from block, successor index)` in terminator
/// successor order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ExitEdge {
    /// Region member the edge leaves from.
    pub from: BlockId,
    /// Index into the terminator's successor list (`usize::MAX` for the
    /// implicit exit of a `ret` terminator).
    pub succ_index: usize,
}

/// A single region.
#[derive(Clone, Debug)]
pub struct Region {
    kind: RegionKind,
    /// Member blocks in absorption (preorder) order; `blocks[0]` is the root.
    blocks: Vec<BlockId>,
    /// Parent edge for each member (aligned with `blocks`); `None` for the
    /// root.
    parent_edge: Vec<Option<(BlockId, usize)>>,
}

impl Region {
    /// Creates a region from its root.
    pub fn new(kind: RegionKind, root: BlockId) -> Self {
        Region {
            kind,
            blocks: vec![root],
            parent_edge: vec![None],
        }
    }

    /// The region kind.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// The root (entry) block.
    pub fn root(&self) -> BlockId {
        self.blocks[0]
    }

    /// Member blocks in absorption order (root first).
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Number of member blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if `b` is a member.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// The parent edge through which `b` was absorbed (`None` for the root).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a member.
    pub fn parent_edge(&self, b: BlockId) -> Option<(BlockId, usize)> {
        let i = self
            .blocks
            .iter()
            .position(|&x| x == b)
            .expect("block not in region");
        self.parent_edge[i]
    }

    /// Absorbs `block` into the region via `(parent, succ_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not already a member or `block` already is.
    pub fn absorb(&mut self, block: BlockId, parent: BlockId, succ_index: usize) {
        assert!(self.contains(parent), "parent {parent} not in region");
        assert!(!self.contains(block), "block {block} already in region");
        self.blocks.push(block);
        self.parent_edge.push(Some((parent, succ_index)));
    }

    /// `true` if `(from, succ_index)` is a parent (internal) edge.
    pub fn is_internal_edge(&self, from: BlockId, succ_index: usize) -> bool {
        self.parent_edge.contains(&Some((from, succ_index)))
    }

    /// The children of `b` within the region, in absorption order.
    pub fn children(&self, b: BlockId) -> Vec<BlockId> {
        self.blocks
            .iter()
            .zip(&self.parent_edge)
            .filter(|(_, pe)| matches!(pe, Some((p, _)) if *p == b))
            .map(|(c, _)| *c)
            .collect()
    }

    /// Leaf members (no in-region children). The number of leaves equals
    /// the paper's *path count* for tree-shaped regions.
    pub fn leaves(&self) -> Vec<BlockId> {
        let parents: std::collections::HashSet<BlockId> = self
            .parent_edge
            .iter()
            .filter_map(|pe| pe.map(|(p, _)| p))
            .collect();
        self.blocks
            .iter()
            .copied()
            .filter(|b| !parents.contains(b))
            .collect()
    }

    /// Number of distinct root→leaf paths (the paper's path count limit
    /// applies to this).
    pub fn path_count(&self) -> usize {
        self.leaves().len()
    }

    /// All exit edges: member out-edges that are not parent edges, plus one
    /// [`ExitEdge`] with `succ_index == usize::MAX` for each `ret`
    /// terminator.
    pub fn exit_edges(&self, f: &Function) -> Vec<ExitEdge> {
        // Parent (internal) edges as a set, so the per-out-edge test is
        // O(1) rather than a scan of the whole parent-edge list.
        let internal: std::collections::HashSet<(BlockId, usize)> =
            self.parent_edge.iter().flatten().copied().collect();
        let mut exits = Vec::new();
        for &b in &self.blocks {
            let term = &f.block(b).term;
            if term.is_ret() {
                exits.push(ExitEdge {
                    from: b,
                    succ_index: usize::MAX,
                });
                continue;
            }
            for i in 0..term.num_successors() {
                if !internal.contains(&(b, i)) {
                    exits.push(ExitEdge {
                        from: b,
                        succ_index: i,
                    });
                }
            }
        }
        exits
    }

    /// Sum of source-level op counts of member blocks.
    pub fn num_source_ops(&self, f: &Function) -> usize {
        self.blocks.iter().map(|&b| f.block(b).ops.len()).sum()
    }

    /// The region's profile weight: the root block's execution count.
    pub fn weight(&self, f: &Function) -> f64 {
        f.block(self.root()).weight
    }

    /// Depth of `b` in the region tree (root = 0).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a member.
    pub fn depth(&self, b: BlockId) -> usize {
        let mut depth = 0;
        let mut cur = b;
        while let Some((p, _)) = self.parent_edge(cur) {
            cur = p;
            depth += 1;
        }
        depth
    }

    /// `true` if the members form a tree under the recorded parent edges:
    /// every non-root has a parent that appears earlier in absorption
    /// order (which rules out cycles) and the root has none.
    pub fn is_tree(&self) -> bool {
        for (i, pe) in self.parent_edge.iter().enumerate() {
            match pe {
                None => {
                    if i != 0 {
                        return false;
                    }
                }
                Some((p, _)) => {
                    let Some(pi) = self.blocks.iter().position(|b| b == p) else {
                        return false;
                    };
                    if pi >= i {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// `true` if the region is linear (every block has at most one child).
    pub fn is_linear(&self) -> bool {
        self.blocks.iter().all(|&b| self.children(b).len() <= 1)
    }
}

/// A partition of a function's blocks into regions.
#[derive(Clone, Debug)]
pub struct RegionSet {
    kind: RegionKind,
    regions: Vec<Region>,
    block_region: HashMap<BlockId, RegionId>,
}

impl RegionSet {
    /// Creates an empty region set of the given kind.
    pub fn new(kind: RegionKind) -> Self {
        RegionSet {
            kind,
            regions: Vec::new(),
            block_region: HashMap::new(),
        }
    }

    /// The region kind.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// Adds a finished region. All member blocks must be unassigned.
    ///
    /// # Panics
    ///
    /// Panics if a member block already belongs to another region.
    pub fn add(&mut self, region: Region) -> RegionId {
        let id = RegionId(self.regions.len());
        for &b in region.blocks() {
            let prev = self.block_region.insert(b, id);
            assert!(prev.is_none(), "block {b} already in a region");
        }
        self.regions.push(region);
        id
    }

    /// The regions, in formation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` if no regions have been formed.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The region containing `b`, if assigned.
    pub fn region_of(&self, b: BlockId) -> Option<RegionId> {
        self.block_region.get(&b).copied()
    }

    /// Shared access to a region.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0]
    }

    /// Checks the partition invariant: every block of `f` is in exactly
    /// one region.
    pub fn is_partition_of(&self, f: &Function) -> bool {
        f.block_ids().all(|b| self.block_region.contains_key(&b))
            && self.block_region.len() == f.num_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treegion_ir::{FunctionBuilder, Op};

    fn tree_cfg() -> (Function, Vec<BlockId>) {
        // bb0 -> bb1, bb2 ; bb1 -> bb3, bb4 ; others ret
        let mut b = FunctionBuilder::new("t");
        let ids: Vec<_> = (0..5).map(|_| b.block()).collect();
        let c = b.gpr();
        b.push(ids[0], Op::movi(c, 1));
        b.branch(ids[0], c, (ids[1], 6.0), (ids[2], 4.0));
        b.branch(ids[1], c, (ids[3], 5.0), (ids[4], 1.0));
        b.ret(ids[2], None);
        b.ret(ids[3], None);
        b.ret(ids[4], None);
        (b.finish(), ids)
    }

    #[test]
    fn absorption_builds_a_tree() {
        let (_, ids) = tree_cfg();
        let mut r = Region::new(RegionKind::Treegion, ids[0]);
        r.absorb(ids[1], ids[0], 0);
        r.absorb(ids[2], ids[0], 1);
        r.absorb(ids[3], ids[1], 0);
        assert!(r.is_tree());
        assert!(!r.is_linear());
        assert_eq!(r.children(ids[0]), vec![ids[1], ids[2]]);
        assert_eq!(r.depth(ids[3]), 2);
        assert_eq!(r.path_count(), 2);
        assert_eq!(r.leaves(), vec![ids[2], ids[3]]);
    }

    #[test]
    fn exit_edges_exclude_internal_edges() {
        let (f, ids) = tree_cfg();
        let mut r = Region::new(RegionKind::Treegion, ids[0]);
        r.absorb(ids[1], ids[0], 0);
        let exits = r.exit_edges(&f);
        // bb0 else edge, bb1 both edges.
        assert_eq!(exits.len(), 3);
        assert!(exits.contains(&ExitEdge {
            from: ids[0],
            succ_index: 1
        }));
        assert!(exits.contains(&ExitEdge {
            from: ids[1],
            succ_index: 0
        }));
    }

    #[test]
    fn ret_blocks_produce_implicit_exits() {
        let (f, ids) = tree_cfg();
        let mut r = Region::new(RegionKind::Treegion, ids[0]);
        r.absorb(ids[2], ids[0], 1);
        let exits = r.exit_edges(&f);
        assert!(exits.contains(&ExitEdge {
            from: ids[2],
            succ_index: usize::MAX
        }));
    }

    #[test]
    #[should_panic(expected = "already in a region")]
    fn region_set_rejects_double_assignment() {
        let (_, ids) = tree_cfg();
        let mut set = RegionSet::new(RegionKind::Treegion);
        set.add(Region::new(RegionKind::Treegion, ids[0]));
        set.add(Region::new(RegionKind::Treegion, ids[0]));
    }

    #[test]
    fn partition_check() {
        let (f, ids) = tree_cfg();
        let mut set = RegionSet::new(RegionKind::BasicBlock);
        for &b in &ids {
            set.add(Region::new(RegionKind::BasicBlock, b));
        }
        assert!(set.is_partition_of(&f));
        assert_eq!(set.len(), 5);
        assert_eq!(set.region_of(ids[3]), Some(RegionId(3)));
    }

    #[test]
    fn linear_region_reports_linear() {
        let (_, ids) = tree_cfg();
        let mut r = Region::new(RegionKind::Slr, ids[0]);
        r.absorb(ids[1], ids[0], 0);
        r.absorb(ids[3], ids[1], 0);
        assert!(r.is_linear());
        assert!(r.is_tree());
        assert_eq!(r.path_count(), 1);
    }
}
