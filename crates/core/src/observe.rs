//! Pass observation: the [`PassObserver`] hook interface and its built-in
//! implementations.
//!
//! Every stage of the [`crate::Pipeline`] driver — formation, lowering,
//! DDG construction, list scheduling, verification — brackets its work
//! with [`PassObserver::stage_enter`] / [`PassObserver::stage_exit`],
//! carrying wall time and op/region/edge counters. Degradation and
//! containment events flow through the same interface. `tgc schedule
//! --profile`, `bench_sched`'s per-kernel timings, and the eval harness's
//! `DegradationEvents` are all built on these hooks instead of ad-hoc
//! instrumentation.
//!
//! ## Threading and determinism
//!
//! Observers are shared across the `treegion_par` worker budget, so the
//! trait requires [`Sync`] and all hooks take `&self` (implementations
//! use interior mutability). Stage hooks fire *inside* the per-region
//! work — concurrently under `--jobs N` — so implementations must only
//! accumulate commutatively (the built-in [`Profiler`] sums). Event hooks
//! ([`PassObserver::degradation`], [`PassObserver::containment`]) are
//! invoked by the driver *at the merge point, in region order*, so an
//! [`EventLog`] sees the same byte-identical stream at any job count.

use crate::contain::ContainmentEvent;
use crate::error::DegradationEvent;
use std::sync::Mutex;
use std::time::Duration;

/// A pipeline stage, in dataflow order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Region formation (per function).
    Formation,
    /// Lowering a region to its schedulable form (per region).
    Lowering,
    /// Data-dependence-graph construction (per region).
    DdgBuild,
    /// List scheduling (per region).
    ListSched,
    /// Schedule verification (per region; skipped under `--verify off`).
    Verify,
}

impl Stage {
    /// All stages, in dataflow order.
    pub const ALL: [Stage; 5] = [
        Stage::Formation,
        Stage::Lowering,
        Stage::DdgBuild,
        Stage::ListSched,
        Stage::Verify,
    ];

    /// Stable short name (used by `--profile` output and CI smoke tests).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Formation => "formation",
            Stage::Lowering => "lowering",
            Stage::DdgBuild => "ddg",
            Stage::ListSched => "list-sched",
            Stage::Verify => "verify",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Formation => 0,
            Stage::Lowering => 1,
            Stage::DdgBuild => 2,
            Stage::ListSched => 3,
            Stage::Verify => 4,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a stage invocation happened.
#[derive(Copy, Clone, Debug)]
pub struct StageScope<'a> {
    /// Name of the function being driven.
    pub function: &'a str,
    /// Index of the region within its `RegionSet` (`None` for
    /// function-granularity stages like formation).
    pub region: Option<usize>,
}

/// Work counters reported at [`PassObserver::stage_exit`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Regions processed (formation: regions formed; per-region stages: 1).
    pub regions: usize,
    /// Ops processed (lowered ops for per-region stages).
    pub ops: usize,
    /// DDG edges involved (0 where not applicable).
    pub edges: usize,
    /// Hazard-automaton probe rejections during list scheduling (0 for
    /// other stages). See [`crate::SchedMetrics`].
    pub hazard_hits: u64,
    /// Ready entries parked on a class deferral list during list
    /// scheduling (0 for other stages). See [`crate::SchedMetrics`].
    pub deferral_parks: u64,
    /// Peak simultaneous live register ranges in any one class during
    /// list scheduling (0 for other stages). Unlike the other counters
    /// this accumulates by **max**, not sum — a peak over regions is a
    /// maximum, and summing it would be meaningless.
    pub pressure_peak: u32,
    /// Ready entries parked by the register-file pressure ceiling during
    /// list scheduling (0 for other stages). See [`crate::SchedMetrics`].
    pub pressure_parks: u64,
    /// Spill victims inserted by pressure-recovery rounds (reported on
    /// the list-scheduling stage; 0 elsewhere).
    pub spills: u64,
}

/// Hook interface threaded through every [`crate::Pipeline`] stage.
///
/// All methods have empty defaults, so observers implement only what they
/// need. See the module docs for the threading/determinism contract.
pub trait PassObserver: Sync {
    /// A stage is about to run.
    fn stage_enter(&self, stage: Stage, scope: StageScope<'_>) {
        let _ = (stage, scope);
    }

    /// A stage finished; `elapsed` covers only the stage's own work.
    fn stage_exit(
        &self,
        stage: Stage,
        scope: StageScope<'_>,
        elapsed: Duration,
        stats: StageStats,
    ) {
        let _ = (stage, scope, elapsed, stats);
    }

    /// The degradation chain survived a failure (merge-point ordered).
    fn degradation(&self, event: &DegradationEvent) {
        let _ = event;
    }

    /// A harness-level containment occurred (merge-point ordered).
    fn containment(&self, event: &ContainmentEvent) {
        let _ = event;
    }
}

/// The do-nothing observer (zero-cost default).
#[derive(Copy, Clone, Debug, Default)]
pub struct NullObserver;

impl PassObserver for NullObserver {}

#[derive(Clone, Debug, Default)]
struct StageAcc {
    calls: usize,
    nanos: u128,
    stats: StageStats,
}

/// Accumulated profile of one stage, as reported by [`Profiler::report`].
#[derive(Clone, Debug)]
pub struct StageProfile {
    /// Which stage.
    pub stage: Stage,
    /// Number of invocations (enter/exit pairs).
    pub calls: usize,
    /// Total wall time, in nanoseconds.
    pub nanos: u128,
    /// Summed work counters.
    pub stats: StageStats,
}

/// A [`PassObserver`] that accumulates per-stage wall time and counters.
///
/// Powers `tgc schedule --profile` and `bench_sched`'s kernel timings.
/// Accumulation is commutative (sums under a mutex), so totals are
/// meaningful at any job count even though per-invocation callbacks fire
/// concurrently.
#[derive(Debug, Default)]
pub struct Profiler {
    stages: Mutex<[StageAcc; 5]>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Per-stage accumulated profile, in dataflow order; stages that never
    /// fired report zero calls.
    pub fn report(&self) -> Vec<StageProfile> {
        let accs = self.stages.lock().unwrap_or_else(|p| p.into_inner());
        Stage::ALL
            .iter()
            .map(|&stage| {
                let a = &accs[stage.index()];
                StageProfile {
                    stage,
                    calls: a.calls,
                    nanos: a.nanos,
                    stats: a.stats,
                }
            })
            .collect()
    }

    /// Total accumulated nanoseconds of one stage.
    pub fn stage_nanos(&self, stage: Stage) -> u128 {
        let accs = self.stages.lock().unwrap_or_else(|p| p.into_inner());
        accs[stage.index()].nanos
    }

    /// Total accumulated nanoseconds across all stages.
    pub fn total_nanos(&self) -> u128 {
        let accs = self.stages.lock().unwrap_or_else(|p| p.into_inner());
        accs.iter().map(|a| a.nanos).sum()
    }
}

impl PassObserver for Profiler {
    fn stage_exit(
        &self,
        stage: Stage,
        _scope: StageScope<'_>,
        elapsed: Duration,
        stats: StageStats,
    ) {
        let mut accs = self.stages.lock().unwrap_or_else(|p| p.into_inner());
        let a = &mut accs[stage.index()];
        a.calls += 1;
        a.nanos += elapsed.as_nanos();
        a.stats.regions += stats.regions;
        a.stats.ops += stats.ops;
        a.stats.edges += stats.edges;
        a.stats.hazard_hits += stats.hazard_hits;
        a.stats.deferral_parks += stats.deferral_parks;
        a.stats.pressure_peak = a.stats.pressure_peak.max(stats.pressure_peak);
        a.stats.pressure_parks += stats.pressure_parks;
        a.stats.spills += stats.spills;
    }
}

/// A [`PassObserver`] that records the ordered degradation / containment
/// event streams. Because the driver invokes event hooks at the merge
/// point in region order, the log's contents are byte-identical at any
/// job count — the eval harness's `DegradationEvents` reporting is built
/// on this.
#[derive(Debug, Default)]
pub struct EventLog {
    degradations: Mutex<Vec<DegradationEvent>>,
    containments: Mutex<Vec<ContainmentEvent>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Drains the recorded degradation events, in pipeline order.
    pub fn take_degradations(&self) -> Vec<DegradationEvent> {
        std::mem::take(&mut *self.degradations.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Drains the recorded containment events, in pipeline order.
    pub fn take_containments(&self) -> Vec<ContainmentEvent> {
        std::mem::take(&mut *self.containments.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

impl PassObserver for EventLog {
    fn degradation(&self, event: &DegradationEvent) {
        self.degradations
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event.clone());
    }

    fn containment(&self, event: &ContainmentEvent) {
        self.containments
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["formation", "lowering", "ddg", "list-sched", "verify"]
        );
    }

    #[test]
    fn profiler_accumulates_per_stage() {
        let p = Profiler::new();
        let scope = StageScope {
            function: "f",
            region: Some(0),
        };
        p.stage_exit(
            Stage::Lowering,
            scope,
            Duration::from_nanos(10),
            StageStats {
                regions: 1,
                ops: 5,
                edges: 0,
                hazard_hits: 2,
                deferral_parks: 1,
                pressure_peak: 7,
                pressure_parks: 4,
                spills: 1,
            },
        );
        p.stage_exit(
            Stage::Lowering,
            scope,
            Duration::from_nanos(32),
            StageStats {
                regions: 1,
                ops: 7,
                edges: 0,
                hazard_hits: 3,
                deferral_parks: 2,
                pressure_peak: 5,
                pressure_parks: 6,
                spills: 2,
            },
        );
        let report = p.report();
        let lowering = &report[1];
        assert_eq!(lowering.stage, Stage::Lowering);
        assert_eq!(lowering.calls, 2);
        assert_eq!(lowering.nanos, 42);
        assert_eq!(lowering.stats.ops, 12);
        assert_eq!(lowering.stats.hazard_hits, 5);
        assert_eq!(lowering.stats.deferral_parks, 3);
        // Peak pressure combines by max; parks and spills by sum.
        assert_eq!(lowering.stats.pressure_peak, 7);
        assert_eq!(lowering.stats.pressure_parks, 10);
        assert_eq!(lowering.stats.spills, 3);
        assert_eq!(p.total_nanos(), 42);
        assert_eq!(p.stage_nanos(Stage::Formation), 0);
    }
}
