//! Independent schedule verification.
//!
//! [`verify_schedule`] re-checks a finished [`Schedule`] against its
//! [`LoweredRegion`], [`Ddg`], and [`MachineModel`] without trusting any
//! scheduler bookkeeping: completeness, resource bounds, dependence
//! latencies, exit-cycle consistency, and the legality of every dominator
//! parallelism elimination. The VLIW simulator validates schedules
//! *dynamically* on one executed path; this verifier validates them
//! *statically* on all paths.

use crate::ddg::Ddg;
use crate::lower::{LOpKind, LoweredRegion};
use crate::sched::Schedule;
use std::error::Error;
use std::fmt;
use treegion_machine::{MachineModel, OpClass};

/// The class of property a schedule violated. Fault-injection tests key on
/// this to prove the verifier attributes each corruption correctly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleErrorKind {
    /// An op is neither issued nor recorded as eliminated.
    MissingOp,
    /// An op appears in more than one issue slot (or is both issued and
    /// eliminated).
    DoubleIssue,
    /// A cycle issues more ops than the machine's issue width.
    WidthOverflow,
    /// A cycle issues more branches than the machine's branch limit.
    BranchOverflow,
    /// A cycle issues more memory ops than the machine has ports.
    MemPortOverflow,
    /// A cycle issues more ops of some other resource class (e.g. fdiv)
    /// than the machine has units for it.
    ClassOverflow,
    /// A dependence edge's latency is not satisfied.
    LatencyViolation,
    /// An exit's recorded cycle disagrees with its branch op.
    ExitMismatch,
    /// A dominator-parallelism elimination pairs non-twin ops, removes a
    /// non-speculable op, or names a twin that was never issued.
    BogusElimination,
    /// Some cycle keeps more live ranges of a class than the machine's
    /// finite register file can hold (checked only when the file is
    /// finite; the unbounded default never trips it).
    RegFileOverflow,
    /// Internally inconsistent bookkeeping (out-of-range index, `cycle_of`
    /// disagreeing with the issue rows, unscheduled edge endpoint).
    Malformed,
}

/// A schedule verification failure: a [`ScheduleErrorKind`] plus a
/// human-readable description of the specific violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleError {
    kind: ScheduleErrorKind,
    message: String,
}

impl ScheduleError {
    /// The class of property that was violated.
    pub fn kind(&self) -> ScheduleErrorKind {
        self.kind
    }
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule verification failed: {}", self.message)
    }
}

impl Error for ScheduleError {}

fn fail(kind: ScheduleErrorKind, message: String) -> Result<(), ScheduleError> {
    Err(ScheduleError { kind, message })
}

/// Verifies `sched` against its region, dependence graph, and machine.
///
/// # Errors
///
/// Returns the first violated property:
/// * every op is either issued exactly once or recorded as eliminated;
/// * no cycle exceeds the issue width (or the branch limit);
/// * every dependence edge satisfies its latency;
/// * every exit's recorded cycle matches its branch op's issue cycle;
/// * every elimination pairs twin ops (same origin/opcode/immediate) and
///   the survivor is scheduled no later than the eliminated op's recorded
///   cycle;
/// * on machines with finite register files, no cycle keeps more live
///   ranges of a class than the class's file holds.
pub fn verify_schedule(
    lr: &LoweredRegion,
    ddg: &Ddg,
    m: &MachineModel,
    sched: &Schedule,
) -> Result<(), ScheduleError> {
    let n = lr.lops.len();

    // Completeness: issued ⊎ eliminated = all ops, no duplicates.
    let mut seen = vec![false; n];
    for (c, row) in sched.cycles.iter().enumerate() {
        for &i in row {
            if i >= n {
                return fail(
                    ScheduleErrorKind::Malformed,
                    format!("cycle {c} references op {i} out of range"),
                );
            }
            if seen[i] {
                return fail(
                    ScheduleErrorKind::DoubleIssue,
                    format!("op {i} issued twice"),
                );
            }
            seen[i] = true;
            if sched.cycle_of[i] != Some(c as u32) {
                return fail(
                    ScheduleErrorKind::Malformed,
                    format!(
                        "op {i} in cycle {c} but cycle_of says {:?}",
                        sched.cycle_of[i]
                    ),
                );
            }
        }
    }
    for (e, t) in &sched.eliminated {
        if seen[*e] {
            return fail(
                ScheduleErrorKind::DoubleIssue,
                format!("op {e} both issued and eliminated"),
            );
        }
        seen[*e] = true;
        if !sched.cycles.iter().flatten().any(|i| i == t) {
            return fail(
                ScheduleErrorKind::BogusElimination,
                format!("twin {t} of eliminated op {e} was never issued"),
            );
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return fail(
            ScheduleErrorKind::MissingOp,
            format!("op {missing} neither issued nor eliminated"),
        );
    }

    // Resources.
    for (c, row) in sched.cycles.iter().enumerate() {
        if row.len() > m.issue_width() {
            return fail(
                ScheduleErrorKind::WidthOverflow,
                format!(
                    "cycle {c} issues {} ops on a {}-wide machine",
                    row.len(),
                    m.issue_width()
                ),
            );
        }
        // Per-class unit limits, counted independently of any scheduler
        // bookkeeping. The classification is the same one the scheduler's
        // hazard automaton is built from; a bug there would surface here
        // as a class overflow on some fuzzed schedule.
        for class in OpClass::ALL {
            let Some(limit) = m.unit_limit(class) else {
                continue;
            };
            let used = row
                .iter()
                .filter(|&&i| OpClass::of(lr.lops[i].op.opcode) == class)
                .count();
            if used > limit {
                let kind = match class {
                    OpClass::Branch => ScheduleErrorKind::BranchOverflow,
                    OpClass::Mem => ScheduleErrorKind::MemPortOverflow,
                    _ => ScheduleErrorKind::ClassOverflow,
                };
                return fail(
                    kind,
                    format!(
                        "cycle {c} issues {used} {} ops (units {limit})",
                        class.name()
                    ),
                );
            }
        }
    }

    // Dependences. An op eliminated by dominator parallelism inherits its
    // twin's issue cycle: edges *out of* it are checked against that cycle
    // (consumers read the twin's value, produced then), but edges *into*
    // it are vacuous — the op never executes, and its twin's own inputs
    // (verified identical at elimination time) carry their own edges.
    let eliminated: std::collections::HashSet<usize> =
        sched.eliminated.iter().map(|(e, _)| *e).collect();
    for e in ddg.edges() {
        if eliminated.contains(&e.to) {
            continue;
        }
        let (Some(cf), Some(ct)) = (sched.cycle_of[e.from], sched.cycle_of[e.to]) else {
            return fail(
                ScheduleErrorKind::Malformed,
                format!("edge {e:?} touches an unscheduled op"),
            );
        };
        if ct < cf + e.latency {
            return fail(
                ScheduleErrorKind::LatencyViolation,
                format!(
                    "dependence {} -> {} (latency {}) violated: cycles {cf} -> {ct}",
                    e.from, e.to, e.latency
                ),
            );
        }
    }

    // Exit cycles.
    for (k, exit) in lr.exits.iter().enumerate() {
        match sched.cycle_of[exit.branch_lop] {
            Some(c) if c == sched.exit_cycles[k] => {}
            other => {
                return fail(
                    ScheduleErrorKind::ExitMismatch,
                    format!(
                        "exit {k}: recorded cycle {} but branch op at {other:?}",
                        sched.exit_cycles[k]
                    ),
                )
            }
        }
        if !matches!(lr.lops[exit.branch_lop].kind, LOpKind::ExitBranch(e) if e == k) {
            return fail(
                ScheduleErrorKind::ExitMismatch,
                format!("exit {k}: branch_lop is not its exit branch"),
            );
        }
    }

    // Elimination legality.
    for (e, t) in &sched.eliminated {
        let (le, lt) = (&lr.lops[*e], &lr.lops[*t]);
        if le.origin != lt.origin || le.op.opcode != lt.op.opcode || le.op.imm != lt.op.imm {
            return fail(
                ScheduleErrorKind::BogusElimination,
                format!("elimination ({e},{t}) pairs non-twin ops"),
            );
        }
        if !le.op.opcode.is_speculable() {
            return fail(
                ScheduleErrorKind::BogusElimination,
                format!("elimination ({e},{t}) removes a non-speculable op"),
            );
        }
    }

    // Register-file legality: replay every live range from scratch and
    // charge it against the machine's finite files, trusting none of the
    // scheduler's incremental pressure accounting. A value holds one
    // register of its class from its def's issue cycle through the END of
    // its last use's cycle (uses = operands, guards, and exit-copy
    // sources read at the exit branch, all resolved through the
    // elimination alias map); a live-in holds its register from cycle 0;
    // a def nobody reads holds its register for its def cycle alone.
    if m.has_finite_regs() {
        use treegion_ir::Reg;
        let mut def_cycle: std::collections::HashMap<Reg, u32> = std::collections::HashMap::new();
        let mut last_use: std::collections::HashMap<Reg, u32> = std::collections::HashMap::new();
        let touch = |tab: &mut std::collections::HashMap<Reg, u32>, r: Reg, c: u32| {
            let e = tab.entry(sched.resolve(r)).or_insert(c);
            *e = (*e).max(c);
        };
        for (i, l) in lr.lops.iter().enumerate() {
            if eliminated.contains(&i) {
                continue;
            }
            let Some(c) = sched.cycle_of[i] else {
                continue;
            };
            for &d in &l.op.defs {
                def_cycle.insert(d, c);
            }
            for &u in &l.op.uses {
                touch(&mut last_use, u, c);
            }
            if let Some(g) = l.guard {
                touch(&mut last_use, g, c);
            }
        }
        for (k, exit) in lr.exits.iter().enumerate() {
            let c = sched.exit_cycles[k];
            for &(_, src) in &exit.copies {
                touch(&mut last_use, src, c);
            }
        }
        let cycles = sched.cycles.len();
        let mut live_at = vec![[0u32; 3]; cycles];
        let mut charge = |r: Reg, start: u32, end: u32| {
            let cls = r.class().index();
            let last = (end as usize).min(cycles.saturating_sub(1));
            for counts in live_at.iter_mut().take(last + 1).skip(start as usize) {
                counts[cls] += 1;
            }
        };
        for (&r, &d) in &def_cycle {
            let end = last_use.get(&r).copied().unwrap_or(d).max(d);
            charge(r, d, end);
        }
        for (&r, &u) in &last_use {
            if !def_cycle.contains_key(&r) {
                // Live-in: occupied from region entry.
                charge(r, 0, u);
            }
        }
        for (c, counts) in live_at.iter().enumerate() {
            for class in treegion_ir::RegClass::ALL {
                let Some(cap) = m.reg_cap(class) else {
                    continue;
                };
                let used = counts[class.index()];
                if used > cap {
                    return fail(
                        ScheduleErrorKind::RegFileOverflow,
                        format!(
                            "cycle {c} keeps {used} {class} ranges live \
                             (file holds {cap})"
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        form_treegions, form_treegions_td, lower_region, schedule_region, Heuristic,
        ScheduleOptions, TailDupLimits,
    };
    use treegion_analysis::{Cfg, Liveness};
    use treegion_ir::{Cond, Function, FunctionBuilder, Op};

    fn branchy() -> Function {
        let mut b = FunctionBuilder::new("v");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (a, x, y, c) = (b.gpr(), b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [
                Op::load(x, a, 0),
                Op::load(y, a, 8),
                Op::cmp(Cond::Lt, c, x, y),
            ],
        );
        b.branch(bb0, c, (bb1, 70.0), (bb2, 30.0));
        b.push(bb1, Op::store(a, x, 16));
        b.ret(bb1, None);
        b.ret(bb2, Some(y));
        b.finish()
    }

    #[test]
    fn valid_schedules_verify_for_all_heuristics_and_machines() {
        let f = branchy();
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        for m in [
            MachineModel::model_1u(),
            MachineModel::model_4u(),
            MachineModel::model_8u(),
        ] {
            for h in Heuristic::ALL {
                for r in set.regions() {
                    let lr = lower_region(&f, r, &live, None);
                    let ddg = Ddg::build(&lr, &m);
                    let s = crate::schedule_with_ddg(
                        &lr,
                        &ddg,
                        &m,
                        &ScheduleOptions {
                            heuristic: h,
                            dominator_parallelism: false,
                            ..Default::default()
                        },
                    );
                    verify_schedule(&lr, &ddg, &m, &s).unwrap();
                }
            }
        }
    }

    #[test]
    fn tail_duplicated_schedules_with_dompar_verify() {
        let (f, _) = {
            // reuse the figure 1 CFG from the crate test utilities
            crate::testutil::figure1_cfg()
        };
        let td = form_treegions_td(&f, &TailDupLimits::expansion_3_0());
        let cfg = Cfg::new(&td.function);
        let live = Liveness::new(&td.function, &cfg);
        let m = MachineModel::model_4u();
        for r in td.regions.regions() {
            let lr = lower_region(&td.function, r, &live, Some(&td.origin));
            let ddg = Ddg::build(&lr, &m);
            let s = crate::schedule_with_ddg(
                &lr,
                &ddg,
                &m,
                &ScheduleOptions {
                    heuristic: Heuristic::GlobalWeight,
                    dominator_parallelism: true,
                    ..Default::default()
                },
            );
            verify_schedule(&lr, &ddg, &m, &s).unwrap();
        }
    }

    /// One hand-built tamper per fault class, each asserting the *exact*
    /// [`ScheduleErrorKind`] — the attribution contract the degradation
    /// chain's reports rely on (see also `fault.rs`, which reaches the same
    /// kinds through the seeded injector).
    #[test]
    fn each_tamper_class_yields_its_error_kind() {
        let f = branchy();
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let m = MachineModel::model_4u();
        let r = set.region(set.region_of(f.entry()).unwrap());
        let lr = lower_region(&f, r, &live, None);
        let ddg = Ddg::build(&lr, &m);
        let good = schedule_region(&lr, &m, &ScheduleOptions::default());
        verify_schedule(&lr, &ddg, &m, &good).unwrap();
        let kind_of = |s: &Schedule| verify_schedule(&lr, &ddg, &m, s).unwrap_err().kind();

        // Missing op: drop one op from its row but keep its cycle_of.
        let mut s = good.clone();
        let victim = s.cycles[0][0];
        s.cycles[0].retain(|&i| i != victim);
        assert_eq!(kind_of(&s), ScheduleErrorKind::MissingOp);

        // Double issue: the same op in two rows.
        let mut s = good.clone();
        let dup = s.cycles[0][0];
        s.cycles.last_mut().unwrap().push(dup);
        assert_eq!(kind_of(&s), ScheduleErrorKind::DoubleIssue);

        // Width overflow: cram every op into cycle 0 (consistently).
        let mut s = good.clone();
        assert!(lr.lops.len() > m.issue_width());
        s.cycles = vec![(0..lr.lops.len()).collect()];
        for c in s.cycle_of.iter_mut() {
            *c = Some(0);
        }
        assert_eq!(kind_of(&s), ScheduleErrorKind::WidthOverflow);

        // Latency violation: delay a producer past its consumer.
        let mut s = good.clone();
        let e = ddg
            .edges()
            .iter()
            .find(|e| e.latency > 0)
            .expect("region has a latency-carrying edge");
        let from = e.from;
        for row in s.cycles.iter_mut() {
            row.retain(|&i| i != from);
        }
        let last = s.cycles.len();
        s.cycles.push(vec![from]);
        s.cycle_of[from] = Some(last as u32);
        assert_eq!(kind_of(&s), ScheduleErrorKind::LatencyViolation);

        // Exit mismatch: shift a recorded exit cycle off its branch op.
        let mut s = good.clone();
        s.exit_cycles[0] += 1;
        assert_eq!(kind_of(&s), ScheduleErrorKind::ExitMismatch);

        // Bogus elimination: record an op as eliminated by a twin that was
        // itself never issued.
        let mut s = good.clone();
        let victim = s.cycles[0][0];
        for row in s.cycles.iter_mut() {
            row.retain(|&i| i != victim);
        }
        s.eliminated.push((victim, victim));
        assert_eq!(kind_of(&s), ScheduleErrorKind::BogusElimination);
    }

    #[test]
    fn class_overflow_on_asym_machine_yields_class_kind() {
        // Two independent fdivs on the asymmetric preset (1 fdiv unit):
        // the honest schedule spreads them; cramming both into cycle 0
        // stays within the issue width but overflows the fdiv class.
        let mut b = FunctionBuilder::new("fd");
        let bb0 = b.block();
        let (a, x, y) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [
                Op::new(treegion_ir::Opcode::FDiv, vec![x], vec![a, a], 0),
                Op::new(treegion_ir::Opcode::FDiv, vec![y], vec![a, a], 0),
            ],
        );
        b.ret(bb0, None);
        let f = b.finish();
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let m = MachineModel::model_4u_asym();
        let r = set.region(set.region_of(f.entry()).unwrap());
        let lr = lower_region(&f, r, &live, None);
        let ddg = Ddg::build(&lr, &m);
        let good = schedule_region(&lr, &m, &ScheduleOptions::default());
        verify_schedule(&lr, &ddg, &m, &good).unwrap();
        let divs: Vec<usize> = lr
            .lops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.op.opcode == treegion_ir::Opcode::FDiv)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(divs.len(), 2);
        assert_ne!(good.cycle_of[divs[0]], good.cycle_of[divs[1]]);
        let mut s = good.clone();
        for row in s.cycles.iter_mut() {
            row.retain(|i| !divs.contains(i));
        }
        s.cycles[0].extend(&divs);
        // Keep cycle_of consistent so the class check is what trips.
        let rebuilt: Vec<Vec<usize>> = s.cycles.clone();
        for (c, row) in rebuilt.iter().enumerate() {
            for &i in row {
                s.cycle_of[i] = Some(c as u32);
            }
        }
        assert_eq!(
            verify_schedule(&lr, &ddg, &m, &s).unwrap_err().kind(),
            ScheduleErrorKind::ClassOverflow
        );
    }

    #[test]
    fn finite_file_legality_is_checked_independently() {
        // Eight dead movis: the unbounded schedule packs four defs into
        // cycle 0, which a 1-register file cannot hold; the schedule the
        // finite machine itself produces must verify cleanly.
        let mut b = FunctionBuilder::new("rf");
        let bb0 = b.block();
        for k in 0..8 {
            let r = b.gpr();
            b.push(bb0, Op::movi(r, k));
        }
        b.ret(bb0, None);
        let f = b.finish();
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let r = set.region(set.region_of(f.entry()).unwrap());
        let lr = lower_region(&f, r, &live, None);
        let m_fin = MachineModel::model_4u().with_gpr_file(1);
        let ddg = Ddg::build(&lr, &m_fin);
        let wide = schedule_region(&lr, &MachineModel::model_4u(), &ScheduleOptions::default());
        assert_eq!(
            verify_schedule(&lr, &ddg, &m_fin, &wide)
                .unwrap_err()
                .kind(),
            ScheduleErrorKind::RegFileOverflow
        );
        let tight = schedule_region(&lr, &m_fin, &ScheduleOptions::default());
        verify_schedule(&lr, &ddg, &m_fin, &tight).unwrap();
    }

    #[test]
    fn tampered_schedules_are_rejected() {
        let f = branchy();
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let m = MachineModel::model_4u();
        let r = set.region(set.region_of(f.entry()).unwrap());
        let lr = lower_region(&f, r, &live, None);
        let ddg = Ddg::build(&lr, &m);
        let good = schedule_region(&lr, &m, &ScheduleOptions::default());
        verify_schedule(&lr, &ddg, &m, &good).unwrap();

        // Drop an op from its cycle: completeness violation.
        let mut s = good.clone();
        s.cycles[0].pop();
        assert!(verify_schedule(&lr, &ddg, &m, &s).is_err());

        // Move a consumer before its producer: latency violation.
        let mut s = good.clone();
        if let Some(e) = ddg.edges().iter().find(|e| e.latency > 0) {
            // Force the consumer's recorded cycle to 0.
            let to = e.to;
            let from_cycle = s.cycle_of[e.from].unwrap();
            if from_cycle > 0 || e.latency > 0 {
                // remove from old row, insert into row 0
                for row in s.cycles.iter_mut() {
                    row.retain(|&i| i != to);
                }
                s.cycles[0].insert(0, to);
                s.cycle_of[to] = Some(0);
                assert!(verify_schedule(&lr, &ddg, &m, &s).is_err());
            }
        }

        // Overfill a cycle: resource violation.
        let mut s = good.clone();
        let all: Vec<usize> = (0..lr.lops.len()).collect();
        s.cycles[0] = all.clone();
        s.cycles.truncate(1);
        for (i, c) in s.cycle_of.iter_mut().enumerate() {
            let _ = i;
            *c = Some(0);
        }
        let _ = all;
        assert!(verify_schedule(&lr, &ddg, &m, &s).is_err());
    }
}
