//! Independent schedule verification.
//!
//! [`verify_schedule`] re-checks a finished [`Schedule`] against its
//! [`LoweredRegion`], [`Ddg`], and [`MachineModel`] without trusting any
//! scheduler bookkeeping: completeness, resource bounds, dependence
//! latencies, exit-cycle consistency, and the legality of every dominator
//! parallelism elimination. The VLIW simulator validates schedules
//! *dynamically* on one executed path; this verifier validates them
//! *statically* on all paths.

use crate::ddg::Ddg;
use crate::lower::{LOpKind, LoweredRegion};
use crate::sched::Schedule;
use std::error::Error;
use std::fmt;
use treegion_machine::MachineModel;

/// A schedule verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleError(String);

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule verification failed: {}", self.0)
    }
}

impl Error for ScheduleError {}

fn fail(msg: String) -> Result<(), ScheduleError> {
    Err(ScheduleError(msg))
}

/// Verifies `sched` against its region, dependence graph, and machine.
///
/// # Errors
///
/// Returns the first violated property:
/// * every op is either issued exactly once or recorded as eliminated;
/// * no cycle exceeds the issue width (or the branch limit);
/// * every dependence edge satisfies its latency;
/// * every exit's recorded cycle matches its branch op's issue cycle;
/// * every elimination pairs twin ops (same origin/opcode/immediate) and
///   the survivor is scheduled no later than the eliminated op's recorded
///   cycle.
pub fn verify_schedule(
    lr: &LoweredRegion,
    ddg: &Ddg,
    m: &MachineModel,
    sched: &Schedule,
) -> Result<(), ScheduleError> {
    let n = lr.lops.len();

    // Completeness: issued ⊎ eliminated = all ops, no duplicates.
    let mut seen = vec![false; n];
    for (c, row) in sched.cycles.iter().enumerate() {
        for &i in row {
            if i >= n {
                return fail(format!("cycle {c} references op {i} out of range"));
            }
            if seen[i] {
                return fail(format!("op {i} issued twice"));
            }
            seen[i] = true;
            if sched.cycle_of[i] != Some(c as u32) {
                return fail(format!(
                    "op {i} in cycle {c} but cycle_of says {:?}",
                    sched.cycle_of[i]
                ));
            }
        }
    }
    for (e, t) in &sched.eliminated {
        if seen[*e] {
            return fail(format!("op {e} both issued and eliminated"));
        }
        seen[*e] = true;
        if !sched.cycles.iter().flatten().any(|i| i == t) {
            return fail(format!("twin {t} of eliminated op {e} was never issued"));
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return fail(format!("op {missing} neither issued nor eliminated"));
    }

    // Resources.
    for (c, row) in sched.cycles.iter().enumerate() {
        if row.len() > m.issue_width() {
            return fail(format!(
                "cycle {c} issues {} ops on a {}-wide machine",
                row.len(),
                m.issue_width()
            ));
        }
        if let Some(limit) = m.branch_limit() {
            let branches = row
                .iter()
                .filter(|&&i| lr.lops[i].op.opcode.is_branch())
                .count();
            if branches > limit {
                return fail(format!(
                    "cycle {c} issues {branches} branches (limit {limit})"
                ));
            }
        }
        if let Some(limit) = m.mem_port_limit() {
            let mems = row
                .iter()
                .filter(|&&i| {
                    let opc = lr.lops[i].op.opcode;
                    opc.is_memory() || opc == treegion_ir::Opcode::Call
                })
                .count();
            if mems > limit {
                return fail(format!(
                    "cycle {c} issues {mems} memory ops (ports {limit})"
                ));
            }
        }
    }

    // Dependences. An op eliminated by dominator parallelism inherits its
    // twin's issue cycle: edges *out of* it are checked against that cycle
    // (consumers read the twin's value, produced then), but edges *into*
    // it are vacuous — the op never executes, and its twin's own inputs
    // (verified identical at elimination time) carry their own edges.
    let eliminated: std::collections::HashSet<usize> =
        sched.eliminated.iter().map(|(e, _)| *e).collect();
    for e in ddg.edges() {
        if eliminated.contains(&e.to) {
            continue;
        }
        let (Some(cf), Some(ct)) = (sched.cycle_of[e.from], sched.cycle_of[e.to]) else {
            return fail(format!("edge {:?} touches an unscheduled op", e));
        };
        if ct < cf + e.latency {
            return fail(format!(
                "dependence {} -> {} (latency {}) violated: cycles {cf} -> {ct}",
                e.from, e.to, e.latency
            ));
        }
    }

    // Exit cycles.
    for (k, exit) in lr.exits.iter().enumerate() {
        match sched.cycle_of[exit.branch_lop] {
            Some(c) if c == sched.exit_cycles[k] => {}
            other => {
                return fail(format!(
                    "exit {k}: recorded cycle {} but branch op at {other:?}",
                    sched.exit_cycles[k]
                ))
            }
        }
        if !matches!(lr.lops[exit.branch_lop].kind, LOpKind::ExitBranch(e) if e == k) {
            return fail(format!("exit {k}: branch_lop is not its exit branch"));
        }
    }

    // Elimination legality.
    for (e, t) in &sched.eliminated {
        let (le, lt) = (&lr.lops[*e], &lr.lops[*t]);
        if le.origin != lt.origin || le.op.opcode != lt.op.opcode || le.op.imm != lt.op.imm {
            return fail(format!("elimination ({e},{t}) pairs non-twin ops"));
        }
        if !le.op.opcode.is_speculable() {
            return fail(format!("elimination ({e},{t}) removes a non-speculable op"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        form_treegions, form_treegions_td, lower_region, schedule_region, Heuristic,
        ScheduleOptions, TailDupLimits,
    };
    use treegion_analysis::{Cfg, Liveness};
    use treegion_ir::{Cond, Function, FunctionBuilder, Op};

    fn branchy() -> Function {
        let mut b = FunctionBuilder::new("v");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (a, x, y, c) = (b.gpr(), b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [
                Op::load(x, a, 0),
                Op::load(y, a, 8),
                Op::cmp(Cond::Lt, c, x, y),
            ],
        );
        b.branch(bb0, c, (bb1, 70.0), (bb2, 30.0));
        b.push(bb1, Op::store(a, x, 16));
        b.ret(bb1, None);
        b.ret(bb2, Some(y));
        b.finish()
    }

    #[test]
    fn valid_schedules_verify_for_all_heuristics_and_machines() {
        let f = branchy();
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        for m in [
            MachineModel::model_1u(),
            MachineModel::model_4u(),
            MachineModel::model_8u(),
        ] {
            for h in Heuristic::ALL {
                for r in set.regions() {
                    let lr = lower_region(&f, r, &live, None);
                    let ddg = Ddg::build(&lr, &m);
                    let s = crate::schedule_with_ddg(
                        &lr,
                        &ddg,
                        &m,
                        &ScheduleOptions {
                            heuristic: h,
                            dominator_parallelism: false,
                            ..Default::default()
                        },
                    );
                    verify_schedule(&lr, &ddg, &m, &s).unwrap();
                }
            }
        }
    }

    #[test]
    fn tail_duplicated_schedules_with_dompar_verify() {
        let (f, _) = {
            // reuse the figure 1 CFG from the crate test utilities
            crate::testutil::figure1_cfg()
        };
        let td = form_treegions_td(&f, &TailDupLimits::expansion_3_0());
        let cfg = Cfg::new(&td.function);
        let live = Liveness::new(&td.function, &cfg);
        let m = MachineModel::model_4u();
        for r in td.regions.regions() {
            let lr = lower_region(&td.function, r, &live, Some(&td.origin));
            let ddg = Ddg::build(&lr, &m);
            let s = crate::schedule_with_ddg(
                &lr,
                &ddg,
                &m,
                &ScheduleOptions {
                    heuristic: Heuristic::GlobalWeight,
                    dominator_parallelism: true,
                    ..Default::default()
                },
            );
            verify_schedule(&lr, &ddg, &m, &s).unwrap();
        }
    }

    #[test]
    fn tampered_schedules_are_rejected() {
        let f = branchy();
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let m = MachineModel::model_4u();
        let r = set.region(set.region_of(f.entry()).unwrap());
        let lr = lower_region(&f, r, &live, None);
        let ddg = Ddg::build(&lr, &m);
        let good = schedule_region(&lr, &m, &ScheduleOptions::default());
        verify_schedule(&lr, &ddg, &m, &good).unwrap();

        // Drop an op from its cycle: completeness violation.
        let mut s = good.clone();
        s.cycles[0].pop();
        assert!(verify_schedule(&lr, &ddg, &m, &s).is_err());

        // Move a consumer before its producer: latency violation.
        let mut s = good.clone();
        if let Some(e) = ddg.edges().iter().find(|e| e.latency > 0) {
            // Force the consumer's recorded cycle to 0.
            let to = e.to;
            let from_cycle = s.cycle_of[e.from].unwrap();
            if from_cycle > 0 || e.latency > 0 {
                // remove from old row, insert into row 0
                for row in s.cycles.iter_mut() {
                    row.retain(|&i| i != to);
                }
                s.cycles[0].insert(0, to);
                s.cycle_of[to] = Some(0);
                assert!(verify_schedule(&lr, &ddg, &m, &s).is_err());
            }
        }

        // Overfill a cycle: resource violation.
        let mut s = good.clone();
        let all: Vec<usize> = (0..lr.lops.len()).collect();
        s.cycles[0] = all.clone();
        s.cycles.truncate(1);
        for (i, c) in s.cycle_of.iter_mut().enumerate() {
            let _ = i;
            *c = Some(0);
        }
        let _ = all;
        assert!(verify_schedule(&lr, &ddg, &m, &s).is_err());
    }
}
