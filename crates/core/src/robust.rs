//! Verifier-gated graceful degradation for the scheduling pipeline.
//!
//! The seed pipeline treated every internal failure as fatal: a verifier
//! rejection or a watchdog trip panicked the whole evaluation. This module
//! replaces that with a *degradation chain*: when a region's primary
//! schedule is unusable — rejected by [`verify_schedule`], over an op
//! budget, or stuck against the cycle watchdog — the region is re-carved
//! into progressively simpler shapes and rescheduled:
//!
//! 1. **Primary** — the originally requested region shape.
//! 2. **SLR** — the failed region's blocks re-partitioned into
//!    single-entry linear chains (each chain follows the heaviest
//!    in-region child, exactly as SLR formation follows the heaviest
//!    successor).
//! 3. **Basic blocks** — one singleton region per member block.
//!
//! The carve is always legal: every non-root member of a region has
//! exactly one CFG predecessor (merge points delimit regions during
//! formation), so *any* re-partition of a region's blocks into trees,
//! paths, or singletons keeps each piece single-entry. Fallback schedules
//! are themselves verified before being accepted; only when every rung
//! fails does the pipeline return a terminal [`PipelineError`] carrying
//! every attempt.
//!
//! Fault injection (the [`crate::FaultInjector`]) plugs in at the primary
//! level only, so injected faults are detected by the verifier and then
//! *recovered* by clean fallback scheduling — the property the robustness
//! tests assert end to end.

use crate::ddg::Ddg;
use crate::error::{
    Budgets, DegradationEvent, FallbackLevel, FallbackPolicy, PipelineError, SchedFailure,
    VerifyMode,
};
use crate::fault::{FaultClass, FaultInjector, FaultPlan};
use crate::lower::{try_lower_region, LoweredRegion};
use crate::observe::{PassObserver, Stage, StageScope, StageStats};
use crate::region::{Region, RegionKind, RegionSet};
use crate::sched::{try_schedule_with_ddg, Schedule, ScheduleOptions};
use crate::verify_sched::{verify_schedule, ScheduleError};
use std::collections::HashSet;
use std::time::Instant;
use treegion_analysis::{Cfg, Liveness};
use treegion_ir::{BlockId, Function};
use treegion_machine::MachineModel;

/// Configuration of the robust scheduling pipeline.
#[derive(Clone, Debug, Default)]
pub struct RobustOptions {
    /// Scheduler configuration for every attempt.
    pub sched: ScheduleOptions,
    /// What to do with verifier rejections (default: strict).
    pub verify: VerifyMode,
    /// How far the degradation chain may fall (default: SLR then BB).
    pub fallback: FallbackPolicy,
    /// Resource budgets (default: unlimited beyond the watchdog).
    pub budgets: Budgets,
    /// Optional fault-injection campaign, applied to primary attempts.
    pub fault: Option<FaultPlan>,
    /// Containment-test hook (`tgc --panic-region N`): deterministically
    /// panic while scheduling region `N` at the primary level, exercising
    /// the panic-containment path end to end. The panic is caught, mapped
    /// to [`SchedFailure::Panicked`], and recovered through the ordinary
    /// fallback chain.
    pub panic_on_region: Option<usize>,
}

/// One accepted (sub-)region schedule.
#[derive(Clone, Debug)]
pub struct RegionOutcome {
    /// Index of the *original* region in the input [`RegionSet`] this
    /// outcome descends from (several outcomes share an index after a
    /// fallback carve).
    pub region_index: usize,
    /// The region actually scheduled (the original, or a carved piece).
    pub region: Region,
    /// Its lowering.
    pub lowered: LoweredRegion,
    /// The accepted schedule.
    pub schedule: Schedule,
    /// Which rung of the ladder produced it.
    pub level: FallbackLevel,
}

impl RegionOutcome {
    /// Estimated execution time of this outcome (Σ exit count × height).
    pub fn estimated_time(&self) -> f64 {
        self.schedule.estimated_time(&self.lowered)
    }
}

/// The result of robustly scheduling one function.
#[derive(Clone, Debug)]
pub struct RobustResult {
    /// Accepted schedules, in original-region order (carved pieces stay
    /// adjacent, roots first).
    pub outcomes: Vec<RegionOutcome>,
    /// Every failure the chain survived.
    pub events: Vec<DegradationEvent>,
    kind: RegionKind,
}

impl RobustResult {
    /// Total estimated execution time over all outcomes.
    pub fn estimated_time(&self) -> f64 {
        self.outcomes
            .iter()
            .map(RegionOutcome::estimated_time)
            .sum()
    }

    /// `true` if every region scheduled at its primary shape with no
    /// tolerated failures.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
            && self
                .outcomes
                .iter()
                .all(|o| o.level == FallbackLevel::Primary)
    }

    /// Rebuilds the accepted partition as a [`RegionSet`] (primary regions
    /// plus carved fallback pieces). The set partitions the function again,
    /// so it can be handed to the VLIW compiler/simulator like any other
    /// formation result.
    pub fn region_set(&self) -> RegionSet {
        let mut set = RegionSet::new(self.kind);
        for o in &self.outcomes {
            set.add(o.region.clone());
        }
        set
    }
}

/// Deprecated free-function entry point to the robust chain.
///
/// This was one of two colliding `schedule_function_robust` entry points
/// (the other lived in the eval crate and has been removed). The
/// canonical driver is now [`crate::Pipeline`]: use
/// [`crate::Pipeline::run_formed`] / [`crate::Pipeline::run_set`], which
/// additionally thread [`PassObserver`] hooks through every stage.
///
/// # Errors
///
/// Returns a [`PipelineError`] when one region fails at the primary level
/// *and* at every fallback level the policy permits.
#[deprecated(
    since = "0.5.0",
    note = "use Pipeline::run_formed / Pipeline::run_set; this shim runs unobserved"
)]
pub fn schedule_function_robust(
    f: &Function,
    set: &RegionSet,
    origin_map: Option<&[BlockId]>,
    m: &MachineModel,
    opts: &RobustOptions,
) -> Result<RobustResult, PipelineError> {
    run_robust(f, set, origin_map, m, opts, &crate::observe::NullObserver)
}

/// Schedules every region of `set` over `f` with verification, budgets,
/// optional fault injection, and the degradation chain — the engine
/// behind [`crate::Pipeline::run_set`].
///
/// `origin_map`, when present (after tail duplication), maps each block to
/// its original (see [`crate::lower_region`]).
///
/// Stage hooks ([`PassObserver::stage_enter`]/`stage_exit`) fire inside
/// the per-region work (possibly concurrently); degradation hooks fire at
/// the merge point, in region order, so observers see a deterministic
/// event stream at any job count.
pub(crate) fn run_robust(
    f: &Function,
    set: &RegionSet,
    origin_map: Option<&[BlockId]>,
    m: &MachineModel,
    opts: &RobustOptions,
    obs: &dyn PassObserver,
) -> Result<RobustResult, PipelineError> {
    let cfg = Cfg::new(f);
    let live = Liveness::new(f, &cfg);
    let mut result = RobustResult {
        outcomes: Vec::new(),
        events: Vec::new(),
        kind: set.kind(),
    };
    if opts.fault.is_some() {
        // Fault campaigns draw from one RNG stream *across* regions; the
        // stream's region order is part of the campaign's determinism
        // contract, so the faulted path stays strictly serial.
        let mut injector = opts.fault.as_ref().map(FaultInjector::new);
        for (idx, region) in set.regions().iter().enumerate() {
            let run = schedule_one(
                f,
                idx,
                region,
                &live,
                origin_map,
                m,
                opts,
                injector.as_mut(),
                obs,
            )?;
            result.outcomes.extend(run.outcomes);
            for ev in &run.events {
                obs.degradation(ev);
            }
            result.events.extend(run.events);
        }
        return Ok(result);
    }
    // Clean path: regions are independent, so fan out. Results are merged
    // back in region order, which keeps outcomes/events byte-identical to
    // the serial path at any job count; on error, the *first* failing
    // region's error is returned, exactly as the serial loop would.
    let regions = set.regions();
    let indexed: Vec<usize> = (0..regions.len()).collect();
    let runs = treegion_par::par_map(&indexed, |&idx| {
        schedule_one(f, idx, &regions[idx], &live, origin_map, m, opts, None, obs)
    });
    for run in runs {
        let run = run?;
        result.outcomes.extend(run.outcomes);
        for ev in &run.events {
            obs.degradation(ev);
        }
        result.events.extend(run.events);
    }
    Ok(result)
}

/// What one attempt produced: a schedule, plus a rejection that was
/// tolerated under [`VerifyMode::Warn`].
struct Attempt {
    lowered: LoweredRegion,
    schedule: Schedule,
    tolerated: Option<ScheduleError>,
}

/// Everything one region contributed: its accepted outcome(s) plus any
/// degradation events. Returned (rather than pushed into shared state) so
/// the clean path can schedule regions in parallel and merge in order.
struct RegionRun {
    outcomes: Vec<RegionOutcome>,
    events: Vec<DegradationEvent>,
}

#[allow(clippy::too_many_arguments)]
fn schedule_one(
    f: &Function,
    idx: usize,
    region: &Region,
    live: &Liveness,
    origin_map: Option<&[BlockId]>,
    m: &MachineModel,
    opts: &RobustOptions,
    injector: Option<&mut FaultInjector>,
    obs: &dyn PassObserver,
) -> Result<RegionRun, PipelineError> {
    let mut run = RegionRun {
        outcomes: Vec::new(),
        events: Vec::new(),
    };
    match attempt_contained(f, idx, region, live, origin_map, m, opts, injector, obs) {
        Ok(att) => {
            if let Some(err) = att.tolerated {
                run.events.push(DegradationEvent {
                    function: f.name().to_string(),
                    region_index: idx,
                    region_root: region.root(),
                    region_kind: region.kind(),
                    cause: SchedFailure::Verification(err),
                    level: FallbackLevel::Primary,
                    recovered: false,
                });
            }
            run.outcomes.push(RegionOutcome {
                region_index: idx,
                region: region.clone(),
                lowered: att.lowered,
                schedule: att.schedule,
                level: FallbackLevel::Primary,
            });
            Ok(run)
        }
        Err(cause) => {
            let mut attempts = vec![(FallbackLevel::Primary, cause.clone())];
            for &level in opts.fallback.levels() {
                let pieces = match level {
                    FallbackLevel::Primary => unreachable!("primary is not a fallback rung"),
                    FallbackLevel::Slr => carve_slr(f, region),
                    FallbackLevel::BasicBlock => carve_bb(region),
                };
                match schedule_pieces(f, idx, &pieces, live, origin_map, m, opts, obs) {
                    Ok(outs) => {
                        run.events.push(DegradationEvent {
                            function: f.name().to_string(),
                            region_index: idx,
                            region_root: region.root(),
                            region_kind: region.kind(),
                            cause,
                            level,
                            recovered: true,
                        });
                        for (piece, att) in pieces.into_iter().zip(outs) {
                            run.outcomes.push(RegionOutcome {
                                region_index: idx,
                                region: piece,
                                lowered: att.lowered,
                                schedule: att.schedule,
                                level,
                            });
                        }
                        return Ok(run);
                    }
                    Err(failure) => attempts.push((level, failure)),
                }
            }
            Err(PipelineError {
                function: f.name().to_string(),
                region_index: idx,
                region_root: region.root(),
                attempts,
            })
        }
    }
}

/// Runs one scheduling attempt with panic containment: an unwind anywhere
/// in lowering, scheduling, or verification becomes
/// [`SchedFailure::Panicked`] instead of aborting the run, so the
/// degradation chain treats a crash exactly like a verifier rejection or
/// a tripped budget. `AssertUnwindSafe` is sound here: on a contained
/// panic the attempt's partial state is discarded wholesale, and the
/// fault injector (the only captured `&mut`) is documented to be
/// serial-only, so a torn injector stream can never feed a parallel path.
fn contain<R>(body: impl FnOnce() -> Result<R, SchedFailure>) -> Result<R, SchedFailure> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)).unwrap_or_else(|p| {
        Err(SchedFailure::Panicked {
            payload: treegion_par::panic_message(p.as_ref()),
        })
    })
}

/// The primary-level [`attempt`] under [`contain`], with the
/// deterministic `panic_on_region` containment-test hook.
#[allow(clippy::too_many_arguments)]
fn attempt_contained(
    f: &Function,
    idx: usize,
    region: &Region,
    live: &Liveness,
    origin_map: Option<&[BlockId]>,
    m: &MachineModel,
    opts: &RobustOptions,
    injector: Option<&mut FaultInjector>,
    obs: &dyn PassObserver,
) -> Result<Attempt, SchedFailure> {
    contain(|| {
        if opts.panic_on_region == Some(idx) {
            panic!("injected panic while scheduling region #{idx} (panic_on_region)");
        }
        attempt(f, idx, region, live, origin_map, m, opts, injector, obs)
    })
}

/// How many schedule→spill→reschedule rounds a finite-register attempt
/// may run before the failure is handed to the degradation ladder. Each
/// round spills at least one victim, so pressure falls monotonically;
/// the cap only bounds pathological regions where spilling cannot help
/// (e.g. the overflow comes from one op's own definitions).
pub(crate) const MAX_SPILL_ROUNDS: usize = 8;

/// Lowers, (optionally fault-injects,) schedules, and verifies one region.
///
/// Each stage is bracketed with [`PassObserver`] enter/exit hooks;
/// `stage_exit` fires only when the stage succeeds (a failed attempt
/// aborts mid-stage, and its partial time is not attributed).
///
/// On machines with a finite register file a [`SchedFailure::
/// RegisterPressure`] livelock in the GPR class is not (yet) fatal: the
/// region is rewritten by [`insert_spills`] and rescheduled, up to
/// [`MAX_SPILL_ROUNDS`] times. Each retry rebuilds the DDG (the spill
/// and reload ops add real edges), re-entering the DdgBuild/ListSched
/// stages, so profiles attribute the extra work honestly. Pred/Btr
/// pressure is unspillable and falls straight through to the ladder.
#[allow(clippy::too_many_arguments)]
fn attempt(
    f: &Function,
    idx: usize,
    region: &Region,
    live: &Liveness,
    origin_map: Option<&[BlockId]>,
    m: &MachineModel,
    opts: &RobustOptions,
    mut injector: Option<&mut FaultInjector>,
    obs: &dyn PassObserver,
) -> Result<Attempt, SchedFailure> {
    let scope = StageScope {
        function: f.name(),
        region: Some(idx),
    };
    obs.stage_enter(Stage::Lowering, scope);
    let t = Instant::now();
    let mut lr = try_lower_region(f, region, live, origin_map, &opts.budgets)?;
    obs.stage_exit(
        Stage::Lowering,
        scope,
        t.elapsed(),
        StageStats {
            regions: 1,
            ops: lr.num_ops(),
            edges: 0,
            ..StageStats::default()
        },
    );

    let class: Option<FaultClass> = injector.as_deref_mut().and_then(FaultInjector::choose);
    let mut sched_opts = opts.sched;
    let mut spills_inserted: u64 = 0;
    let mut rounds = 0usize;
    let (sched, true_ddg) = loop {
        obs.stage_enter(Stage::DdgBuild, scope);
        let t = Instant::now();
        let true_ddg = Ddg::build(&lr, m);
        obs.stage_exit(
            Stage::DdgBuild,
            scope,
            t.elapsed(),
            StageStats {
                regions: 1,
                ops: lr.num_ops(),
                edges: true_ddg.edges().len(),
                ..StageStats::default()
            },
        );

        obs.stage_enter(Stage::ListSched, scope);
        let t = Instant::now();
        // Fault corruption applies to the first round only: the injector
        // draws one fault per region, and a pressure retry must not
        // replay it against the rewritten op list.
        let result = match (injector.as_deref_mut(), class) {
            (Some(inj), Some(c)) if c.is_pre_schedule() && rounds == 0 => {
                let mut corrupted = true_ddg.clone();
                inj.corrupt_pre(c, &mut corrupted, &mut sched_opts);
                try_schedule_with_ddg(&lr, &corrupted, m, &sched_opts, &opts.budgets)
            }
            _ => try_schedule_with_ddg(&lr, &true_ddg, m, &sched_opts, &opts.budgets),
        };
        match result {
            Ok(s) => {
                obs.stage_exit(Stage::ListSched, scope, t.elapsed(), {
                    // Fold in the scheduler's automaton counters
                    // (published on this thread just before the schedule
                    // call returned).
                    let metrics = crate::sched::last_sched_metrics();
                    StageStats {
                        regions: 1,
                        ops: lr.num_ops(),
                        edges: true_ddg.edges().len(),
                        hazard_hits: metrics.hazard_hits,
                        deferral_parks: metrics.deferral_parks,
                        pressure_peak: metrics.pressure_peak.iter().copied().max().unwrap_or(0),
                        pressure_parks: metrics.pressure_parks,
                        spills: spills_inserted,
                    }
                });
                break (s, true_ddg);
            }
            Err(SchedFailure::RegisterPressure {
                class: rc,
                live: live_regs,
                cap,
            }) if rc == treegion_ir::RegClass::Gpr && rounds < MAX_SPILL_ROUNDS => {
                // Spill enough victims to clear the reported overflow in
                // one round if the longest ranges are the culprits. The
                // parking scheduler livelocks at `live <= cap` (only
                // live-ins can exceed the file), so the overflow estimate
                // alone is almost always 1; escalate with the round count
                // so repeated livelocks converge instead of shaving one
                // range per rebuild.
                let excess = ((live_regs.saturating_sub(cap) as usize) + 1).max(rounds + 1);
                match crate::lower::insert_spills(&lr, excess) {
                    Some((spilled, n)) => {
                        // Spill code counts against the op budget like
                        // any other lowered op.
                        if let Some(max) = opts.budgets.max_region_ops {
                            if spilled.num_ops() > max {
                                return Err(SchedFailure::OpBudgetExceeded {
                                    ops: spilled.num_ops(),
                                    budget: max,
                                });
                            }
                        }
                        lr = spilled;
                        spills_inserted += n as u64;
                        rounds += 1;
                    }
                    None => {
                        return Err(SchedFailure::RegisterPressure {
                            class: rc,
                            live: live_regs,
                            cap,
                        })
                    }
                }
            }
            Err(e) => return Err(e),
        }
    };
    let mut sched = sched;
    if let (Some(inj), Some(c)) = (injector, class) {
        if !c.is_pre_schedule() {
            inj.corrupt_post(c, &mut lr, m, &mut sched);
        }
    }

    if opts.verify == VerifyMode::Off {
        return Ok(Attempt {
            lowered: lr,
            schedule: sched,
            tolerated: None,
        });
    }
    obs.stage_enter(Stage::Verify, scope);
    let t = Instant::now();
    let verdict = verify_schedule(&lr, &true_ddg, m, &sched);
    obs.stage_exit(
        Stage::Verify,
        scope,
        t.elapsed(),
        StageStats {
            regions: 1,
            ops: lr.num_ops(),
            edges: true_ddg.edges().len(),
            ..StageStats::default()
        },
    );
    match opts.verify {
        VerifyMode::Off => unreachable!("handled above"),
        VerifyMode::Warn => Ok(Attempt {
            lowered: lr,
            schedule: sched,
            tolerated: verdict.err(),
        }),
        VerifyMode::Strict => {
            verdict?;
            Ok(Attempt {
                lowered: lr,
                schedule: sched,
                tolerated: None,
            })
        }
    }
}

/// Schedules carved fallback pieces: no fault injection, and verification
/// is strict whenever verification is on at all (a recovered schedule must
/// be *proven* good, even under `warn`). Stage hooks carry the *original*
/// region's index, so profiles attribute fallback work to the region that
/// degraded.
#[allow(clippy::too_many_arguments)]
fn schedule_pieces(
    f: &Function,
    idx: usize,
    pieces: &[Region],
    live: &Liveness,
    origin_map: Option<&[BlockId]>,
    m: &MachineModel,
    opts: &RobustOptions,
    obs: &dyn PassObserver,
) -> Result<Vec<Attempt>, SchedFailure> {
    let strict = RobustOptions {
        sched: opts.sched,
        verify: match opts.verify {
            VerifyMode::Off => VerifyMode::Off,
            _ => VerifyMode::Strict,
        },
        fallback: opts.fallback,
        budgets: opts.budgets,
        fault: None,
        panic_on_region: None,
    };
    pieces
        .iter()
        .map(|p| contain(|| attempt(f, idx, p, live, origin_map, m, &strict, None, obs)))
        .collect()
}

/// Carves a failed region's blocks into single-entry linear chains: each
/// chain starts at the first unassigned block (in region preorder) and
/// follows the heaviest not-yet-assigned child of the original region
/// tree, mirroring SLR formation restricted to the region's own edges.
pub fn carve_slr(f: &Function, region: &Region) -> Vec<Region> {
    let mut assigned: HashSet<BlockId> = HashSet::new();
    let mut out = Vec::new();
    for &root in region.blocks() {
        if assigned.contains(&root) {
            continue;
        }
        let mut chain = Region::new(RegionKind::Slr, root);
        assigned.insert(root);
        let mut cur = root;
        loop {
            let next = region
                .children(cur)
                .into_iter()
                .filter(|c| !assigned.contains(c))
                .max_by(|a, b| {
                    f.block(*a)
                        .weight
                        .partial_cmp(&f.block(*b).weight)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.index().cmp(&a.index())) // earlier block wins ties
                });
            let Some(nb) = next else { break };
            let (parent, succ_index) = region
                .parent_edge(nb)
                .expect("non-root region member has a parent edge");
            debug_assert_eq!(parent, cur);
            chain.absorb(nb, cur, succ_index);
            assigned.insert(nb);
            cur = nb;
        }
        out.push(chain);
    }
    out
}

/// Carves a failed region into one basic-block region per member.
pub fn carve_bb(region: &Region) -> Vec<Region> {
    region
        .blocks()
        .iter()
        .map(|&b| Region::new(RegionKind::BasicBlock, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form_treegions;
    use crate::testutil::figure1_cfg;
    use treegion_ir::{FunctionBuilder, Op};

    fn model() -> MachineModel {
        MachineModel::model_4u()
    }

    /// Drives the chain through the canonical [`crate::Pipeline`] entry.
    fn run(
        f: &Function,
        set: &RegionSet,
        m: &MachineModel,
        opts: &RobustOptions,
    ) -> Result<RobustResult, PipelineError> {
        crate::Pipeline::with_options(m, opts.clone()).run_set(
            f,
            set,
            None,
            &crate::observe::NullObserver,
        )
    }

    #[test]
    fn clean_run_matches_plain_scheduling() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let r = run(&f, &set, &model(), &RobustOptions::default())
            .expect("clean function must schedule");
        assert!(r.is_clean());
        assert_eq!(r.outcomes.len(), set.len());
        assert!(r.region_set().is_partition_of(&f));
        // Times agree with the infallible path.
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let plain: f64 = set
            .regions()
            .iter()
            .map(|reg| {
                let lr = crate::lower_region(&f, reg, &live, None);
                crate::schedule_region(&lr, &model(), &ScheduleOptions::default())
                    .estimated_time(&lr)
            })
            .sum();
        assert_eq!(r.estimated_time(), plain);
    }

    #[test]
    fn carve_slr_partitions_and_stays_linear() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        for region in set.regions() {
            let pieces = carve_slr(&f, region);
            let mut blocks: Vec<BlockId> =
                pieces.iter().flat_map(|p| p.blocks().to_vec()).collect();
            blocks.sort();
            let mut orig = region.blocks().to_vec();
            orig.sort();
            assert_eq!(blocks, orig, "carve must re-partition the region");
            for p in &pieces {
                assert!(p.is_linear());
                assert!(p.is_tree());
            }
        }
    }

    #[test]
    fn carve_bb_yields_singletons() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let region = set.region(set.region_of(f.entry()).unwrap());
        let pieces = carve_bb(region);
        assert_eq!(pieces.len(), region.num_blocks());
        assert!(pieces.iter().all(|p| p.num_blocks() == 1));
    }

    #[test]
    fn every_detectable_fault_is_recovered_by_fallback() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let m = model();
        for class in FaultClass::ALL {
            if class.expected_kind().is_none() {
                continue; // statically invisible; covered elsewhere
            }
            let opts = RobustOptions {
                fault: Some(FaultPlan::single(21, class)),
                ..Default::default()
            };
            let r = run(&f, &set, &m, &opts)
                .unwrap_or_else(|e| panic!("{class}: chain must recover: {e}"));
            // The injected fault may miss regions without a viable site,
            // but the big entry treegion always offers one for every
            // detectable class except those needing specific shapes; at
            // least one region must have degraded and recovered.
            if r.events.is_empty() {
                // The fault found no site anywhere (possible for classes
                // needing e.g. eliminations); the run must then be clean.
                assert!(r.is_clean(), "{class}: events empty but not clean");
                continue;
            }
            for ev in &r.events {
                assert!(ev.recovered, "{class}: event not recovered: {ev}");
                assert_eq!(ev.cause.label(), "verification", "{class}");
            }
            assert!(r.region_set().is_partition_of(&f), "{class}");
            // Every recovered outcome re-verifies against a fresh DDG.
            let cfg = Cfg::new(&f);
            let live = Liveness::new(&f, &cfg);
            for o in &r.outcomes {
                let lr = crate::lower_region(&f, &o.region, &live, None);
                let ddg = Ddg::build(&lr, &m);
                let s = crate::schedule_region(&lr, &m, &ScheduleOptions::default());
                verify_schedule(&lr, &ddg, &m, &s).unwrap();
            }
        }
    }

    #[test]
    fn warn_mode_keeps_rejected_schedules_and_records_events() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let opts = RobustOptions {
            verify: VerifyMode::Warn,
            fault: Some(FaultPlan::single(5, FaultClass::ShiftExitCycle)),
            ..Default::default()
        };
        let r = run(&f, &set, &model(), &opts).unwrap();
        // Same number of outcomes as regions (nothing was re-carved) …
        assert_eq!(r.outcomes.len(), set.len());
        assert!(r.outcomes.iter().all(|o| o.level == FallbackLevel::Primary));
        // … but the rejections were recorded as unrecovered events.
        assert!(!r.events.is_empty());
        assert!(r.events.iter().all(|e| !e.recovered));
    }

    #[test]
    fn verify_off_accepts_everything_silently() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let opts = RobustOptions {
            verify: VerifyMode::Off,
            fault: Some(FaultPlan::single(5, FaultClass::ShiftExitCycle)),
            ..Default::default()
        };
        let r = run(&f, &set, &model(), &opts).unwrap();
        assert!(r.events.is_empty());
        assert_eq!(r.outcomes.len(), set.len());
    }

    #[test]
    fn fallback_none_surfaces_pipeline_error_with_attempts() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let opts = RobustOptions {
            fallback: FallbackPolicy::None,
            fault: Some(FaultPlan::single(9, FaultClass::OmitOp)),
            ..Default::default()
        };
        let err = run(&f, &set, &model(), &opts).expect_err("no fallback must be fatal");
        assert_eq!(err.attempts.len(), 1);
        assert_eq!(err.attempts[0].0, FallbackLevel::Primary);
        assert!(err.to_string().contains("failed at every fallback level"));
    }

    #[test]
    fn op_budget_degrades_large_regions() {
        // The figure-1 entry treegion lowers to well over 8 ops; with
        // max_region_ops = 8 it must degrade until every accepted piece
        // fits the budget.
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let opts = RobustOptions {
            budgets: Budgets {
                max_region_ops: Some(8),
                ..Budgets::UNLIMITED
            },
            ..Default::default()
        };
        let r = run(&f, &set, &model(), &opts).unwrap();
        assert!(!r.events.is_empty());
        assert!(r
            .events
            .iter()
            .all(|e| e.recovered && e.cause.label() == "op-budget"));
        assert!(r.region_set().is_partition_of(&f));
        for o in &r.outcomes {
            assert!(
                o.lowered.num_ops() <= 8,
                "accepted piece over budget: {} ops at {:?}",
                o.lowered.num_ops(),
                o.level
            );
        }
    }

    #[test]
    fn injected_panic_is_contained_and_recovered_by_fallback() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let opts = RobustOptions {
            panic_on_region: Some(0),
            ..Default::default()
        };
        let r = run(&f, &set, &model(), &opts)
            .expect("a contained panic must recover through the chain");
        assert!(!r.is_clean());
        // Exactly one region degraded, with a panic cause, and recovered.
        let panics: Vec<_> = r
            .events
            .iter()
            .filter(|e| e.cause.label() == "panic")
            .collect();
        assert_eq!(panics.len(), 1, "{:?}", r.events);
        assert!(panics[0].recovered);
        assert!(panics[0].cause.is_containment());
        assert_eq!(panics[0].region_index, 0);
        assert!(panics[0].cause.to_string().contains("injected panic"));
        // The accepted partition still covers the whole function.
        assert!(r.region_set().is_partition_of(&f));
        // Every other region scheduled cleanly at the primary level.
        assert!(r
            .outcomes
            .iter()
            .filter(|o| o.region_index != 0)
            .all(|o| o.level == FallbackLevel::Primary));
    }

    #[test]
    fn contained_panic_is_identical_at_any_job_count() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let opts = RobustOptions {
            panic_on_region: Some(0),
            ..Default::default()
        };
        let run = || {
            let r = run(&f, &set, &model(), &opts).unwrap();
            (
                r.estimated_time().to_bits(),
                r.outcomes.len(),
                r.events.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
            )
        };
        let serial = {
            treegion_par::set_jobs(1);
            run()
        };
        let parallel = {
            treegion_par::set_jobs(8);
            let r = run();
            treegion_par::set_jobs(1);
            r
        };
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_wall_deadline_trips_deterministically_and_chain_reports_it() {
        // A 0 ms deadline trips on the very first loop-boundary check of
        // every attempt, at every rung — the chain must exhaust and the
        // terminal error must carry deadline failures for every level.
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let opts = RobustOptions {
            budgets: Budgets {
                max_wall_ms: Some(0),
                ..Budgets::UNLIMITED
            },
            ..Default::default()
        };
        let err =
            run(&f, &set, &model(), &opts).expect_err("a zero deadline cannot schedule anything");
        assert_eq!(err.attempts.len(), 3); // primary, slr, bb
        assert!(err.attempts.iter().all(|(_, c)| c.label() == "deadline"));
        assert!(err.attempts.iter().all(|(_, c)| c.is_containment()));
    }

    #[test]
    fn generous_wall_deadline_changes_nothing() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        let clean = run(&f, &set, &model(), &RobustOptions::default())
            .unwrap()
            .estimated_time();
        let opts = RobustOptions {
            budgets: Budgets {
                max_wall_ms: Some(60_000),
                ..Budgets::UNLIMITED
            },
            ..Default::default()
        };
        let r = run(&f, &set, &model(), &opts).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.estimated_time(), clean);
    }

    #[test]
    fn gpr_pressure_recovers_by_spilling() {
        // A balanced 8-leaf reduction tree needs ~log2(n)+1 simultaneously
        // live values (plus one register of issue headroom), so a
        // 3-register file livelocks the parking scheduler; the spill
        // rounds must rewrite the region until it fits — transparently,
        // at the primary level, without touching the degradation ladder.
        let mut b = FunctionBuilder::new("tree");
        let bb0 = b.block();
        let mut layer: Vec<_> = (0..8).map(|_| b.gpr()).collect();
        for &x in &layer {
            b.push(bb0, Op::movi(x, 1));
        }
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                let t = b.gpr();
                b.push(bb0, Op::add(t, pair[0], pair[1]));
                next.push(t);
            }
            layer = next;
        }
        b.ret(bb0, Some(layer[0]));
        let f = b.finish();
        let set = form_treegions(&f);
        let m = model().with_gpr_file(3);
        let r = run(&f, &set, &m, &RobustOptions::default())
            .expect("spill rounds must recover register pressure");
        assert!(r.events.is_empty(), "spilling is not a degradation event");
        assert!(r.outcomes.iter().all(|o| o.level == FallbackLevel::Primary));
        let spills = r
            .outcomes
            .iter()
            .flat_map(|o| o.lowered.lops.iter())
            .filter(|l| l.op.opcode == treegion_ir::Opcode::Spill)
            .count();
        assert!(spills > 0, "the finite file must have forced spills");
        // The accepted schedules re-verify against the finite machine,
        // register-file legality included.
        for o in &r.outcomes {
            let ddg = Ddg::build(&o.lowered, &m);
            verify_schedule(&o.lowered, &ddg, &m, &o.schedule).unwrap();
        }
        // The unbounded machine schedules the same function spill-free.
        let r0 = run(&f, &set, &model(), &RobustOptions::default()).unwrap();
        assert!(r0.is_clean());
        assert!(r0
            .outcomes
            .iter()
            .flat_map(|o| o.lowered.lops.iter())
            .all(|l| l.op.opcode != treegion_ir::Opcode::Spill));
    }

    #[test]
    fn unspillable_pressure_falls_through_to_the_pipeline_error() {
        // Two operands plus a fresh def need three registers at issue; a
        // 2-register file cannot fit `add` no matter how much is spilled,
        // so every rung (primary, slr, bb) fails with reg-pressure.
        let mut b = FunctionBuilder::new("tight");
        let bb0 = b.block();
        let (x, y, z) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::movi(x, 1), Op::movi(y, 2), Op::add(z, x, y)]);
        b.ret(bb0, None);
        let f = b.finish();
        let set = form_treegions(&f);
        let m = model().with_gpr_file(2);
        let err = run(&f, &set, &m, &RobustOptions::default())
            .expect_err("a 2-register file cannot schedule a 2-operand add");
        assert!(err
            .attempts
            .iter()
            .all(|(_, c)| c.label() == "reg-pressure"));
    }

    #[test]
    fn step_budget_exhausts_the_whole_chain_on_serial_code() {
        // A long serial chain cannot finish in 1 cycle; budget of 1 forces
        // step-budget failures all the way down to single blocks — which
        // still exceed it, so the pipeline errors with all attempts listed.
        let mut b = FunctionBuilder::new("serial");
        let bb0 = b.block();
        let a = b.gpr();
        let mut prev = a;
        for _ in 0..6 {
            let x = b.gpr();
            b.push(bb0, Op::add(x, prev, prev));
            prev = x;
        }
        b.ret(bb0, None);
        let f = b.finish();
        let set = form_treegions(&f);
        let opts = RobustOptions {
            budgets: Budgets {
                max_schedule_cycles: Some(1),
                ..Budgets::UNLIMITED
            },
            ..Default::default()
        };
        let err =
            run(&f, &set, &model(), &opts).expect_err("1-cycle budget cannot fit a serial chain");
        assert!(err.attempts.iter().all(|(_, c)| c.label() == "step-budget"));
        assert_eq!(err.attempts.len(), 3); // primary, slr, bb
    }
}
