//! The seed list scheduler, retained verbatim as a differential oracle.
//!
//! This is the naive implementation [`crate::try_schedule_with_ddg`]
//! replaced: one flat `ready` vec re-filtered into `avail` and re-sorted
//! with a three-`f64` comparator on every issue pass, drained with an
//! O(ready × finished) `retain`, twins looked up through a
//! `HashMap<OpOrigin, Vec<usize>>`, and alias resolution walking the
//! public `reg_alias` chain per use. It is deliberately simple and
//! obviously faithful to the paper's Figure 3 loop; the optimized
//! scheduler must reproduce its output byte for byte, which the
//! `differential_sched` suite asserts over the fuzz corpus for every
//! heuristic × tie-break combination.
//!
//! One structural generalization since the seed: the two hard-coded
//! branch/mem limit checks became a brute-force per-class counter array
//! driven by [`MachineModel::class_units`] — the naive mirror of the
//! fast scheduler's hazard automaton, and the oracle for asymmetric
//! machines (per-class unit counts) the seed's counters could not
//! express. For branch/mem-only machines the counters check exactly what
//! the seed checked.
//!
//! Debug builds only — release builds compile just the fast scheduler.

use crate::ddg::Ddg;
use crate::lower::{LOpKind, LoweredRegion};
use crate::sched::{Schedule, ScheduleOptions, TieBreak};
use std::collections::HashMap;
use treegion_machine::{MachineModel, OpClass};

/// Schedules `lr` with the retained seed algorithm. Output must be
/// identical to [`crate::schedule_with_ddg`] on every input (the fast
/// scheduler is a pure data-layout rewrite).
///
/// # Panics
///
/// Panics if the scheduler cannot make progress (a dependence-graph
/// cycle, which a correct DDG never contains).
pub fn schedule_with_ddg_reference(
    lr: &LoweredRegion,
    ddg: &Ddg,
    m: &MachineModel,
    opts: &ScheduleOptions,
) -> Schedule {
    let n = lr.lops.len();
    let priorities = opts.heuristic.priorities(lr, ddg, m);

    // Remaining unscheduled predecessor count and earliest start cycle.
    let mut pending_preds: Vec<usize> = (0..n).map(|i| ddg.preds(i).len()).collect();
    let mut earliest: Vec<u32> = vec![0; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| pending_preds[i] == 0).collect();

    let mut sched = Schedule {
        cycles: Vec::new(),
        cycle_of: vec![None; n],
        exit_cycles: vec![0; lr.exits.len()],
        eliminated: Vec::new(),
        reg_alias: HashMap::new(),
    };
    // Twin index for dominator parallelism: origin -> scheduled lops.
    let mut twins: HashMap<crate::lower::OpOrigin, Vec<usize>> = HashMap::new();

    let mut remaining = n;
    let mut cycle: u32 = 0;
    // Per-node issue counts for the round-robin tie break.
    let mut issued_per_node = vec![0usize; lr.nodes.len()];
    while remaining > 0 {
        let mut slots_used = 0usize;
        // Brute-force per-class counters: the naive mirror of the fast
        // scheduler's hazard automaton. One counter per resource class,
        // checked against the machine's unit vector on every candidate.
        let mut class_used = [0usize; OpClass::COUNT];
        let mut issued_this_cycle: Vec<usize> = Vec::new();

        // Re-scan after every pass: issuing an op can make a 0-latency
        // dependent ready *in the same cycle*.
        loop {
            let mut avail: Vec<usize> = ready
                .iter()
                .copied()
                .filter(|&i| earliest[i] <= cycle)
                .collect();
            // Ready branches issue ahead of everything else; the
            // heuristic still orders branches among themselves and all
            // other ops.
            avail.sort_by(|&a, &b| {
                let (ba, bb) = (
                    lr.lops[a].op.opcode.is_branch(),
                    lr.lops[b].op.opcode.is_branch(),
                );
                let base = bb.cmp(&ba).then(priorities[b].cmp(&priorities[a]));
                let base = match opts.tie_break {
                    TieBreak::SourceOrder => base,
                    TieBreak::RoundRobin => base.then(
                        issued_per_node[lr.lops[a].home].cmp(&issued_per_node[lr.lops[b].home]),
                    ),
                };
                base.then(a.cmp(&b)) // final tie: source order
            });
            let mut progressed = false;
            let mut finished: Vec<usize> = Vec::new();

            for &i in &avail {
                if slots_used >= m.issue_width() {
                    break;
                }
                let class = OpClass::of(lr.lops[i].op.opcode);
                if let Some(limit) = m.unit_limit(class) {
                    if class_used[class.index()] >= limit {
                        continue;
                    }
                }
                // Dominator parallelism: drop this op if a scheduled twin
                // computes the identical value.
                if opts.dominator_parallelism {
                    if let Some(t) = find_twin(lr, &sched, &twins, i) {
                        eliminate(lr, &mut sched, i, t);
                        finished.push(i);
                        remaining -= 1;
                        progressed = true;
                        let tc = sched.cycle_of[i].unwrap();
                        release_succs(ddg, i, tc, &mut pending_preds, &mut earliest, &mut ready);
                        continue;
                    }
                }
                // Issue.
                sched.cycle_of[i] = Some(cycle);
                issued_this_cycle.push(i);
                finished.push(i);
                slots_used += 1;
                progressed = true;
                class_used[class.index()] += 1;
                issued_per_node[lr.lops[i].home] += 1;
                if let LOpKind::ExitBranch(e) = lr.lops[i].kind {
                    sched.exit_cycles[e] = cycle;
                }
                if opts.dominator_parallelism {
                    twins.entry(lr.lops[i].origin).or_default().push(i);
                }
                remaining -= 1;
                release_succs(ddg, i, cycle, &mut pending_preds, &mut earliest, &mut ready);
            }

            ready.retain(|i| !finished.contains(i));
            if !progressed || slots_used >= m.issue_width() {
                break;
            }
        }

        sched.cycles.push(issued_this_cycle);
        cycle += 1;
        // Safety valve: a correct DDG can never deadlock.
        assert!(
            (cycle as usize) <= 4 * n + 64,
            "reference scheduler failed to make progress (dependence cycle?)"
        );
    }
    // Trim trailing empty cycles.
    while matches!(sched.cycles.last(), Some(c) if c.is_empty()) {
        sched.cycles.pop();
    }
    sched
}

fn release_succs(
    ddg: &Ddg,
    i: usize,
    cycle: u32,
    pending_preds: &mut [usize],
    earliest: &mut [u32],
    ready: &mut Vec<usize>,
) {
    for e in ddg.succs(i) {
        let t = e.to;
        earliest[t] = earliest[t].max(cycle + e.latency);
        pending_preds[t] -= 1;
        if pending_preds[t] == 0 {
            ready.push(t);
        }
    }
}

/// The seed's twin finder: linear scan of the origin's scheduled lops,
/// resolving every use through the public alias map's chain walk.
fn find_twin(
    lr: &LoweredRegion,
    sched: &Schedule,
    twins: &HashMap<crate::lower::OpOrigin, Vec<usize>>,
    i: usize,
) -> Option<usize> {
    let l = &lr.lops[i];
    if !l.op.opcode.is_speculable()
        || matches!(
            l.kind,
            LOpKind::ExitBranch(_) | LOpKind::InternalBranch | LOpKind::PrepareBranch
        )
        || l.guard.is_some()
    {
        return None;
    }
    let candidates = twins.get(&l.origin)?;
    'outer: for &t in candidates {
        let tl = &lr.lops[t];
        if tl.op.opcode != l.op.opcode
            || tl.op.imm != l.op.imm
            || tl.op.target != l.op.target
            || tl.guard != l.guard
            || tl.op.uses.len() != l.op.uses.len()
        {
            continue;
        }
        for (a, b) in l.op.uses.iter().zip(tl.op.uses.iter()) {
            if sched.resolve(*a) != sched.resolve(*b) {
                continue 'outer;
            }
        }
        return Some(t);
    }
    None
}

fn eliminate(lr: &LoweredRegion, sched: &mut Schedule, i: usize, t: usize) {
    for (a, b) in lr.lops[i].op.defs.iter().zip(lr.lops[t].op.defs.iter()) {
        sched.reg_alias.insert(*a, *b);
    }
    sched.cycle_of[i] = sched.cycle_of[t];
    sched.eliminated.push((i, t));
}
