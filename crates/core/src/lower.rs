//! Region lowering: from IR blocks + structured terminators to the flat
//! list of PlayDoh-style ops the treegion scheduler consumes.
//!
//! Lowering does three things at once (one pass over the region tree):
//!
//! 1. **Materializes control flow** as ops, as in the paper's Figures 4/5:
//!    `CMPP` computes *path predicates* (each block's predicate is its
//!    branch condition ANDed with its parent's predicate), `PBR` loads
//!    branch-target registers, and `BRCT`/`BRCF`/`BRU`/`RET` transfer
//!    control. Internal conditional branches are kept as predicated,
//!    slot-occupying ops; internal fallthrough edges need no op.
//! 2. **Compile-time register renaming** (Section 3): every GPR definition
//!    gets a fresh name, which removes all WAR/WAW hazards and makes
//!    speculation safe — a speculated op can never clobber a value that is
//!    live-out on another path.
//! 3. **Exit copies**: for each exit, the registers that are live into the
//!    exit target and were renamed on that path get `COPY` fix-ups. Per
//!    the paper these are *not* scheduled and excluded from speedup; they
//!    are recorded on the exit for the simulator and the metrics.

use crate::error::{Budgets, SchedFailure};
use crate::Region;
use std::collections::HashMap;
use treegion_analysis::Liveness;
use treegion_ir::{BlockId, Cond, Function, Op, Opcode, Reg, RegClass, Terminator};

/// What role a lowered op plays.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LOpKind {
    /// A source-level op from a block body.
    Normal,
    /// A lowering helper (immediate materialization).
    Helper,
    /// A `CMPP` computing path predicates.
    PathPred,
    /// A `PBR` branch-target load.
    PrepareBranch,
    /// A predicated branch to a block inside the region (occupies an issue
    /// slot but transfers no control in the linearized schedule).
    InternalBranch,
    /// A branch (or `RET`) that leaves the region; the payload indexes
    /// into [`LoweredRegion::exits`].
    ExitBranch(usize),
}

/// Identifies the source position an op was lowered from, for dominator
/// parallelism twin detection: ops lowered from the same position of the
/// same *original* block (pre tail-duplication) are twins.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct OpOrigin {
    /// The original block (identity when no tail duplication happened).
    pub block: BlockId,
    /// Position within the block's lowering (source ops first, then a
    /// fixed enumeration of terminator-derived ops).
    pub slot: usize,
}

/// One op in a lowered region. Registers are already renamed.
#[derive(Clone, Debug)]
pub struct LOp {
    /// The op itself (lowered opcodes allowed, registers renamed).
    pub op: Op,
    /// Index of the region-tree node this op belongs to.
    pub home: usize,
    /// Role of the op.
    pub kind: LOpKind,
    /// Path predicate guarding this op, for ops that must not execute on
    /// the wrong path (side effects, predicated branches). `None` means
    /// the op executes unconditionally (root ops and speculable ops).
    pub guard: Option<Reg>,
    /// Source position for twin detection.
    pub origin: OpOrigin,
}

/// A node of the region tree.
#[derive(Clone, Debug)]
pub struct RNode {
    /// The block this node wraps.
    pub block: BlockId,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Path predicate register on entry to this node (`None` at the root:
    /// always true).
    pub pred: Option<Reg>,
    /// Depth in the tree (root = 0).
    pub depth: usize,
    /// Profile weight of the block.
    pub weight: f64,
    /// Number of region exits at or below this node (the paper's *exit
    /// count* of ops homed here).
    pub exits_below: usize,
}

/// An exit of the lowered region.
#[derive(Clone, Debug)]
pub struct RegionExit {
    /// Target block (`None` for function return).
    pub target: Option<BlockId>,
    /// Profile count of the exit.
    pub count: f64,
    /// Node the exit leaves from.
    pub from_node: usize,
    /// Successor index of the exit edge in its block's terminator
    /// (`usize::MAX` for `ret` exits). Together with the home block this
    /// identifies the CFG edge, letting a schedule be re-costed under a
    /// *different* profile (the profile-variation experiment).
    pub succ_index: usize,
    /// Index of the [`LOpKind::ExitBranch`] op that transfers control.
    pub branch_lop: usize,
    /// Renaming fix-ups `(architectural, renamed)` applied when the exit
    /// is taken. Not scheduled; excluded from speedup per Section 3.
    pub copies: Vec<(Reg, Reg)>,
}

/// A region lowered to a flat op list plus its tree and exits.
#[derive(Clone, Debug)]
pub struct LoweredRegion {
    /// Tree nodes in preorder (index 0 is the root).
    pub nodes: Vec<RNode>,
    /// Lowered ops in preorder, per-node source order.
    pub lops: Vec<LOp>,
    /// Region exits.
    pub exits: Vec<RegionExit>,
}

impl LoweredRegion {
    /// Total number of lowered ops — the paper's "Ops per region" metric
    /// counts these (source ops plus materialized compare/branch ops).
    pub fn num_ops(&self) -> usize {
        self.lops.len()
    }

    /// Total dynamic copy-op count: Σ exit count × copies at that exit.
    pub fn dynamic_copies(&self) -> f64 {
        self.exits
            .iter()
            .map(|e| e.count * e.copies.len() as f64)
            .sum()
    }

    /// `true` if node `a` is `b` or an ancestor of `b`.
    pub fn is_ancestor_or_self(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.nodes[cur].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// The node index wrapping `block`, if present.
    pub fn node_of(&self, block: BlockId) -> Option<usize> {
        self.nodes.iter().position(|n| n.block == block)
    }
}

/// Context shared across the lowering of one region.
struct Lowerer<'a> {
    f: &'a Function,
    region: &'a Region,
    live: &'a Liveness,
    origin_map: Option<&'a [BlockId]>,
    next_reg: [u32; 3],
    zero: Option<Reg>,
    lops: Vec<LOp>,
    nodes: Vec<RNode>,
    exits: Vec<RegionExit>,
    /// Path predicate decided by the parent for each internal edge.
    pending_pred: HashMap<(BlockId, usize), Option<Reg>>,
    /// Rename map at the end of each node, for children and exit copies.
    end_maps: Vec<HashMap<Reg, Reg>>,
}

/// Lowers `region` (over `f`, with `live` computed on `f`).
///
/// `origin_map`, when present (after tail duplication), maps each block to
/// the original block it was copied from; it seeds twin detection for
/// dominator parallelism.
pub fn lower_region(
    f: &Function,
    region: &Region,
    live: &Liveness,
    origin_map: Option<&[BlockId]>,
) -> LoweredRegion {
    let mut lw = Lowerer {
        f,
        region,
        live,
        origin_map,
        next_reg: [
            f.num_regs(RegClass::Gpr),
            f.num_regs(RegClass::Pred),
            f.num_regs(RegClass::Btr),
        ],
        zero: None,
        lops: Vec::new(),
        nodes: Vec::new(),
        exits: Vec::new(),
        pending_pred: HashMap::new(),
        end_maps: Vec::new(),
    };

    // Region blocks are in absorption (preorder) order: parents first.
    for &block in region.blocks() {
        lw.lower_node(block);
    }

    // exits_below: count exits per subtree.
    let mut exits_below = vec![0usize; lw.nodes.len()];
    for e in &lw.exits {
        let mut cur = Some(e.from_node);
        while let Some(n) = cur {
            exits_below[n] += 1;
            cur = lw.nodes[n].parent;
        }
    }
    for (n, c) in exits_below.into_iter().enumerate() {
        lw.nodes[n].exits_below = c;
    }

    LoweredRegion {
        nodes: lw.nodes,
        lops: lw.lops,
        exits: lw.exits,
    }
}

/// Fallible [`lower_region`]: enforces the op budget both before lowering
/// (on the source op count, so a pathological region is rejected without
/// paying for its lowering) and after (on the materialized op count, which
/// includes compare/branch helpers).
///
/// # Errors
///
/// Returns [`SchedFailure::OpBudgetExceeded`] if either count is over
/// `budgets.max_region_ops`.
pub fn try_lower_region(
    f: &Function,
    region: &Region,
    live: &Liveness,
    origin_map: Option<&[BlockId]>,
    budgets: &Budgets,
) -> Result<LoweredRegion, SchedFailure> {
    if let Some(cap) = budgets.max_region_ops {
        let src = region.num_source_ops(f);
        if src > cap {
            return Err(SchedFailure::OpBudgetExceeded {
                ops: src,
                budget: cap,
            });
        }
    }
    let lr = lower_region(f, region, live, origin_map);
    if let Some(cap) = budgets.max_region_ops {
        if lr.num_ops() > cap {
            return Err(SchedFailure::OpBudgetExceeded {
                ops: lr.num_ops(),
                budget: cap,
            });
        }
    }
    Ok(lr)
}

impl<'a> Lowerer<'a> {
    fn fresh(&mut self, class: RegClass) -> Reg {
        let slot = &mut self.next_reg[class.index()];
        let r = Reg::new(class, *slot);
        *slot += 1;
        r
    }

    fn origin_block(&self, block: BlockId) -> BlockId {
        match self.origin_map {
            Some(m) => m[block.index()],
            None => block,
        }
    }

    /// The region-wide zero register, materializing it on first use.
    fn zero_reg(&mut self, node: usize) -> Reg {
        if let Some(z) = self.zero {
            return z;
        }
        let z = self.fresh(RegClass::Gpr);
        // Helper homed at the root; it is pure and freely speculable.
        self.lops.push(LOp {
            op: Op::movi(z, 0),
            home: 0,
            kind: LOpKind::Helper,
            guard: None,
            origin: OpOrigin {
                block: self.origin_block(self.nodes[0].block),
                slot: usize::MAX,
            },
        });
        let _ = node;
        self.zero = Some(z);
        z
    }

    fn lower_node(&mut self, block: BlockId) {
        let parent_edge = self.region.parent_edge(block);
        let (parent_node, pred, mut map) = match parent_edge {
            None => (None, None, HashMap::new()),
            Some((pb, si)) => {
                let pn = self
                    .nodes
                    .iter()
                    .position(|n| n.block == pb)
                    .expect("parent lowered before child");
                let pred = self
                    .pending_pred
                    .remove(&(pb, si))
                    .expect("parent assigned child pred");
                (Some(pn), pred, self.end_maps[pn].clone())
            }
        };
        let depth = parent_node.map_or(0, |p| self.nodes[p].depth + 1);
        let node = self.nodes.len();
        self.nodes.push(RNode {
            block,
            parent: parent_node,
            pred,
            depth,
            weight: self.f.block(block).weight,
            exits_below: 0,
        });

        let origin = self.origin_block(block);
        // Source ops: rename uses through `map`, mint fresh defs.
        for (i, op) in self.f.block(block).ops.iter().enumerate() {
            let mut op = op.clone();
            for u in op.uses.iter_mut() {
                if let Some(r) = map.get(u) {
                    *u = *r;
                }
            }
            for d in op.defs.iter_mut() {
                let fresh = self.fresh(d.class());
                map.insert(*d, fresh);
                *d = fresh;
            }
            let guarded = op.opcode.has_side_effects();
            self.lops.push(LOp {
                op,
                home: node,
                kind: LOpKind::Normal,
                guard: if guarded { pred } else { None },
                origin: OpOrigin {
                    block: origin,
                    slot: i,
                },
            });
        }

        self.end_maps.push(map.clone());
        let base_slot = self.f.block(block).ops.len();
        self.lower_terminator(block, node, pred, &map, origin, base_slot);
        // end_maps entry was pushed before terminator lowering: terminator
        // ops define only fresh predicate/BTR registers, never renamed
        // GPRs, so the map is already final.
    }

    fn lower_terminator(
        &mut self,
        block: BlockId,
        node: usize,
        pred: Option<Reg>,
        map: &HashMap<Reg, Reg>,
        origin: BlockId,
        base_slot: usize,
    ) {
        let term = self.f.block(block).term.clone();
        let rename = |r: Reg| map.get(&r).copied().unwrap_or(r);
        match term {
            Terminator::Jump(e) => {
                // slots: 0 = pbr, 1 = branch
                self.lower_edge(block, node, 0, e, pred, map, origin, base_slot);
            }
            Terminator::Branch { cond, then_, else_ } => {
                let cond = rename(cond);
                let z = self.zero_reg(node);
                let p_then = self.fresh(RegClass::Pred);
                let p_else = self.fresh(RegClass::Pred);
                // slot 0: the path-predicate CMPP (two-output, guarded).
                self.lops.push(LOp {
                    op: Op::cmpp(Cond::Ne, p_then, Some(p_else), cond, z, pred),
                    home: node,
                    kind: LOpKind::PathPred,
                    guard: None,
                    origin: OpOrigin {
                        block: origin,
                        slot: base_slot,
                    },
                });
                // slots 1..=2: then edge; slots 3..=4: else edge.
                self.lower_cond_edge(
                    block,
                    node,
                    0,
                    then_,
                    p_then,
                    map,
                    origin,
                    base_slot + 1,
                    true,
                );
                self.lower_cond_edge(
                    block,
                    node,
                    1,
                    else_,
                    p_else,
                    map,
                    origin,
                    base_slot + 3,
                    false,
                );
            }
            Terminator::Switch { on, cases, default } => {
                let on = rename(on);
                let mut slot = base_slot;
                // Chain predicate for the default path.
                let mut chain = pred;
                for (ci, case) in cases.iter().enumerate() {
                    // Case predicate: (on == value) AND path pred, using an
                    // immediate-operand CMPP. Case values are distinct, so
                    // the case predicates are mutually exclusive without
                    // chaining.
                    let p_case = self.fresh(RegClass::Pred);
                    self.lops.push(LOp {
                        op: Op::cmpp_imm(Cond::Eq, p_case, None, on, case.value, pred),
                        home: node,
                        kind: LOpKind::PathPred,
                        guard: None,
                        origin: OpOrigin {
                            block: origin,
                            slot,
                        },
                    });
                    slot += 1;
                    // Default chain: q_i = q_{i-1} AND (on != value).
                    let q = self.fresh(RegClass::Pred);
                    self.lops.push(LOp {
                        op: Op::cmpp_imm(Cond::Ne, q, None, on, case.value, chain),
                        home: node,
                        kind: LOpKind::PathPred,
                        guard: None,
                        origin: OpOrigin {
                            block: origin,
                            slot,
                        },
                    });
                    slot += 1;
                    chain = Some(q);
                    self.lower_cond_edge(
                        block, node, ci, case.edge, p_case, map, origin, slot, true,
                    );
                    slot += 2;
                }
                // Default edge, guarded by the final chain predicate (or
                // unguarded if there were no cases at all and no path pred).
                match chain {
                    Some(q) => {
                        self.lower_cond_edge(
                            block,
                            node,
                            cases.len(),
                            default,
                            q,
                            map,
                            origin,
                            slot,
                            false,
                        );
                    }
                    None => {
                        self.lower_edge(block, node, cases.len(), default, None, map, origin, slot);
                    }
                }
            }
            Terminator::Ret { value } => {
                let exit_index = self.exits.len();
                let lop_index = self.lops.len();
                self.lops.push(LOp {
                    op: Op::ret(value.map(rename)),
                    home: node,
                    kind: LOpKind::ExitBranch(exit_index),
                    guard: pred,
                    origin: OpOrigin {
                        block: origin,
                        slot: base_slot,
                    },
                });
                self.exits.push(RegionExit {
                    target: None,
                    count: self.f.block(block).weight,
                    from_node: node,
                    succ_index: usize::MAX,
                    branch_lop: lop_index,
                    copies: Vec::new(), // returns restore nothing
                });
            }
        }
    }

    /// Lowers an edge guarded by `guard_pred` (a freshly computed path
    /// predicate). Internal edges assign the child's path predicate;
    /// internal *taken* edges additionally get a predicated branch op
    /// (`emit_internal_branch`), matching the paper's example schedules.
    /// Exit edges get `PBR` + `BRCT`.
    #[allow(clippy::too_many_arguments)]
    fn lower_cond_edge(
        &mut self,
        block: BlockId,
        node: usize,
        succ_index: usize,
        edge: treegion_ir::Edge,
        guard_pred: Reg,
        map: &HashMap<Reg, Reg>,
        origin: BlockId,
        slot: usize,
        emit_internal_branch: bool,
    ) {
        if self.region.is_internal_edge(block, succ_index) {
            self.pending_pred
                .insert((block, succ_index), Some(guard_pred));
            if emit_internal_branch {
                let b = self.fresh(RegClass::Btr);
                self.lops.push(LOp {
                    op: Op::pbr(b, edge.target),
                    home: node,
                    kind: LOpKind::PrepareBranch,
                    guard: None,
                    origin: OpOrigin {
                        block: origin,
                        slot,
                    },
                });
                self.lops.push(LOp {
                    op: Op::brct(b, guard_pred),
                    home: node,
                    kind: LOpKind::InternalBranch,
                    guard: Some(guard_pred),
                    origin: OpOrigin {
                        block: origin,
                        slot: slot + 1,
                    },
                });
            }
        } else {
            self.emit_exit(
                block,
                node,
                succ_index,
                edge,
                Some(guard_pred),
                map,
                origin,
                slot,
            );
        }
    }

    /// Lowers an edge whose predicate is just the node's path predicate
    /// (unconditional jumps and case-less switch defaults).
    #[allow(clippy::too_many_arguments)]
    fn lower_edge(
        &mut self,
        block: BlockId,
        node: usize,
        succ_index: usize,
        edge: treegion_ir::Edge,
        pred: Option<Reg>,
        map: &HashMap<Reg, Reg>,
        origin: BlockId,
        slot: usize,
    ) {
        let pred = pred.or(self.nodes[node].pred);
        if self.region.is_internal_edge(block, succ_index) {
            // Fallthrough: the child inherits the path predicate; no op.
            self.pending_pred.insert((block, succ_index), pred);
        } else {
            self.emit_exit(block, node, succ_index, edge, pred, map, origin, slot);
        }
    }

    /// Emits `PBR` + branch for an exit edge and records the exit with its
    /// renaming copies.
    #[allow(clippy::too_many_arguments)]
    fn emit_exit(
        &mut self,
        _block: BlockId,
        node: usize,
        succ_index: usize,
        edge: treegion_ir::Edge,
        pred: Option<Reg>,
        map: &HashMap<Reg, Reg>,
        origin: BlockId,
        slot: usize,
    ) {
        let b = self.fresh(RegClass::Btr);
        self.lops.push(LOp {
            op: Op::pbr(b, edge.target),
            home: node,
            kind: LOpKind::PrepareBranch,
            guard: None,
            origin: OpOrigin {
                block: origin,
                slot,
            },
        });
        let exit_index = self.exits.len();
        let lop_index = self.lops.len();
        let br = match pred {
            Some(p) => Op::brct(b, p),
            None => Op::bru(b),
        };
        self.lops.push(LOp {
            op: br,
            home: node,
            kind: LOpKind::ExitBranch(exit_index),
            guard: pred,
            origin: OpOrigin {
                block: origin,
                slot: slot + 1,
            },
        });
        // Copies: architectural registers live into the target that were
        // renamed on this path.
        let mut copies: Vec<(Reg, Reg)> = self
            .live
            .live_in(edge.target)
            .iter()
            .filter_map(|arch| map.get(arch).map(|renamed| (*arch, *renamed)))
            .collect();
        copies.sort();
        self.exits.push(RegionExit {
            target: Some(edge.target),
            count: edge.count,
            from_node: node,
            succ_index,
            branch_lop: lop_index,
            copies,
        });
    }
}

/// Spill-everywhere rewrite for register-pressure recovery.
///
/// Picks up to `max_victims` GPR live ranges by *longest static span*
/// (lop-index distance from definition to last use, ties broken toward
/// the smaller register index) and rewrites the region so each victim is
/// stored to a private spill slot right after its definition (at the
/// region front for live-ins) and re-materialized into a fresh register
/// immediately before every use. The victim's live range collapses to
/// def→spill and each reload's range is reload→use, trading register
/// pressure for memory-unit traffic; keeping the rewrite this local
/// leaves the list scheduler full freedom over reload placement.
///
/// Exit-copy sources are spillable too: the copy is rewritten to a fresh
/// register reloaded immediately before the exit's branch lop, and the
/// DDG's `Retire` edge (definition of each copy source → branch) orders
/// the reload ahead of the exit automatically. Reload results and
/// already-spilled values gain nothing from another round, so those are
/// excluded. Returns the rewritten region and the number of victims
/// spilled, or `None` when no eligible victim remains (the caller falls
/// back to the degradation ladder).
pub fn insert_spills(lr: &LoweredRegion, max_victims: usize) -> Option<(LoweredRegion, usize)> {
    use std::collections::HashSet;
    if max_victims == 0 {
        return None;
    }

    // Static live spans over lop (preorder) position.
    let mut def_pos: HashMap<Reg, usize> = HashMap::new();
    let mut last_use: HashMap<Reg, usize> = HashMap::new();
    let mut excluded: HashSet<Reg> = HashSet::new();
    for (i, l) in lr.lops.iter().enumerate() {
        for &d in &l.op.defs {
            def_pos.insert(d, i);
            if l.op.opcode == Opcode::Reload {
                excluded.insert(d);
            }
        }
        for &u in &l.op.uses {
            if u.is_gpr() {
                let e = last_use.entry(u).or_insert(i);
                *e = (*e).max(i);
            }
            if l.op.opcode == Opcode::Spill {
                excluded.insert(u);
            }
        }
    }
    // Exit copies read their source at the exit's branch cycle, so they
    // extend the source's span to the branch lop.
    for exit in &lr.exits {
        for &(_, src) in &exit.copies {
            if src.is_gpr() {
                let e = last_use.entry(src).or_insert(exit.branch_lop);
                *e = (*e).max(exit.branch_lop);
            }
        }
    }

    // Candidates: (span, reg index, reg), longest span first. Live-ins
    // (used but never defined) span from the region front.
    let mut cand: Vec<(usize, u32, Reg)> = Vec::new();
    for (&r, &lu) in &last_use {
        if !r.is_gpr() || excluded.contains(&r) {
            continue;
        }
        let dp = def_pos.get(&r).copied().unwrap_or(0);
        if lu <= dp {
            continue; // nothing between def and last use to shorten
        }
        cand.push((lu - dp, r.index(), r));
    }
    cand.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let victims: Vec<Reg> = cand.iter().take(max_victims).map(|c| c.2).collect();
    if victims.is_empty() {
        return None;
    }
    let victim_set: HashSet<Reg> = victims.iter().copied().collect();

    // Fresh GPR names for reload results and fresh slots per victim.
    let mut next_gpr = 0u32;
    let bump = |r: Reg, next: &mut u32| {
        if r.is_gpr() {
            *next = (*next).max(r.index() + 1);
        }
    };
    for l in &lr.lops {
        for &d in &l.op.defs {
            bump(d, &mut next_gpr);
        }
        for &u in &l.op.uses {
            bump(u, &mut next_gpr);
        }
    }
    for e in &lr.exits {
        for &(arch, renamed) in &e.copies {
            bump(arch, &mut next_gpr);
            bump(renamed, &mut next_gpr);
        }
    }
    let next_slot: i64 = lr
        .lops
        .iter()
        .filter(|l| matches!(l.op.opcode, Opcode::Spill | Opcode::Reload))
        .map(|l| l.op.imm + 1)
        .max()
        .unwrap_or(0);
    let mut slot_of: HashMap<Reg, i64> = HashMap::new();
    for (slot, &v) in (next_slot..).zip(victims.iter()) {
        slot_of.insert(v, slot);
    }

    // Rebuild the lop list. Synthetic origins count down from
    // `usize::MAX - 1` so inserted ops never share a twin bucket.
    let mut lops: Vec<LOp> = Vec::with_capacity(lr.lops.len() + 3 * victims.len());
    let mut remap: Vec<usize> = Vec::with_capacity(lr.lops.len());
    let mut synth = 0usize;
    let synth_origin = |home: usize, synth: &mut usize| {
        let o = OpOrigin {
            block: lr.nodes[home].block,
            slot: usize::MAX - 1 - *synth,
        };
        *synth += 1;
        o
    };
    // Live-in victims spill at the region front.
    for &v in &victims {
        if !def_pos.contains_key(&v) {
            let origin = synth_origin(0, &mut synth);
            lops.push(LOp {
                op: Op::spill(v, slot_of[&v]),
                home: 0,
                kind: LOpKind::Helper,
                guard: None,
                origin,
            });
        }
    }
    let mut copy_rewrite: HashMap<(usize, Reg), Reg> = HashMap::new();
    for l in &lr.lops {
        let mut op = l.op.clone();
        // One reload (and one fresh register) per distinct victim this op
        // uses — or, for an exit branch, that its exit's copies restore —
        // in first-occurrence order.
        let mut seen: Vec<Reg> = Vec::new();
        for &u in &l.op.uses {
            if victim_set.contains(&u) && !seen.contains(&u) {
                seen.push(u);
            }
        }
        let exit_idx = match l.kind {
            LOpKind::ExitBranch(e) => {
                for &(_, src) in &lr.exits[e].copies {
                    if victim_set.contains(&src) && !seen.contains(&src) {
                        seen.push(src);
                    }
                }
                Some(e)
            }
            _ => None,
        };
        for v in seen {
            let r = Reg::gpr(next_gpr);
            next_gpr += 1;
            let origin = synth_origin(l.home, &mut synth);
            lops.push(LOp {
                op: Op::reload(r, slot_of[&v]),
                home: l.home,
                kind: LOpKind::Helper,
                guard: None,
                origin,
            });
            for u in op.uses.iter_mut() {
                if *u == v {
                    *u = r;
                }
            }
            if let Some(e) = exit_idx {
                if lr.exits[e].copies.iter().any(|&(_, src)| src == v) {
                    copy_rewrite.insert((e, v), r);
                }
            }
        }
        remap.push(lops.len());
        lops.push(LOp {
            op,
            home: l.home,
            kind: l.kind,
            guard: l.guard,
            origin: l.origin,
        });
        for &d in &l.op.defs {
            if victim_set.contains(&d) {
                let origin = synth_origin(l.home, &mut synth);
                lops.push(LOp {
                    op: Op::spill(d, slot_of[&d]),
                    home: l.home,
                    kind: LOpKind::Helper,
                    guard: None,
                    origin,
                });
            }
        }
    }
    let exits: Vec<RegionExit> = lr
        .exits
        .iter()
        .enumerate()
        .map(|(ei, e)| RegionExit {
            branch_lop: remap[e.branch_lop],
            copies: e
                .copies
                .iter()
                .map(|&(arch, src)| {
                    let src = copy_rewrite.get(&(ei, src)).copied().unwrap_or(src);
                    (arch, src)
                })
                .collect(),
            ..e.clone()
        })
        .collect();
    Some((
        LoweredRegion {
            nodes: lr.nodes.clone(),
            lops,
            exits,
        },
        victims.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{form_treegions, RegionKind};
    use treegion_analysis::Cfg;
    use treegion_ir::{FunctionBuilder, Op as IrOp, Opcode};

    fn lower_first_region(f: &Function) -> LoweredRegion {
        let set = form_treegions(f);
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let r = set.region(set.region_of(f.entry()).unwrap()).clone();
        assert_eq!(r.kind(), RegionKind::Treegion);
        lower_region(f, &r, &live, None)
    }

    /// bb0: x=ld, y=ld, c=cmp x<y; branch c -> bb1 (x2=x+y, ret) | bb2 (st, ret)
    fn small_tree() -> Function {
        let mut b = FunctionBuilder::new("t");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (a, x, y, c, s) = (b.gpr(), b.gpr(), b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [
                IrOp::load(x, a, 0),
                IrOp::load(y, a, 8),
                IrOp::cmp(treegion_ir::Cond::Lt, c, x, y),
            ],
        );
        b.branch(bb0, c, (bb1, 70.0), (bb2, 30.0));
        b.push(bb1, IrOp::add(s, x, y));
        b.ret(bb1, Some(s));
        b.push(bb2, IrOp::store(a, x, 16));
        b.ret(bb2, None);
        b.finish()
    }

    #[test]
    fn tree_structure_and_preds() {
        let f = small_tree();
        let lr = lower_first_region(&f);
        assert_eq!(lr.nodes.len(), 3);
        assert_eq!(lr.nodes[0].parent, None);
        assert_eq!(lr.nodes[0].pred, None);
        assert_eq!(lr.nodes[1].depth, 1);
        // Both children carry distinct path predicates.
        let p1 = lr.nodes[1].pred.unwrap();
        let p2 = lr.nodes[2].pred.unwrap();
        assert_ne!(p1, p2);
        assert!(p1.is_pred() && p2.is_pred());
    }

    #[test]
    fn defs_are_renamed_to_fresh_registers() {
        let f = small_tree();
        let lr = lower_first_region(&f);
        let mut seen = std::collections::HashSet::new();
        for l in &lr.lops {
            for d in &l.op.defs {
                assert!(seen.insert(*d), "def {d} appears twice after renaming");
            }
        }
    }

    #[test]
    fn exits_cover_both_returns_with_counts() {
        let f = small_tree();
        let lr = lower_first_region(&f);
        assert_eq!(lr.exits.len(), 2);
        let counts: Vec<f64> = lr.exits.iter().map(|e| e.count).collect();
        assert!(counts.contains(&70.0) && counts.contains(&30.0));
        for e in &lr.exits {
            assert!(matches!(lr.lops[e.branch_lop].kind, LOpKind::ExitBranch(_)));
            assert_eq!(e.target, None);
        }
    }

    #[test]
    fn stores_are_guarded_by_their_path_predicate() {
        let f = small_tree();
        let lr = lower_first_region(&f);
        let store = lr
            .lops
            .iter()
            .find(|l| l.op.opcode == Opcode::Store)
            .expect("store lowered");
        assert_eq!(store.guard, lr.nodes[store.home].pred);
        assert!(store.guard.is_some());
    }

    #[test]
    fn exit_count_of_root_is_total_exits() {
        let f = small_tree();
        let lr = lower_first_region(&f);
        assert_eq!(lr.nodes[0].exits_below, lr.exits.len());
        assert_eq!(lr.nodes[1].exits_below, 1);
    }

    #[test]
    fn uses_of_renamed_defs_are_rewritten() {
        let f = small_tree();
        let lr = lower_first_region(&f);
        // The add in bb1 must read the renamed loads, not the originals.
        let add = lr.lops.iter().find(|l| l.op.opcode == Opcode::Add).unwrap();
        let defs: std::collections::HashSet<Reg> =
            lr.lops.iter().flat_map(|l| l.op.defs.clone()).collect();
        for u in &add.op.uses {
            assert!(defs.contains(u), "add reads {u} which is not a region def");
        }
    }

    #[test]
    fn exit_copies_restore_live_values() {
        // bb0 defines x; bb1 (inside region) exits to bb2 (outside, merge)
        // which reads x — the exit must carry a copy for x.
        let mut b = FunctionBuilder::new("copies");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let (x, c) = (b.gpr(), b.gpr());
        b.push_all(ids[0], [IrOp::movi(x, 5), IrOp::movi(c, 1)]);
        b.branch(ids[0], c, (ids[1], 60.0), (ids[2], 40.0));
        b.jump(ids[1], ids[3], 60.0);
        b.jump(ids[2], ids[3], 40.0);
        b.ret(ids[3], Some(x));
        let f = b.finish();
        let lr = lower_first_region(&f);
        assert_eq!(lr.exits.len(), 2);
        for e in &lr.exits {
            assert_eq!(e.target, Some(ids[3]));
            assert!(
                e.copies.iter().any(|(arch, _)| *arch == x),
                "exit must restore {x}"
            );
        }
    }

    #[test]
    fn switch_lowering_emits_parallel_case_preds_and_default_chain() {
        let mut b = FunctionBuilder::new("sw");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let on = b.gpr();
        b.push(ids[0], IrOp::movi(on, 1));
        b.switch(
            ids[0],
            on,
            vec![(1, ids[1], 50.0), (2, ids[2], 30.0)],
            (ids[3], 20.0),
        );
        for &i in &ids[1..] {
            b.ret(i, None);
        }
        let f = b.finish();
        let lr = lower_first_region(&f);
        // 2 cases × (movi + 2 cmpp) + source movi + per-edge branches.
        let cmpps = lr
            .lops
            .iter()
            .filter(|l| matches!(l.op.opcode, Opcode::Cmpp(_)))
            .count();
        assert_eq!(cmpps, 4);
        assert_eq!(lr.exits.len(), 3);
        // All ops are in the single root node tree + children.
        assert_eq!(lr.nodes.len(), 4);
    }

    #[test]
    fn jump_internal_edges_cost_no_ops() {
        let mut b = FunctionBuilder::new("line");
        let ids: Vec<_> = (0..3).map(|_| b.block()).collect();
        b.jump(ids[0], ids[1], 1.0);
        b.jump(ids[1], ids[2], 1.0);
        b.ret(ids[2], None);
        let f = b.finish();
        let lr = lower_first_region(&f);
        // Only the final ret: fallthrough jumps vanish.
        assert_eq!(lr.lops.len(), 1);
        assert_eq!(lr.lops[0].op.opcode, Opcode::Ret);
    }

    #[test]
    fn ret_value_is_renamed() {
        let mut b = FunctionBuilder::new("rv");
        let bb0 = b.block();
        let x = b.gpr();
        b.push(bb0, IrOp::movi(x, 3));
        b.ret(bb0, Some(x));
        let f = b.finish();
        let lr = lower_first_region(&f);
        let ret = lr.lops.iter().find(|l| l.op.opcode == Opcode::Ret).unwrap();
        let movi = lr
            .lops
            .iter()
            .find(|l| l.op.opcode == Opcode::MovI)
            .unwrap();
        assert_eq!(ret.op.uses[0], movi.op.defs[0]);
    }

    /// movi x; movi y; z = y+y; w = z+x — x has the longest static span.
    fn spannable() -> Function {
        let mut b = FunctionBuilder::new("sp");
        let bb0 = b.block();
        let (x, y, z, w) = (b.gpr(), b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [
                IrOp::movi(x, 7),
                IrOp::movi(y, 1),
                IrOp::add(z, y, y),
                IrOp::add(w, z, x),
            ],
        );
        b.ret(bb0, None);
        b.finish()
    }

    #[test]
    fn insert_spills_collapses_the_longest_range() {
        let f = spannable();
        let lr = lower_first_region(&f);
        let (spilled, n) = insert_spills(&lr, 1).expect("a victim must exist");
        assert_eq!(n, 1);
        assert_eq!(spilled.lops.len(), lr.lops.len() + 2); // spill + reload
        let sp = spilled
            .lops
            .iter()
            .position(|l| l.op.opcode == Opcode::Spill)
            .unwrap();
        let rl = spilled
            .lops
            .iter()
            .position(|l| l.op.opcode == Opcode::Reload)
            .unwrap();
        // The victim is the first movi's (renamed) def — the longest span.
        let victim = spilled.lops[0].op.defs[0];
        assert_eq!(spilled.lops[0].op.opcode, Opcode::MovI);
        assert_eq!(sp, 1, "spill sits right after the victim's def");
        assert_eq!(spilled.lops[sp].op.uses, vec![victim]);
        assert_eq!(spilled.lops[sp].op.imm, spilled.lops[rl].op.imm);
        // The victim's old use now reads the reload's fresh register, and
        // the reload sits immediately before it.
        let fresh = spilled.lops[rl].op.defs[0];
        let user = &spilled.lops[rl + 1];
        assert_eq!(user.op.opcode, Opcode::Add);
        assert!(user.op.uses.contains(&fresh));
        assert!(!spilled
            .lops
            .iter()
            .any(|l| l.op.opcode != Opcode::Spill && l.op.uses.contains(&victim)));
        // Exit branch indices were remapped through the insertions.
        for (e, exit) in spilled.exits.iter().enumerate() {
            assert_eq!(spilled.lops[exit.branch_lop].kind, LOpKind::ExitBranch(e));
        }
    }

    #[test]
    fn insert_spills_excludes_spill_artifacts_and_keeps_slots_distinct() {
        let f = spannable();
        let lr = lower_first_region(&f);
        let (once, _) = insert_spills(&lr, 1).unwrap();
        // Re-spilling everything eligible never touches reload results or
        // already-spilled values.
        let reload_defs: Vec<Reg> = once
            .lops
            .iter()
            .filter(|l| l.op.opcode == Opcode::Reload)
            .map(|l| l.op.defs[0])
            .collect();
        let spilled: Vec<Reg> = once
            .lops
            .iter()
            .filter(|l| l.op.opcode == Opcode::Spill)
            .map(|l| l.op.uses[0])
            .collect();
        // `None` (nothing further eligible) is also a valid outcome.
        if let Some((again, _)) = insert_spills(&once, usize::MAX) {
            for l in &again.lops {
                if l.op.opcode == Opcode::Spill && !spilled.contains(&l.op.uses[0]) {
                    assert!(!reload_defs.contains(&l.op.uses[0]), "re-spilled a reload");
                }
            }
            // Slots must stay distinct across rounds (original spills
            // keep their slot; fresh victims get fresh slots).
            let mut slots: Vec<i64> = again
                .lops
                .iter()
                .filter(|l| l.op.opcode == Opcode::Spill)
                .map(|l| l.op.imm)
                .collect();
            slots.sort_unstable();
            let n = slots.len();
            slots.dedup();
            assert_eq!(slots.len(), n);
        }
        assert!(insert_spills(&lr, 0).is_none());
    }

    #[test]
    fn insert_spills_rewrites_exit_copies_through_a_reload() {
        // A value whose only consumer is an exit copy is still spillable:
        // the copy is redirected to a fresh register reloaded right
        // before the exit's branch lop.
        let f = spannable();
        let lr = lower_first_region(&f);
        let copy_victim = lr
            .exits
            .iter()
            .flat_map(|e| e.copies.iter().map(|&(_, s)| s))
            .next();
        let Some(_) = copy_victim else { return };
        let (spilled, _) = insert_spills(&lr, usize::MAX).expect("victims exist");
        for e in &spilled.exits {
            for &(_, src) in &e.copies {
                // No copy source may still read a spilled victim (those
                // were rewritten to reload results)…
                assert!(
                    !spilled
                        .lops
                        .iter()
                        .any(|l| { l.op.opcode == Opcode::Spill && l.op.uses[0] == src }),
                    "exit copy still reads spilled victim {src}"
                );
                // …and any in-region (re)definition precedes the branch.
                if let Some(def) = spilled.lops.iter().position(|l| l.op.defs.contains(&src)) {
                    assert!(
                        def < e.branch_lop,
                        "def {def} after branch {}",
                        e.branch_lop
                    );
                }
            }
        }
    }
}
