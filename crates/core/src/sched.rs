//! The treegion list scheduler — steps two and three of the paper's
//! Figure 3 algorithm (priority sort + list scheduling), plus the
//! dominator-parallelism elimination of Section 4.
//!
//! The scheduler emits one cycle-indexed schedule for the whole region.
//! Each cycle is a MultiOp of at most `issue_width` ops. Speculation is
//! implicit: renaming has made every op safe to issue as soon as its data
//! dependences allow, regardless of branches. Side-effecting ops and
//! branches carry path-predicate guards instead (PlayDoh predication), so
//! a wrong-path op in the linearized schedule is architecturally inert.
//!
//! An exit's *schedule height* is the issue cycle of its (predicated)
//! branch plus one; a region's estimated execution time is
//! `Σ exit count × height`, exactly the formula under the paper's
//! Figures 4 and 5.

use crate::ddg::Ddg;
use crate::error::{Budgets, SchedFailure};
use crate::heuristic::Heuristic;
use crate::lower::{LOpKind, LoweredRegion};
use std::collections::HashMap;
use treegion_ir::Reg;
use treegion_machine::MachineModel;

/// How the list scheduler breaks ties between ops of equal heuristic
/// priority.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Source (preorder) position: earlier paths win. The default, and
    /// the convention of classic list schedulers.
    #[default]
    SourceOrder,
    /// Round-robin across region-tree nodes: prefer the node that has
    /// issued the fewest ops so far, so all paths progress together —
    /// an implementation of the "democratic" behaviour the paper
    /// attributes to dependence-height scheduling on wide, shallow
    /// treegions (Figure 9 discussion).
    RoundRobin,
}

/// Scheduler configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// The priority heuristic (Section 3).
    pub heuristic: Heuristic,
    /// Enable dominator-parallelism elimination of redundant
    /// tail-duplicated ops (Section 4).
    pub dominator_parallelism: bool,
    /// Tie-breaking policy among equal-priority ready ops.
    pub tie_break: TieBreak,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            heuristic: Heuristic::GlobalWeight,
            dominator_parallelism: false,
            tie_break: TieBreak::SourceOrder,
        }
    }
}

/// A finished schedule for one region.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Issue cycles; each inner vec holds lop indices in slot order.
    pub cycles: Vec<Vec<usize>>,
    /// Issue cycle per lop (`None` if the op was eliminated by dominator
    /// parallelism).
    pub cycle_of: Vec<Option<u32>>,
    /// Issue cycle of each exit's branch, indexed like
    /// [`LoweredRegion::exits`].
    pub exit_cycles: Vec<u32>,
    /// Ops removed by dominator parallelism: `(eliminated, surviving twin)`.
    pub eliminated: Vec<(usize, usize)>,
    /// Register substitutions introduced by eliminations
    /// (`eliminated def -> surviving def`).
    pub reg_alias: HashMap<Reg, Reg>,
}

impl Schedule {
    /// Schedule length in cycles.
    pub fn length(&self) -> usize {
        self.cycles.len()
    }

    /// The paper's schedule height of exit `e`: branch issue cycle + 1.
    pub fn exit_height(&self, e: usize) -> u32 {
        self.exit_cycles[e] + 1
    }

    /// Estimated execution time of the region: Σ exit count × height
    /// (the formula under Figures 4/5).
    pub fn estimated_time(&self, lr: &LoweredRegion) -> f64 {
        lr.exits
            .iter()
            .enumerate()
            .map(|(e, exit)| exit.count * self.exit_height(e) as f64)
            .sum()
    }

    /// Estimated execution time of this schedule if the program followed
    /// a *different* profile than the one it was scheduled with: the
    /// heights stay fixed, the exit counts are read from `f_test` — a
    /// structurally identical function with perturbed profile weights.
    /// This is the paper's future-work question ("the effects of profile
    /// variations using the various heuristics").
    ///
    /// # Panics
    ///
    /// Panics if `f_test` does not have the same block/terminator
    /// structure as the function the region was lowered from.
    pub fn estimated_time_under(&self, lr: &LoweredRegion, f_test: &treegion_ir::Function) -> f64 {
        lr.exits
            .iter()
            .enumerate()
            .map(|(e, exit)| {
                let block = lr.nodes[exit.from_node].block;
                let count = if exit.succ_index == usize::MAX {
                    f_test.block(block).weight
                } else {
                    f_test.block(block).term.edges()[exit.succ_index].count
                };
                count * self.exit_height(e) as f64
            })
            .sum()
    }

    /// Number of ops actually issued (eliminated twins excluded).
    pub fn issued_ops(&self) -> usize {
        self.cycles.iter().map(Vec::len).sum()
    }

    /// Resolves a register through the dominator-parallelism alias map.
    pub fn resolve(&self, r: Reg) -> Reg {
        let mut cur = r;
        while let Some(&next) = self.reg_alias.get(&cur) {
            cur = next;
        }
        cur
    }
}

/// Schedules a lowered region on machine `m` (Figure 3: build DDG, sort by
/// heuristic, list schedule).
///
/// # Panics
///
/// Panics if the scheduler cannot make progress (a dependence-graph cycle,
/// which a correct DDG never contains). The fallible pipeline uses
/// [`try_schedule_region`] instead.
pub fn schedule_region(lr: &LoweredRegion, m: &MachineModel, opts: &ScheduleOptions) -> Schedule {
    let ddg = Ddg::build(lr, m);
    schedule_with_ddg(lr, &ddg, m, opts)
}

/// [`schedule_region`] with a pre-built DDG (lets callers reuse the graph
/// across heuristics).
///
/// # Panics
///
/// Panics if the scheduler cannot make progress (see [`schedule_region`]).
pub fn schedule_with_ddg(
    lr: &LoweredRegion,
    ddg: &Ddg,
    m: &MachineModel,
    opts: &ScheduleOptions,
) -> Schedule {
    let sched = try_schedule_with_ddg(lr, ddg, m, opts, &Budgets::UNLIMITED)
        .expect("scheduler failed to make progress (dependence cycle?)");
    // In debug builds, every schedule is independently re-verified —
    // scheduler bugs become loud test failures instead of wrong numbers.
    #[cfg(debug_assertions)]
    crate::verify_sched::verify_schedule(lr, ddg, m, &sched)
        .expect("scheduler produced an invalid schedule");
    sched
}

/// Fallible [`schedule_region`]: builds the DDG and schedules under the
/// given resource [`Budgets`].
///
/// # Errors
///
/// Returns [`SchedFailure::OpBudgetExceeded`] if the region is over the op
/// budget, or [`SchedFailure::StepBudgetExceeded`] if the list scheduler
/// runs more cycles than the cycle budget (or its built-in progress
/// watchdog) allows.
pub fn try_schedule_region(
    lr: &LoweredRegion,
    m: &MachineModel,
    opts: &ScheduleOptions,
    budgets: &Budgets,
) -> Result<Schedule, SchedFailure> {
    if let Some(cap) = budgets.max_region_ops {
        if lr.num_ops() > cap {
            return Err(SchedFailure::OpBudgetExceeded {
                ops: lr.num_ops(),
                budget: cap,
            });
        }
    }
    let ddg = Ddg::build(lr, m);
    try_schedule_with_ddg(lr, &ddg, m, opts, budgets)
}

/// [`try_schedule_region`] with a pre-built DDG. This is the primitive the
/// degradation chain and the fault-injection harness drive directly: it
/// never panics on a malformed graph, and it does *not* self-verify (the
/// robust pipeline verifies explicitly, under its own [`crate::VerifyMode`]).
///
/// # Errors
///
/// Returns [`SchedFailure::StepBudgetExceeded`] when the scheduler runs
/// more cycles than `budgets.max_schedule_cycles` (or the built-in
/// watchdog of `4 × ops + 64` cycles, whichever is smaller) without
/// issuing every op — the symptom of a dependence cycle or a corrupted
/// graph.
pub fn try_schedule_with_ddg(
    lr: &LoweredRegion,
    ddg: &Ddg,
    m: &MachineModel,
    opts: &ScheduleOptions,
    budgets: &Budgets,
) -> Result<Schedule, SchedFailure> {
    let n = lr.lops.len();
    // Soft wall-clock deadline: one `Instant::now()` per schedule cycle
    // (cycles are coarse — a whole issue pass over the ready list), so
    // the overhead is negligible while a runaway attempt trips within a
    // cycle boundary. The clock is per *attempt*: each call starts fresh.
    let wall_start = budgets.max_wall_ms.map(|_| std::time::Instant::now());
    // Safety valve: a correct DDG can never deadlock, but guard against a
    // cycle bug (or an injected fault) rather than spinning forever. The
    // configured cycle budget tightens, never loosens, the watchdog.
    let watchdog = 4 * n + 64;
    let cycle_cap = budgets
        .max_schedule_cycles
        .map_or(watchdog, |b| b.min(watchdog));
    let priorities = opts.heuristic.priorities(lr, ddg, m);

    // Remaining unscheduled predecessor count and earliest start cycle.
    let mut pending_preds: Vec<usize> = (0..n).map(|i| ddg.preds(i).count()).collect();
    let mut earliest: Vec<u32> = vec![0; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| pending_preds[i] == 0).collect();

    let mut sched = Schedule {
        cycles: Vec::new(),
        cycle_of: vec![None; n],
        exit_cycles: vec![0; lr.exits.len()],
        eliminated: Vec::new(),
        reg_alias: HashMap::new(),
    };
    // Twin index for dominator parallelism: origin -> scheduled lops.
    let mut twins: HashMap<crate::lower::OpOrigin, Vec<usize>> = HashMap::new();

    let mut remaining = n;
    let mut cycle: u32 = 0;
    // Per-node issue counts for the round-robin tie break.
    let mut issued_per_node = vec![0usize; lr.nodes.len()];
    while remaining > 0 {
        // Deadline check at the loop boundary, before committing to
        // another cycle. `>=` so a zero-millisecond budget trips on the
        // very first check — the deterministic trigger the tests use.
        if let (Some(budget_ms), Some(t0)) = (budgets.max_wall_ms, wall_start) {
            let elapsed_ms = t0.elapsed().as_millis() as u64;
            if elapsed_ms >= budget_ms {
                return Err(SchedFailure::DeadlineExceeded {
                    elapsed_ms,
                    budget_ms,
                });
            }
        }
        let mut slots_used = 0usize;
        let mut branches_used = 0usize;
        let mut mem_used = 0usize;
        let mut issued_this_cycle: Vec<usize> = Vec::new();

        // Re-scan after every pass: issuing an op can make a 0-latency
        // dependent ready *in the same cycle* (PlayDoh: a store and a
        // dependent memory op or retiring branch may share a MultiOp).
        loop {
            let mut avail: Vec<usize> = ready
                .iter()
                .copied()
                .filter(|&i| earliest[i] <= cycle)
                .collect();
            // Ready branches issue ahead of everything else: a branch
            // becomes ready only once its exit's path work has issued
            // (retirement edges), and at that point every cycle it waits
            // costs its exit's full profile weight, while the displaced op
            // loses at most one cycle. The heuristic still orders branches
            // among themselves and all other ops.
            avail.sort_by(|&a, &b| {
                let (ba, bb) = (
                    lr.lops[a].op.opcode.is_branch(),
                    lr.lops[b].op.opcode.is_branch(),
                );
                let base = bb.cmp(&ba).then(priorities[b].cmp(&priorities[a]));
                let base = match opts.tie_break {
                    TieBreak::SourceOrder => base,
                    TieBreak::RoundRobin => base.then(
                        issued_per_node[lr.lops[a].home].cmp(&issued_per_node[lr.lops[b].home]),
                    ),
                };
                base.then(a.cmp(&b)) // final tie: source order
            });
            let mut progressed = false;
            let mut finished: Vec<usize> = Vec::new();

            for &i in &avail {
                if slots_used >= m.issue_width() {
                    break;
                }
                let is_branch = lr.lops[i].op.opcode.is_branch();
                if is_branch {
                    if let Some(limit) = m.branch_limit() {
                        if branches_used >= limit {
                            continue;
                        }
                    }
                }
                let opcode = lr.lops[i].op.opcode;
                let is_mem = opcode.is_memory() || opcode == treegion_ir::Opcode::Call;
                if is_mem {
                    if let Some(limit) = m.mem_port_limit() {
                        if mem_used >= limit {
                            continue;
                        }
                    }
                }
                // Dominator parallelism: drop this op if a scheduled twin
                // computes the identical value.
                if opts.dominator_parallelism {
                    if let Some(t) = find_twin(lr, &sched, &twins, i) {
                        eliminate(lr, &mut sched, i, t);
                        finished.push(i);
                        remaining -= 1;
                        progressed = true;
                        let tc = sched.cycle_of[i].unwrap();
                        release_succs(ddg, i, tc, &mut pending_preds, &mut earliest, &mut ready);
                        continue;
                    }
                }
                // Issue.
                sched.cycle_of[i] = Some(cycle);
                issued_this_cycle.push(i);
                finished.push(i);
                slots_used += 1;
                progressed = true;
                if is_branch {
                    branches_used += 1;
                }
                if is_mem {
                    mem_used += 1;
                }
                issued_per_node[lr.lops[i].home] += 1;
                if let LOpKind::ExitBranch(e) = lr.lops[i].kind {
                    sched.exit_cycles[e] = cycle;
                }
                if opts.dominator_parallelism {
                    twins.entry(lr.lops[i].origin).or_default().push(i);
                }
                remaining -= 1;
                release_succs(ddg, i, cycle, &mut pending_preds, &mut earliest, &mut ready);
            }

            ready.retain(|i| !finished.contains(i));
            if !progressed || slots_used >= m.issue_width() {
                break;
            }
        }

        sched.cycles.push(issued_this_cycle);
        cycle += 1;
        if (cycle as usize) > cycle_cap {
            return Err(SchedFailure::StepBudgetExceeded {
                steps: cycle as usize,
                budget: cycle_cap,
            });
        }
    }
    // Trim trailing empty cycles (can appear if the last issue cycle was
    // followed by bookkeeping-only iterations).
    while matches!(sched.cycles.last(), Some(c) if c.is_empty()) {
        sched.cycles.pop();
    }
    Ok(sched)
}

fn release_succs(
    ddg: &Ddg,
    i: usize,
    cycle: u32,
    pending_preds: &mut [usize],
    earliest: &mut [u32],
    ready: &mut Vec<usize>,
) {
    for e in ddg.succs(i) {
        let t = e.to;
        earliest[t] = earliest[t].max(cycle + e.latency);
        pending_preds[t] -= 1;
        if pending_preds[t] == 0 {
            ready.push(t);
        }
    }
}

/// Finds a scheduled twin of `i` computing the identical value: same
/// origin position, same opcode/immediate/target/guard, identical
/// alias-resolved uses. Branches, PBRs, and side-effecting ops are never
/// merged (only speculable value computations exhibit dominator
/// parallelism).
fn find_twin(
    lr: &LoweredRegion,
    sched: &Schedule,
    twins: &HashMap<crate::lower::OpOrigin, Vec<usize>>,
    i: usize,
) -> Option<usize> {
    let l = &lr.lops[i];
    if !l.op.opcode.is_speculable()
        || matches!(
            l.kind,
            LOpKind::ExitBranch(_) | LOpKind::InternalBranch | LOpKind::PrepareBranch
        )
        || l.guard.is_some()
    {
        return None;
    }
    let candidates = twins.get(&l.origin)?;
    'outer: for &t in candidates {
        let tl = &lr.lops[t];
        if tl.op.opcode != l.op.opcode
            || tl.op.imm != l.op.imm
            || tl.op.target != l.op.target
            || tl.guard != l.guard
            || tl.op.uses.len() != l.op.uses.len()
        {
            continue;
        }
        for (a, b) in l.op.uses.iter().zip(tl.op.uses.iter()) {
            if sched.resolve(*a) != sched.resolve(*b) {
                continue 'outer;
            }
        }
        return Some(t);
    }
    None
}

/// Records the elimination of `i` in favour of its twin `t`: `i`'s defs
/// alias to `t`'s defs and `i` inherits `t`'s issue cycle (its value is
/// available wherever `t`'s is).
fn eliminate(lr: &LoweredRegion, sched: &mut Schedule, i: usize, t: usize) {
    for (a, b) in lr.lops[i].op.defs.iter().zip(lr.lops[t].op.defs.iter()) {
        sched.reg_alias.insert(*a, *b);
    }
    sched.cycle_of[i] = sched.cycle_of[t];
    sched.eliminated.push((i, t));
}

/// Renders a schedule as a Figure 4/5-style table (one row per cycle, one
/// column per issue slot).
pub fn render_schedule(lr: &LoweredRegion, sched: &Schedule, m: &MachineModel) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let width = m.issue_width();
    let mut col_w = vec![8usize; width];
    let cell = |i: usize| -> String { format!("{}", lr.lops[i].op) };
    for row in &sched.cycles {
        for (s, &i) in row.iter().enumerate() {
            col_w[s] = col_w[s].max(cell(i).len());
        }
    }
    for (c, row) in sched.cycles.iter().enumerate() {
        let _ = write!(out, "{c:>3} |");
        for (s, w) in col_w.iter().enumerate().take(width) {
            let text = row.get(s).map(|&i| cell(i)).unwrap_or_default();
            let _ = write!(out, " {text:<w$} |");
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "exits: {}",
        lr.exits
            .iter()
            .enumerate()
            .map(|(e, x)| format!(
                "{}@{} (w={})",
                x.target
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "ret".into()),
                sched.exit_height(e),
                x.count
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_region;
    use crate::{form_basic_blocks, form_treegions};
    use treegion_analysis::{Cfg, Liveness};
    use treegion_ir::{Cond, Function, FunctionBuilder, Op, Opcode};

    fn lower_entry(f: &Function, treegion: bool) -> LoweredRegion {
        let set = if treegion {
            form_treegions(f)
        } else {
            form_basic_blocks(f)
        };
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let r = set.region(set.region_of(f.entry()).unwrap()).clone();
        lower_region(f, &r, &live, None)
    }

    fn sched(lr: &LoweredRegion, m: &MachineModel) -> Schedule {
        schedule_region(lr, m, &ScheduleOptions::default())
    }

    #[test]
    fn respects_issue_width() {
        // Eight independent movis on a 4-wide machine: 2 cycles + ret.
        let mut b = FunctionBuilder::new("w");
        let bb0 = b.block();
        for k in 0..8 {
            let r = b.gpr();
            b.push(bb0, Op::movi(r, k));
        }
        b.ret(bb0, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_4u());
        for c in &s.cycles {
            assert!(c.len() <= 4);
        }
        assert_eq!(s.cycles[0].len(), 4);
        assert_eq!(s.cycles[1].len(), 4);
    }

    #[test]
    fn respects_latency() {
        // load -> add: add must issue >= 2 cycles after the load.
        let mut b = FunctionBuilder::new("lat");
        let bb0 = b.block();
        let (a, x, y) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::load(x, a, 0), Op::add(y, x, x)]);
        b.ret(bb0, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_4u());
        let load = lr
            .lops
            .iter()
            .position(|l| l.op.opcode == Opcode::Load)
            .unwrap();
        let add = lr
            .lops
            .iter()
            .position(|l| l.op.opcode == Opcode::Add)
            .unwrap();
        assert!(s.cycle_of[add].unwrap() >= s.cycle_of[load].unwrap() + 2);
    }

    #[test]
    fn single_issue_machine_serializes_everything() {
        let mut b = FunctionBuilder::new("s1");
        let bb0 = b.block();
        for k in 0..5 {
            let r = b.gpr();
            b.push(bb0, Op::movi(r, k));
        }
        b.ret(bb0, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_1u());
        assert_eq!(s.length(), 6); // 5 movis + ret
        assert_eq!(s.issued_ops(), 6);
    }

    #[test]
    fn estimated_time_weights_exits() {
        // Branchy region; time must equal Σ count × height.
        let mut b = FunctionBuilder::new("est");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (x, y, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [Op::movi(x, 1), Op::movi(y, 2), Op::cmp(Cond::Lt, c, x, y)],
        );
        b.branch(bb0, c, (bb1, 70.0), (bb2, 30.0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_4u());
        let manual: f64 = lr
            .exits
            .iter()
            .enumerate()
            .map(|(e, x)| x.count * s.exit_height(e) as f64)
            .sum();
        assert_eq!(s.estimated_time(&lr), manual);
        assert!(manual > 0.0);
    }

    #[test]
    fn wider_machine_is_never_slower() {
        let mut b = FunctionBuilder::new("wide");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let regs: Vec<_> = (0..6).map(|_| b.gpr()).collect();
        for (k, &r) in regs.iter().enumerate() {
            b.push(bb0, Op::movi(r, k as i64));
        }
        let c = b.gpr();
        b.push(bb0, Op::cmp(Cond::Lt, c, regs[0], regs[1]));
        b.branch(bb0, c, (bb1, 50.0), (bb2, 50.0));
        b.push(bb1, Op::add(regs[2], regs[0], regs[1]));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let t4 = sched(&lr, &MachineModel::model_4u()).estimated_time(&lr);
        let t8 = sched(&lr, &MachineModel::model_8u()).estimated_time(&lr);
        let t1 = sched(&lr, &MachineModel::model_1u()).estimated_time(&lr);
        assert!(t8 <= t4, "8U {t8} > 4U {t4}");
        assert!(t4 <= t1, "4U {t4} > 1U {t1}");
    }

    #[test]
    fn branch_limit_is_enforced() {
        // Three exits; with branch limit 1, at most one branch per cycle.
        let mut b = FunctionBuilder::new("bl");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let on = b.gpr();
        b.push(ids[0], Op::movi(on, 0));
        b.switch(
            ids[0],
            on,
            vec![(0, ids[1], 5.0), (1, ids[2], 5.0)],
            (ids[3], 5.0),
        );
        for &i in &ids[1..] {
            b.ret(i, None);
        }
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::builder("4b1", 4)
            .branch_limit(Some(1))
            .build();
        let s = sched(&lr, &m);
        for c in &s.cycles {
            let branches = c
                .iter()
                .filter(|&&i| lr.lops[i].op.opcode.is_branch())
                .count();
            assert!(branches <= 1);
        }
    }

    #[test]
    fn all_ops_scheduled_exactly_once() {
        let mut b = FunctionBuilder::new("once");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (a, x, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::load(x, a, 0), Op::movi(c, 1)]);
        b.branch(bb0, c, (bb1, 1.0), (bb2, 1.0));
        b.push(bb1, Op::store(a, x, 8));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_4u());
        assert_eq!(s.issued_ops(), lr.lops.len());
        let mut seen = std::collections::HashSet::new();
        for c in &s.cycles {
            for &i in c {
                assert!(seen.insert(i));
            }
        }
        assert_eq!(seen.len(), lr.lops.len());
    }

    #[test]
    fn mem_port_limit_is_enforced() {
        // Four independent loads on a 4-wide machine with 1 memory port:
        // loads must spread over four cycles.
        let mut b = FunctionBuilder::new("mp");
        let bb0 = b.block();
        let base = b.gpr();
        for k in 0..4 {
            let d = b.gpr();
            b.push(bb0, Op::load(d, base, k * 8));
        }
        b.ret(bb0, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::builder("4m1", 4).mem_ports(Some(1)).build();
        let s = sched(&lr, &m);
        for c in &s.cycles {
            let mems = c
                .iter()
                .filter(|&&i| lr.lops[i].op.opcode.is_memory())
                .count();
            assert!(mems <= 1);
        }
        let unlimited = sched(&lr, &MachineModel::model_4u());
        assert!(s.length() > unlimited.length());
    }

    #[test]
    fn round_robin_tie_break_interleaves_paths() {
        // A 3-way switch with symmetric case bodies: under round-robin the
        // first cycle after the root should draw ops from distinct nodes.
        let mut b = FunctionBuilder::new("rr");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let on = b.gpr();
        b.push(ids[0], Op::movi(on, 0));
        let mut regs = Vec::new();
        for (k, &id) in ids.iter().enumerate().take(4).skip(1) {
            let (x, y) = (b.gpr(), b.gpr());
            b.push(id, Op::movi(x, k as i64));
            b.push(id, Op::add(y, x, x));
            b.ret(id, Some(y));
            regs.push((x, y));
        }
        b.switch(
            ids[0],
            on,
            vec![(0, ids[1], 5.0), (1, ids[2], 5.0)],
            (ids[3], 5.0),
        );
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::model_4u();
        for tb in [TieBreak::SourceOrder, TieBreak::RoundRobin] {
            let s = schedule_region(
                &lr,
                &m,
                &ScheduleOptions {
                    heuristic: Heuristic::DependenceHeight,
                    dominator_parallelism: false,
                    tie_break: tb,
                },
            );
            assert_eq!(s.issued_ops(), lr.lops.len(), "{tb:?}");
        }
        // Round-robin must spread same-priority movis across nodes within
        // the first movi-bearing cycle (sanity: schedule verifies; the
        // interleaving property itself is covered by the ablation bench).
    }

    #[test]
    fn render_produces_rows_per_cycle() {
        let mut b = FunctionBuilder::new("r");
        let bb0 = b.block();
        let x = b.gpr();
        b.push(bb0, Op::movi(x, 1));
        b.ret(bb0, Some(x));
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::model_4u();
        let s = sched(&lr, &m);
        let text = render_schedule(&lr, &s, &m);
        assert_eq!(text.lines().count(), s.length() + 1);
        assert!(text.contains("movi"));
        assert!(text.contains("exits:"));
    }
}
