//! The treegion list scheduler — steps two and three of the paper's
//! Figure 3 algorithm (priority sort + list scheduling), plus the
//! dominator-parallelism elimination of Section 4.
//!
//! The scheduler emits one cycle-indexed schedule for the whole region.
//! Each cycle is a MultiOp of at most `issue_width` ops. Speculation is
//! implicit: renaming has made every op safe to issue as soon as its data
//! dependences allow, regardless of branches. Side-effecting ops and
//! branches carry path-predicate guards instead (PlayDoh predication), so
//! a wrong-path op in the linearized schedule is architecturally inert.
//!
//! An exit's *schedule height* is the issue cycle of its (predicated)
//! branch plus one; a region's estimated execution time is
//! `Σ exit count × height`, exactly the formula under the paper's
//! Figures 4 and 5.

use crate::ddg::Ddg;
use crate::error::{Budgets, SchedFailure};
use crate::heuristic::Heuristic;
use crate::lower::{LOpKind, LoweredRegion};
use std::collections::HashMap;
use treegion_ir::{Reg, RegClass};
use treegion_machine::{MachineModel, OpClass};

/// Resource-automaton and register-pressure counters of one scheduler
/// run (see [`last_sched_metrics`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedMetrics {
    /// Interned states of the machine's hazard automaton.
    pub automaton_states: usize,
    /// Structural-hazard probe rejections (`go` returned `None`) while
    /// popping ready ops.
    pub hazard_hits: u64,
    /// Ready entries parked on a class's deferral list until the cycle
    /// ended (re-admission events are counted once per park).
    pub deferral_parks: u64,
    /// Peak simultaneous live ranges per register class, indexed by
    /// [`RegClass::index`]. Tracked on every machine (unbounded files
    /// included) — this is the number a finite file would have to hold.
    pub pressure_peak: [u32; 3],
    /// Ready entries deferred because issuing their defs would overflow
    /// a finite register file (counted once per park, like
    /// `deferral_parks`). Always zero on unbounded machines.
    pub pressure_parks: u64,
}

thread_local! {
    static LAST_METRICS: std::cell::Cell<SchedMetrics> =
        const { std::cell::Cell::new(SchedMetrics {
            automaton_states: 0,
            hazard_hits: 0,
            deferral_parks: 0,
            pressure_peak: [0; 3],
            pressure_parks: 0,
        }) };
}

/// Counters of the most recent successful schedule call *on this thread*.
///
/// The scheduler's hot loop owns these numbers; the pipeline driver reads
/// them immediately after `schedule_with_ddg` returns (stage brackets run
/// on the worker thread that did the scheduling) and forwards them
/// through the [`crate::PassObserver`] stage stats, which is how
/// `--profile` and `tgc serve stats` report them.
pub fn last_sched_metrics() -> SchedMetrics {
    LAST_METRICS.with(|c| c.get())
}

/// How the list scheduler breaks ties between ops of equal heuristic
/// priority.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Source (preorder) position: earlier paths win. The default, and
    /// the convention of classic list schedulers.
    #[default]
    SourceOrder,
    /// Round-robin across region-tree nodes: prefer the node that has
    /// issued the fewest ops so far, so all paths progress together —
    /// an implementation of the "democratic" behaviour the paper
    /// attributes to dependence-height scheduling on wide, shallow
    /// treegions (Figure 9 discussion).
    RoundRobin,
}

/// Scheduler configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// The priority heuristic (Section 3).
    pub heuristic: Heuristic,
    /// Enable dominator-parallelism elimination of redundant
    /// tail-duplicated ops (Section 4).
    pub dominator_parallelism: bool,
    /// Tie-breaking policy among equal-priority ready ops.
    pub tie_break: TieBreak,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            heuristic: Heuristic::GlobalWeight,
            dominator_parallelism: false,
            tie_break: TieBreak::SourceOrder,
        }
    }
}

/// A finished schedule for one region.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Issue cycles; each inner vec holds lop indices in slot order.
    pub cycles: Vec<Vec<usize>>,
    /// Issue cycle per lop (`None` if the op was eliminated by dominator
    /// parallelism).
    pub cycle_of: Vec<Option<u32>>,
    /// Issue cycle of each exit's branch, indexed like
    /// [`LoweredRegion::exits`].
    pub exit_cycles: Vec<u32>,
    /// Ops removed by dominator parallelism: `(eliminated, surviving twin)`.
    pub eliminated: Vec<(usize, usize)>,
    /// Register substitutions introduced by eliminations
    /// (`eliminated def -> surviving def`).
    pub reg_alias: HashMap<Reg, Reg>,
}

impl Schedule {
    /// Schedule length in cycles.
    pub fn length(&self) -> usize {
        self.cycles.len()
    }

    /// The paper's schedule height of exit `e`: branch issue cycle + 1.
    pub fn exit_height(&self, e: usize) -> u32 {
        self.exit_cycles[e] + 1
    }

    /// Estimated execution time of the region: Σ exit count × height
    /// (the formula under Figures 4/5).
    pub fn estimated_time(&self, lr: &LoweredRegion) -> f64 {
        lr.exits
            .iter()
            .enumerate()
            .map(|(e, exit)| exit.count * self.exit_height(e) as f64)
            .sum()
    }

    /// Estimated execution time of this schedule if the program followed
    /// a *different* profile than the one it was scheduled with: the
    /// heights stay fixed, the exit counts are read from `f_test` — a
    /// structurally identical function with perturbed profile weights.
    /// This is the paper's future-work question ("the effects of profile
    /// variations using the various heuristics").
    ///
    /// # Panics
    ///
    /// Panics if `f_test` does not have the same block/terminator
    /// structure as the function the region was lowered from.
    pub fn estimated_time_under(&self, lr: &LoweredRegion, f_test: &treegion_ir::Function) -> f64 {
        lr.exits
            .iter()
            .enumerate()
            .map(|(e, exit)| {
                let block = lr.nodes[exit.from_node].block;
                let count = if exit.succ_index == usize::MAX {
                    f_test.block(block).weight
                } else {
                    f_test.block(block).term.edges()[exit.succ_index].count
                };
                count * self.exit_height(e) as f64
            })
            .sum()
    }

    /// Number of ops actually issued (eliminated twins excluded).
    pub fn issued_ops(&self) -> usize {
        self.cycles.iter().map(Vec::len).sum()
    }

    /// Resolves a register through the dominator-parallelism alias map.
    ///
    /// The scheduler itself only ever records alias chains of depth ≤ 1
    /// (an eliminated op aliases to a *surviving* twin, and survivors are
    /// never themselves eliminated), and internally resolves through a
    /// path-compressing union-find that cannot represent a cycle. This
    /// public walk over the (public, hand-editable) map is additionally
    /// bounded: a chain longer than the map itself proves a cycle, and
    /// the walk panics instead of spinning forever — the seed version
    /// hung on `{a -> b, b -> a}`.
    ///
    /// # Panics
    ///
    /// Panics if `reg_alias` contains a cyclic chain.
    pub fn resolve(&self, r: Reg) -> Reg {
        let mut cur = r;
        let mut steps = 0usize;
        while let Some(&next) = self.reg_alias.get(&cur) {
            steps += 1;
            assert!(
                steps <= self.reg_alias.len(),
                "cyclic reg_alias chain detected at {cur} (resolving {r})"
            );
            cur = next;
        }
        cur
    }
}

/// Schedules a lowered region on machine `m` (Figure 3: build DDG, sort by
/// heuristic, list schedule).
///
/// # Panics
///
/// Panics if the scheduler cannot make progress (a dependence-graph cycle,
/// which a correct DDG never contains), or if a finite register file on
/// `m` is provably too small for the region (a
/// [`SchedFailure::RegisterPressure`] livelock). The fallible pipeline
/// uses [`try_schedule_region`] instead, and the robust pipeline
/// additionally inserts spill code and retries before degrading.
pub fn schedule_region(lr: &LoweredRegion, m: &MachineModel, opts: &ScheduleOptions) -> Schedule {
    let ddg = Ddg::build(lr, m);
    schedule_with_ddg(lr, &ddg, m, opts)
}

/// [`schedule_region`] with a pre-built DDG (lets callers reuse the graph
/// across heuristics).
///
/// # Panics
///
/// Panics if the scheduler cannot make progress (see [`schedule_region`]).
pub fn schedule_with_ddg(
    lr: &LoweredRegion,
    ddg: &Ddg,
    m: &MachineModel,
    opts: &ScheduleOptions,
) -> Schedule {
    let sched = try_schedule_with_ddg(lr, ddg, m, opts, &Budgets::UNLIMITED)
        .expect("scheduler failed to make progress (dependence cycle?)");
    // In debug builds, every schedule is independently re-verified —
    // scheduler bugs become loud test failures instead of wrong numbers.
    #[cfg(debug_assertions)]
    crate::verify_sched::verify_schedule(lr, ddg, m, &sched)
        .expect("scheduler produced an invalid schedule");
    sched
}

/// Fallible [`schedule_region`]: builds the DDG and schedules under the
/// given resource [`Budgets`].
///
/// # Errors
///
/// Returns [`SchedFailure::OpBudgetExceeded`] if the region is over the op
/// budget, or [`SchedFailure::StepBudgetExceeded`] if the list scheduler
/// runs more cycles than the cycle budget (or its built-in progress
/// watchdog) allows.
pub fn try_schedule_region(
    lr: &LoweredRegion,
    m: &MachineModel,
    opts: &ScheduleOptions,
    budgets: &Budgets,
) -> Result<Schedule, SchedFailure> {
    if let Some(cap) = budgets.max_region_ops {
        if lr.num_ops() > cap {
            return Err(SchedFailure::OpBudgetExceeded {
                ops: lr.num_ops(),
                budget: cap,
            });
        }
    }
    let ddg = Ddg::build(lr, m);
    try_schedule_with_ddg(lr, &ddg, m, opts, budgets)
}

/// [`try_schedule_region`] with a pre-built DDG. This is the primitive the
/// degradation chain and the fault-injection harness drive directly: it
/// never panics on a malformed graph, and it does *not* self-verify (the
/// robust pipeline verifies explicitly, under its own [`crate::VerifyMode`]).
///
/// # Errors
///
/// Returns [`SchedFailure::StepBudgetExceeded`] when the scheduler runs
/// more cycles than `budgets.max_schedule_cycles` (or the built-in
/// watchdog of `4 × ops + 64` cycles, whichever is smaller) without
/// issuing every op — the symptom of a dependence cycle or a corrupted
/// graph.
pub fn try_schedule_with_ddg(
    lr: &LoweredRegion,
    ddg: &Ddg,
    m: &MachineModel,
    opts: &ScheduleOptions,
    budgets: &Budgets,
) -> Result<Schedule, SchedFailure> {
    // Per-thread scratch: the transient tables below (heights, packed
    // keys, op state, the two heap backings, pass scratch) are sized by
    // the region and fully reinitialized per call, so reusing one
    // thread-local arena turns ~10 allocations per region into zero on
    // the steady state. `par_map` workers each get their own arena.
    SCRATCH.with(|cell| schedule_inner(&mut cell.borrow_mut(), lr, ddg, m, opts, budgets))
}

/// Reusable per-thread buffers for [`schedule_inner`]; every field is
/// cleared or overwritten at the start of each call, so only capacity
/// survives between regions.
#[derive(Default)]
struct Scratch {
    heights: Vec<u32>,
    base_key: Vec<ReadyKey>,
    class_of: Vec<u8>,
    exit_of: Vec<u32>,
    home_of: Vec<u32>,
    op_state: Vec<OpState>,
    heap: Vec<ReadyEntry>,
    future: Vec<std::cmp::Reverse<(u32, u32)>>,
    staged: Vec<usize>,
    parked: [Vec<ReadyEntry>; OpClass::COUNT],
    issued_this_cycle: Vec<usize>,
    issued_per_node: Vec<u32>,
    rr_snapshot: Vec<u32>,
    // Live-range pressure tables, one dense vec per register class
    // (indexed by `Reg::index`): remaining use occurrences, whether the
    // register was defined in the region, whether its range is open
    // right now, plus the current cycle's pending-kill list and the
    // finite-file deferral list.
    reg_uses: [Vec<u32>; 3],
    reg_defined: [Vec<bool>; 3],
    reg_alive: [Vec<bool>; 3],
    kills: Vec<Reg>,
    pressure_parked: Vec<ReadyEntry>,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

fn schedule_inner(
    scratch: &mut Scratch,
    lr: &LoweredRegion,
    ddg: &Ddg,
    m: &MachineModel,
    opts: &ScheduleOptions,
    budgets: &Budgets,
) -> Result<Schedule, SchedFailure> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = lr.lops.len();
    // Soft wall-clock deadline: one `Instant::now()` per schedule cycle
    // (cycles are coarse — a whole issue pass over the ready list), so
    // the overhead is negligible while a runaway attempt trips within a
    // cycle boundary. The clock is per *attempt*: each call starts fresh.
    let wall_start = budgets.max_wall_ms.map(|_| std::time::Instant::now());
    // Safety valve: a correct DDG can never deadlock, but guard against a
    // cycle bug (or an injected fault) rather than spinning forever. The
    // configured cycle budget tightens, never loosens, the watchdog.
    let watchdog = 4 * n + 64;
    let cycle_cap = budgets
        .max_schedule_cycles
        .map_or(watchdog, |b| b.min(watchdog));
    ddg.heights_into(lr, m, &mut scratch.heights);
    let heights = &scratch.heights;

    // The static part of every op's scheduling identity, precomputed in
    // one fused pass over the lop table: the ready-queue key (the seed
    // re-sorted the avail vec on every issue pass, re-deriving branchness
    // and re-comparing `[f64; 3]` priorities each time; a heap pop yields
    // the identical order from plain integer compares), the op's resource
    // class for the hazard-automaton probe, its exit index (or `MAX`),
    // and — under RoundRobin — its home node. The issue loop then touches
    // only these dense side tables, never the fat `LOp` structs.
    let rr_mode = opts.tie_break == TieBreak::RoundRobin;
    // Pressure-heuristic side table (empty for the paper's four — the
    // keys then read nothing from it and the pass below stays pure).
    let aux = opts.heuristic.pressure_aux(lr);
    scratch.base_key.clear();
    scratch.class_of.clear();
    scratch.exit_of.clear();
    scratch.home_of.clear();
    for (i, l) in lr.lops.iter().enumerate() {
        let class = OpClass::of(l.op.opcode);
        scratch.class_of.push(class as u8);
        scratch.base_key.push(ReadyKey {
            branch: class == OpClass::Branch,
            prio: crate::heuristic::pack3(opts.heuristic.key_components(lr, &aux, i, heights[i])),
            rr: !0u32,
            idx: !(i as u32),
        });
        scratch.exit_of.push(match l.kind {
            LOpKind::ExitBranch(e) => e as u32,
            _ => u32::MAX,
        });
        if rr_mode {
            scratch.home_of.push(l.home as u32);
        }
    }
    let base_key = &scratch.base_key;
    let class_of = &scratch.class_of;
    let exit_of = &scratch.exit_of;
    let home_of = &scratch.home_of;
    // The machine's precomputed per-cycle resource automaton: one state
    // threaded per cycle, one indexed `go` probe per popped ready op —
    // replacing the seed's three per-op limit conditionals.
    let auto = m.hazard_automaton();
    let mut hazard_hits: u64 = 0;
    let mut deferral_parks: u64 = 0;

    // ---- Live-range pressure state -----------------------------------
    // Registers are a machine resource: a value occupies one register of
    // its class from the cycle its def issues through the END of the
    // cycle its last use issues (uses = operands, guards, and exit-copy
    // sources attributed to the exit's branch; live-ins are live from
    // cycle 0; a def nobody reads dies at the end of its own cycle).
    // The tables below make that incremental: one counted-down use table
    // per class, an open-range flag per register, and a per-cycle kill
    // list drained at the cycle boundary — O(defs + uses) per issue.
    // Tracking runs on every machine (the peak is a reported metric);
    // the *ceiling* check below only engages on finite files, so the
    // unbounded default schedules byte-identically to before.
    let caps: [Option<u32>; 3] = RegClass::ALL.map(|c| m.reg_cap(c));
    let finite = caps.iter().any(Option::is_some);
    let mut live = [0u32; 3];
    let mut pressure_peak = [0u32; 3];
    let mut pressure_parks: u64 = 0;
    let mut last_block: Option<(RegClass, u32, u32)> = None;
    for t in scratch.reg_uses.iter_mut() {
        t.clear();
    }
    for t in scratch.reg_defined.iter_mut() {
        t.clear();
    }
    for t in scratch.reg_alive.iter_mut() {
        t.clear();
    }
    scratch.kills.clear();
    scratch.pressure_parked.clear();
    for l in &lr.lops {
        for &u in &l.op.uses {
            bump_use(&mut scratch.reg_uses, u);
        }
        if let Some(g) = l.guard {
            bump_use(&mut scratch.reg_uses, g);
        }
        for &d in &l.op.defs {
            let t = &mut scratch.reg_defined[d.class().index()];
            let i = d.index() as usize;
            if i >= t.len() {
                t.resize(i + 1, false);
            }
            t[i] = true;
        }
    }
    for exit in &lr.exits {
        for &(_, src) in &exit.copies {
            bump_use(&mut scratch.reg_uses, src);
        }
    }
    // Live-ins (used in the region, defined outside it) hold registers
    // from cycle 0 until their last use retires them.
    for c in 0..3 {
        let uses = &scratch.reg_uses[c];
        let defined = &scratch.reg_defined[c];
        let alive = &mut scratch.reg_alive[c];
        alive.resize(uses.len(), false);
        for i in 0..uses.len() {
            if uses[i] > 0 && !defined.get(i).copied().unwrap_or(false) {
                alive[i] = true;
                live[c] += 1;
            }
        }
        pressure_peak[c] = live[c];
    }
    let reg_uses = &mut scratch.reg_uses;
    let reg_alive = &mut scratch.reg_alive;
    let kills = &mut scratch.kills;
    let pressure_parked = &mut scratch.pressure_parked;

    // Remaining unscheduled predecessor count and earliest start cycle,
    // interleaved in one table so `release_succs` touches a single cache
    // line per successor.
    scratch.op_state.clear();
    scratch.op_state.extend((0..n).map(|i| OpState {
        pending: ddg.pred_count(i) as u32,
        earliest: 0,
    }));
    let op_state = &mut scratch.op_state;

    // Two-level ready structure. `future` (a min-heap on earliest cycle)
    // holds ops whose dependences have all issued but whose operands are
    // not yet due; at each cycle boundary the due ones migrate into
    // `heap`, the indexed ready queue the issue passes pop from. Between
    // them they partition what the seed kept in one flat `ready` vec and
    // re-filtered + re-sorted per pass. Initially ready ops (no preds)
    // are due at cycle 0 and go straight into the queue; `future` only
    // allocates once a released op actually has to wait on a latency.
    scratch.future.clear();
    let mut future: BinaryHeap<Reverse<(u32, u32)>> =
        BinaryHeap::from(std::mem::take(&mut scratch.future));
    scratch.heap.clear();
    scratch.heap.reserve(n);
    let mut heap: BinaryHeap<ReadyEntry> = BinaryHeap::from(std::mem::take(&mut scratch.heap));
    for i in 0..n {
        if op_state[i].pending == 0 {
            heap.push(ReadyEntry {
                key: base_key[i],
                epoch: 0,
                idx: i as u32,
            });
        }
    }

    let mut sched = Schedule {
        cycles: Vec::new(),
        cycle_of: vec![None; n],
        exit_cycles: vec![0; lr.exits.len()],
        eliminated: Vec::new(),
        reg_alias: HashMap::new(),
    };

    // Twin index for dominator parallelism: dense per-origin buckets.
    // Origins are interned once up front (one hash probe per op for the
    // whole schedule), so the per-issue bucket append and the per-ready-op
    // candidate lookup are plain indexed accesses. Bucket order is append
    // order — identical to the seed's `HashMap<OpOrigin, Vec<usize>>`
    // entry vecs, so the first-match twin choice is unchanged.
    let mut origin_bucket: Vec<u32> = Vec::new();
    let mut twin_buckets: Vec<Vec<u32>> = Vec::new();
    if opts.dominator_parallelism {
        let mut ids: HashMap<crate::lower::OpOrigin, u32> = HashMap::with_capacity(n);
        origin_bucket.reserve(n);
        for l in &lr.lops {
            let next = ids.len() as u32;
            let id = *ids.entry(l.origin).or_insert(next);
            origin_bucket.push(id);
        }
        twin_buckets = vec![Vec::new(); ids.len()];
    }
    // Union-find over eliminated defs; mirrors the public `reg_alias` map
    // but is dense and path-compressed for the twin-comparison hot loop.
    let mut alias = AliasTable::default();

    let mut remaining = n;
    let mut cycle: u32 = 0;
    // Per-node issue counts for the round-robin tie break, plus the
    // frozen copy each pass keys against (the seed's comparator read the
    // live counts, but only ever *between* issues of a pass's pre-sorted
    // snapshot — freezing at pass start reproduces that exactly). Both
    // are maintained only under RoundRobin; SourceOrder never reads them.
    let issued_per_node = &mut scratch.issued_per_node;
    issued_per_node.clear();
    let rr_snapshot = &mut scratch.rr_snapshot;
    rr_snapshot.clear();
    if rr_mode {
        issued_per_node.resize(lr.nodes.len(), 0);
        rr_snapshot.resize(lr.nodes.len(), 0);
    }
    let mut epoch: u32 = 0;
    // Scratch reused across all cycles and passes.
    let staged = &mut scratch.staged;
    staged.clear();
    let parked = &mut scratch.parked;
    for p in parked.iter_mut() {
        p.clear();
    }
    let issued_this_cycle = &mut scratch.issued_this_cycle;
    issued_this_cycle.clear();

    while remaining > 0 {
        // Deadline check at the loop boundary, before committing to
        // another cycle. `>=` so a zero-millisecond budget trips on the
        // very first check — the deterministic trigger the tests use.
        if let (Some(budget_ms), Some(t0)) = (budgets.max_wall_ms, wall_start) {
            let elapsed_ms = t0.elapsed().as_millis() as u64;
            if elapsed_ms >= budget_ms {
                return Err(SchedFailure::DeadlineExceeded {
                    elapsed_ms,
                    budget_ms,
                });
            }
        }
        // Admit ops whose earliest cycle has arrived.
        while let Some(&Reverse((e, i))) = future.peek() {
            if e > cycle {
                break;
            }
            future.pop();
            let idx = i as usize;
            let mut key = base_key[idx];
            if rr_mode {
                key.rr = !rr_snapshot[home_of[idx] as usize];
            }
            heap.push(ReadyEntry { key, epoch, idx: i });
        }

        let mut slots_used = 0usize;
        // Fresh cycle: the automaton restarts from the empty-cycle state.
        let mut state = auto.start();
        issued_this_cycle.clear();
        let mut progress_this_cycle = false;

        // Re-scan after every pass: issuing an op can make a 0-latency
        // dependent ready *in the same cycle* (PlayDoh: a store and a
        // dependent memory op or retiring branch may share a MultiOp).
        loop {
            if rr_mode {
                // New pass: freeze the round-robin counts. Entries keyed
                // under an older pass re-key lazily on pop — sound for a
                // max-heap because issue counts only grow, so keys only
                // ever decrease.
                epoch += 1;
                rr_snapshot.copy_from_slice(issued_per_node);
            }
            let mut progressed = false;
            // Ready branches issue ahead of everything else: a branch
            // becomes ready only once its exit's path work has issued
            // (retirement edges), and at that point every cycle it waits
            // costs its exit's full profile weight, while the displaced op
            // loses at most one cycle. The heuristic still orders branches
            // among themselves and all other ops. (All of this is encoded
            // in `ReadyKey`, so the pop order below *is* the seed's sorted
            // order: branch flag, then priority, then round-robin count,
            // then source index.)
            while slots_used < m.issue_width() {
                let Some(top) = heap.pop() else { break };
                let i = top.idx as usize;
                if rr_mode && top.epoch != epoch {
                    // Stale pass snapshot: re-key against this pass's
                    // frozen counts and push back.
                    let mut key = base_key[i];
                    key.rr = !rr_snapshot[home_of[i] as usize];
                    heap.push(ReadyEntry {
                        key,
                        epoch,
                        idx: top.idx,
                    });
                    continue;
                }
                // Resource probe: one transition-table load. `None` means
                // the op's class is saturated for this cycle (the width
                // itself cannot trip inside the `slots_used` guard), and
                // a class limit can only clear at a cycle boundary — so
                // the entry parks on its class's deferral list until the
                // cycle ends instead of churning through the heap once
                // per pass, as the seed's deferral queue did.
                let class = OpClass::ALL[class_of[i] as usize];
                let Some(next_state) = auto.go(state, class) else {
                    hazard_hits += 1;
                    deferral_parks += 1;
                    parked[class.index()].push(top);
                    continue;
                };
                // Dominator parallelism: drop this op if a scheduled twin
                // computes the identical value. Checked after the hazard
                // probe (the seed's limit checks also came first), but an
                // elimination consumes no resources: `state` advances
                // only on a real issue.
                if opts.dominator_parallelism {
                    if let Some(t) = find_twin(lr, &mut alias, &twin_buckets, origin_bucket[i], i) {
                        eliminate(lr, &mut sched, &mut alias, i, t);
                        pressure_eliminate(
                            lr,
                            i,
                            t,
                            &mut alias,
                            reg_uses,
                            reg_alive,
                            kills,
                            &mut live,
                            &mut pressure_peak,
                        );
                        remaining -= 1;
                        progressed = true;
                        progress_this_cycle = true;
                        let tc = sched.cycle_of[i].unwrap();
                        release_succs(ddg, i, tc, op_state, staged);
                        continue;
                    }
                }
                // Register-file ceiling: issuing this op's defs must not
                // overflow any finite class file, and filling a file to
                // its cap is reserved for ops that also free a register
                // (see `file_overflow`). Ranges that die this cycle still
                // occupy their registers until the boundary (the
                // verifier's model), so `live` already counts them.
                // Like a class park, a pressure park consumes no
                // resources and re-enters the ready queue at the cycle
                // boundary — after this cycle's kills have freed slots.
                if finite && !lr.lops[i].op.defs.is_empty() {
                    let frees = would_free(lr, i, exit_of[i], &mut alias, reg_uses, reg_alive);
                    if let Some((class, cap)) = file_overflow(&lr.lops[i].op, &live, &caps, &frees)
                    {
                        pressure_parks += 1;
                        last_block = Some((class, live[class.index()], cap));
                        pressure_parked.push(top);
                        continue;
                    }
                }
                // Issue.
                state = next_state;
                sched.cycle_of[i] = Some(cycle);
                issued_this_cycle.push(i);
                slots_used += 1;
                progressed = true;
                progress_this_cycle = true;
                pressure_issue(
                    lr,
                    i,
                    exit_of[i],
                    &mut alias,
                    reg_uses,
                    reg_alive,
                    kills,
                    &mut live,
                    &mut pressure_peak,
                );
                if rr_mode {
                    issued_per_node[home_of[i] as usize] += 1;
                }
                let e = exit_of[i];
                if e != u32::MAX {
                    sched.exit_cycles[e as usize] = cycle;
                }
                if opts.dominator_parallelism {
                    twin_buckets[origin_bucket[i] as usize].push(i as u32);
                }
                remaining -= 1;
                release_succs(ddg, i, cycle, op_state, staged);
            }
            // Pass end. Ops whose last dependence issued mid-pass join
            // the *next* pass — the seed's avail set was a snapshot taken
            // at pass start, and mid-pass releases never participated in
            // the running pass. (Class-parked entries stay parked: their
            // limits cannot clear before the cycle boundary.)
            for i in staged.drain(..) {
                if op_state[i].earliest <= cycle {
                    let mut key = base_key[i];
                    if rr_mode {
                        key.rr = !rr_snapshot[home_of[i] as usize];
                    }
                    heap.push(ReadyEntry {
                        key,
                        epoch,
                        idx: i as u32,
                    });
                } else {
                    future.push(Reverse((op_state[i].earliest, i as u32)));
                }
            }
            if !progressed || slots_used >= m.issue_width() {
                break;
            }
        }
        // Cycle boundary: registers whose last use (or unread def)
        // issued this cycle die now, freeing their slots for the next
        // cycle — unless an elimination revived the range by
        // transferring fresh uses onto it, in which case the kill is a
        // no-op (the use count is nonzero again).
        let mut freed = false;
        for r in kills.drain(..) {
            let c = r.class().index();
            let i = r.index() as usize;
            if reg_uses[c].get(i).copied().unwrap_or(0) == 0 && reg_alive[c][i] {
                reg_alive[c][i] = false;
                live[c] -= 1;
                freed = true;
            }
        }
        // Deterministic livelock check: if nothing issued or was
        // eliminated this cycle, no register died at this boundary, and
        // no op is waiting on a latency, then the next cycle replays
        // this one exactly — the pressure-parked ops can never fit the
        // file. Fail structurally (the robust pipeline spills and
        // retries) instead of spinning until the watchdog trips.
        if !progress_this_cycle && !freed && future.is_empty() && !pressure_parked.is_empty() {
            let (class, live_now, cap) = last_block.unwrap_or((RegClass::Gpr, 0, 0));
            return Err(SchedFailure::RegisterPressure {
                class,
                live: live_now,
                cap,
            });
        }
        // Every class's units replenish and freed registers are
        // available again, so all parked entries re-enter the ready
        // queue. Keys are unique (the `idx` complement), so heap pop
        // order is a pure function of the entry set — re-admission order
        // does not matter — and stale round-robin epochs re-key lazily
        // on pop exactly like any other entry.
        for p in parked.iter_mut() {
            heap.extend(p.drain(..));
        }
        heap.extend(pressure_parked.drain(..));

        // `clone` allocates exactly `len` (the scratch keeps its
        // capacity for the next cycle); an empty cycle clones without
        // allocating at all — cheaper than the seed's fresh
        // growth-reallocated vec per cycle.
        sched.cycles.push(issued_this_cycle.clone());
        cycle += 1;
        if (cycle as usize) > cycle_cap {
            return Err(SchedFailure::StepBudgetExceeded {
                steps: cycle as usize,
                budget: cycle_cap,
            });
        }
    }
    // Trim trailing empty cycles (can appear if the last issue cycle was
    // followed by bookkeeping-only iterations).
    while matches!(sched.cycles.last(), Some(c) if c.is_empty()) {
        sched.cycles.pop();
    }
    // Hand the heap backings back to the arena (error paths skip this —
    // only capacity is lost, and the next call re-takes empty vecs).
    scratch.heap = heap.into_vec();
    scratch.future = future.into_vec();
    LAST_METRICS.with(|c| {
        c.set(SchedMetrics {
            automaton_states: auto.state_count(),
            hazard_hits,
            deferral_parks,
            pressure_peak,
            pressure_parks,
        })
    });
    Ok(sched)
}

/// Adds `n` use occurrences of `r` to the per-class tables (growing the
/// class's table on first sight).
#[inline]
fn add_uses(tabs: &mut [Vec<u32>; 3], r: Reg, n: u32) {
    let t = &mut tabs[r.class().index()];
    let i = r.index() as usize;
    if i >= t.len() {
        t.resize(i + 1, 0);
    }
    t[i] += n;
}

/// Counts one use occurrence of `r` (see [`add_uses`]).
#[inline]
fn bump_use(tabs: &mut [Vec<u32>; 3], r: Reg) {
    add_uses(tabs, r, 1);
}

/// Consumes one use occurrence of `r` (alias-resolved by the caller);
/// `true` means that was the last one and the range dies at this cycle's
/// boundary.
#[inline]
fn drop_use(tabs: &mut [Vec<u32>; 3], r: Reg) -> bool {
    let t = &mut tabs[r.class().index()];
    let i = r.index() as usize;
    debug_assert!(t.get(i).copied().unwrap_or(0) > 0, "use underflow on {r}");
    t[i] -= 1;
    t[i] == 0
}

/// Opens `r`'s live range if it is not already open; returns `true` if it
/// did (the caller bumps the live count).
#[inline]
fn open_range(tabs: &mut [Vec<bool>; 3], r: Reg) -> bool {
    let t = &mut tabs[r.class().index()];
    let i = r.index() as usize;
    if i >= t.len() {
        t.resize(i + 1, false);
    }
    let fresh = !t[i];
    t[i] = true;
    fresh
}

/// Would issuing `op` (opening one live range per def) overflow a finite
/// register file? Returns the first violating class and its cap.
/// Registers dying this cycle still count — they hold their slots until
/// the boundary, exactly as the verifier charges them.
///
/// The last register of each class is *reserved for consumers*: an op may
/// fill its file to exactly `cap` only when `frees` says it releases a
/// register of that class at this cycle's boundary. Without the reserve,
/// greedy issue jams the file with same-priority producers (e.g. reloads
/// feeding different adds) and every consumer — which transiently needs
/// its operands *plus* its result live — deadlocks one register short.
#[inline]
fn file_overflow(
    op: &treegion_ir::Op,
    live: &[u32; 3],
    caps: &[Option<u32>; 3],
    frees: &[bool; 3],
) -> Option<(RegClass, u32)> {
    let mut need = [0u32; 3];
    for &d in &op.defs {
        let c = d.class().index();
        need[c] += 1;
        if let Some(cap) = caps[c] {
            if live[c] + need[c] > cap || (live[c] + need[c] == cap && !frees[c]) {
                return Some((RegClass::ALL[c], cap));
            }
        }
    }
    None
}

/// Dry-run of [`pressure_issue`]'s boundary kills: for each class, would
/// issuing lop `i` release at least one register at this cycle's
/// boundary? True when the op consumes some live register's entire
/// remaining use count (operands, guard, or exit-copy sources), or when
/// one of its own defs has no readers (such a range closes immediately).
fn would_free(
    lr: &LoweredRegion,
    i: usize,
    exit: u32,
    alias: &mut AliasTable,
    reg_uses: &[Vec<u32>; 3],
    reg_alive: &[Vec<bool>; 3],
) -> [bool; 3] {
    let mut freed = [false; 3];
    // Occurrence counts per resolved register — ops carry at most a
    // handful of operands, so a tiny linear table beats a hash map.
    let mut occ: Vec<(Reg, u32)> = Vec::with_capacity(4);
    let add_occ = |r: Reg, occ: &mut Vec<(Reg, u32)>| {
        if let Some(e) = occ.iter_mut().find(|e| e.0 == r) {
            e.1 += 1;
        } else {
            occ.push((r, 1));
        }
    };
    let l = &lr.lops[i];
    for &u in &l.op.uses {
        add_occ(alias.resolve(u), &mut occ);
    }
    if let Some(g) = l.guard {
        add_occ(alias.resolve(g), &mut occ);
    }
    if exit != u32::MAX {
        for &(_, src) in &lr.exits[exit as usize].copies {
            add_occ(alias.resolve(src), &mut occ);
        }
    }
    for &(r, n) in &occ {
        let c = r.class().index();
        let idx = r.index() as usize;
        if reg_alive[c].get(idx).copied().unwrap_or(false)
            && reg_uses[c].get(idx).copied().unwrap_or(0) == n
        {
            freed[c] = true;
        }
    }
    for &d in &l.op.defs {
        let c = d.class().index();
        if reg_uses[c].get(d.index() as usize).copied().unwrap_or(0) == 0 {
            freed[c] = true;
        }
    }
    freed
}

/// Pressure bookkeeping for an op that just issued: its alias-resolved
/// operand, guard, and — for an exit branch — exit-copy-source
/// occurrences are consumed (a register whose last occurrence this was
/// joins the cycle's kill list), and each def opens a live range on the
/// spot, charged against this cycle. A def nobody reads dies at this
/// cycle's boundary too.
#[allow(clippy::too_many_arguments)]
fn pressure_issue(
    lr: &LoweredRegion,
    i: usize,
    exit: u32,
    alias: &mut AliasTable,
    reg_uses: &mut [Vec<u32>; 3],
    reg_alive: &mut [Vec<bool>; 3],
    kills: &mut Vec<Reg>,
    live: &mut [u32; 3],
    peak: &mut [u32; 3],
) {
    let l = &lr.lops[i];
    for &u in &l.op.uses {
        let r = alias.resolve(u);
        if drop_use(reg_uses, r) {
            kills.push(r);
        }
    }
    if let Some(g) = l.guard {
        let r = alias.resolve(g);
        if drop_use(reg_uses, r) {
            kills.push(r);
        }
    }
    if exit != u32::MAX {
        for &(_, src) in &lr.exits[exit as usize].copies {
            let r = alias.resolve(src);
            if drop_use(reg_uses, r) {
                kills.push(r);
            }
        }
    }
    for &d in &l.op.defs {
        if open_range(reg_alive, d) {
            let c = d.class().index();
            live[c] += 1;
            peak[c] = peak[c].max(live[c]);
        }
        if reg_uses[d.class().index()]
            .get(d.index() as usize)
            .copied()
            .unwrap_or(0)
            == 0
        {
            kills.push(d);
        }
    }
}

/// Pressure bookkeeping for a dominator-parallelism elimination of `i`
/// in favour of its scheduled twin `t`: consumers of `i`'s defs now read
/// the twin's registers, so the eliminated defs' remaining use counts
/// transfer across — which can *revive* a twin range whose own uses were
/// already exhausted (it must stay occupied until the last transferred
/// use: re-opened and re-charged if it closed in an earlier cycle; if it
/// is merely pending-kill this cycle, the now-nonzero use count makes
/// the boundary kill a no-op). The eliminated op itself never issues, so
/// its own operand occurrences are consumed here. Everything is
/// conservative in the verifier's terms: a range never frees earlier
/// than the verifier's resolved-last-use model says it may.
#[allow(clippy::too_many_arguments)]
fn pressure_eliminate(
    lr: &LoweredRegion,
    i: usize,
    t: usize,
    alias: &mut AliasTable,
    reg_uses: &mut [Vec<u32>; 3],
    reg_alive: &mut [Vec<bool>; 3],
    kills: &mut Vec<Reg>,
    live: &mut [u32; 3],
    peak: &mut [u32; 3],
) {
    for (a, b) in lr.lops[i].op.defs.iter().zip(lr.lops[t].op.defs.iter()) {
        let ta = &mut reg_uses[a.class().index()];
        let ai = a.index() as usize;
        let n = ta.get(ai).copied().unwrap_or(0);
        if n == 0 {
            continue;
        }
        ta[ai] = 0;
        let r = alias.resolve(*b);
        if open_range(reg_alive, r) {
            let c = r.class().index();
            live[c] += 1;
            peak[c] = peak[c].max(live[c]);
        }
        add_uses(reg_uses, r, n);
    }
    let l = &lr.lops[i];
    for &u in &l.op.uses {
        let r = alias.resolve(u);
        if drop_use(reg_uses, r) {
            kills.push(r);
        }
    }
    if let Some(g) = l.guard {
        let r = alias.resolve(g);
        if drop_use(reg_uses, r) {
            kills.push(r);
        }
    }
}

/// Sort key of a ready op in the indexed ready queue.
///
/// The derived lexicographic `Ord` over the field order encodes exactly
/// the comparator the seed applied with `sort_by` on every issue pass —
/// branches first, then descending heuristic priority, then (RoundRobin
/// only) ascending per-node issue count, then ascending lop index — so a
/// max-heap pop sequence reproduces the sorted iteration byte for byte.
/// Ascending components (`rr`, `idx`) are stored bitwise-complemented so
/// that "smaller is better" becomes "larger is better" uniformly.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyKey {
    /// Branches ahead of everything else.
    branch: bool,
    /// Packed heuristic priority (see `heuristic::pack3`); higher first.
    prio: [u64; 4],
    /// `!issued_per_node[home]` under the pass's frozen snapshot
    /// (RoundRobin), `!0` under SourceOrder: fewer issues first.
    rr: u32,
    /// `!(lop index)`: earlier source position first.
    idx: u32,
}

/// A ready-queue element: the op, the key it was inserted with, and the
/// pass (`epoch`) whose round-robin snapshot produced the key. Stale
/// epochs are re-keyed lazily on pop.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyEntry {
    key: ReadyKey,
    epoch: u32,
    idx: u32,
}

/// Path-compressing union-find over renamed registers, one dense table
/// per register class (`u32::MAX` = "not aliased"). This is the
/// scheduler-internal mirror of [`Schedule::reg_alias`]: twin detection
/// resolves every use through it with indexed loads instead of the
/// seed's per-use `HashMap` chain walk. It is structurally cycle-free —
/// an alias is installed pointing at the *root* of its target's set, and
/// an eliminated def (always a fresh, unique renamed register) can never
/// already be somebody's root.
#[derive(Default)]
struct AliasTable {
    tables: [Vec<u32>; 3],
}

const NOT_ALIASED: u32 = u32::MAX;

impl AliasTable {
    /// Resolves `r` to its set root, compressing the walked path.
    fn resolve(&mut self, r: Reg) -> Reg {
        let t = &mut self.tables[r.class().index()];
        let start = r.index() as usize;
        if start >= t.len() || t[start] == NOT_ALIASED {
            return r;
        }
        let mut root = t[start];
        while let Some(&next) = t.get(root as usize) {
            if next == NOT_ALIASED {
                break;
            }
            root = next;
        }
        // Path compression: point every chain element at the root.
        let mut cur = start;
        while t[cur] != NOT_ALIASED && t[cur] != root {
            let next = t[cur] as usize;
            t[cur] = root;
            cur = next;
        }
        Reg::new(r.class(), root)
    }

    /// Records `a -> root(b)`.
    fn union(&mut self, a: Reg, b: Reg) {
        debug_assert_eq!(a.class(), b.class(), "twin defs must agree on class");
        let root = self.resolve(b);
        debug_assert_ne!(root, a, "aliasing {a} into its own set would form a cycle");
        let t = &mut self.tables[a.class().index()];
        let i = a.index() as usize;
        if i >= t.len() {
            t.resize(i + 1, NOT_ALIASED);
        }
        t[i] = root.index();
    }
}

/// Per-op dynamic scheduling state: unscheduled predecessor count and
/// earliest permissible start cycle, interleaved for locality.
#[derive(Copy, Clone)]
struct OpState {
    pending: u32,
    earliest: u32,
}

fn release_succs(
    ddg: &Ddg,
    i: usize,
    cycle: u32,
    op_state: &mut [OpState],
    staged: &mut Vec<usize>,
) {
    for e in ddg.succs(i) {
        let t = e.to;
        let st = &mut op_state[t];
        st.earliest = st.earliest.max(cycle + e.latency);
        st.pending -= 1;
        if st.pending == 0 {
            staged.push(t);
        }
    }
}

/// Finds a scheduled twin of `i` computing the identical value: same
/// origin position, same opcode/immediate/target/guard, identical
/// alias-resolved uses. Branches, PBRs, and side-effecting ops are never
/// merged (only speculable value computations exhibit dominator
/// parallelism).
fn find_twin(
    lr: &LoweredRegion,
    alias: &mut AliasTable,
    twin_buckets: &[Vec<u32>],
    bucket: u32,
    i: usize,
) -> Option<usize> {
    let l = &lr.lops[i];
    if !l.op.opcode.is_speculable()
        || matches!(
            l.kind,
            LOpKind::ExitBranch(_) | LOpKind::InternalBranch | LOpKind::PrepareBranch
        )
        || l.guard.is_some()
    {
        return None;
    }
    let candidates = &twin_buckets[bucket as usize];
    'outer: for &t in candidates {
        let t = t as usize;
        let tl = &lr.lops[t];
        if tl.op.opcode != l.op.opcode
            || tl.op.imm != l.op.imm
            || tl.op.target != l.op.target
            || tl.guard != l.guard
            || tl.op.uses.len() != l.op.uses.len()
        {
            continue;
        }
        for (a, b) in l.op.uses.iter().zip(tl.op.uses.iter()) {
            if alias.resolve(*a) != alias.resolve(*b) {
                continue 'outer;
            }
        }
        return Some(t);
    }
    None
}

/// Records the elimination of `i` in favour of its twin `t`: `i`'s defs
/// alias to `t`'s defs and `i` inherits `t`'s issue cycle (its value is
/// available wherever `t`'s is). The public `reg_alias` map receives the
/// raw `def(i) -> def(t)` entries (exactly as the seed recorded them);
/// the internal union-find additionally records the compressed root.
fn eliminate(lr: &LoweredRegion, sched: &mut Schedule, alias: &mut AliasTable, i: usize, t: usize) {
    for (a, b) in lr.lops[i].op.defs.iter().zip(lr.lops[t].op.defs.iter()) {
        sched.reg_alias.insert(*a, *b);
        alias.union(*a, *b);
    }
    sched.cycle_of[i] = sched.cycle_of[t];
    sched.eliminated.push((i, t));
}

/// Renders a schedule as a Figure 4/5-style table (one row per cycle, one
/// column per issue slot).
///
/// Every one of the machine's `issue_width` columns uses one uniform
/// width (the widest cell anywhere in the table, floor 8). The seed
/// widened only columns that held an op in *some* row, so a trailing
/// always-empty slot rendered at the 8-character floor and its border
/// fell out of line with the occupied columns.
pub fn render_schedule(lr: &LoweredRegion, sched: &Schedule, m: &MachineModel) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let width = m.issue_width();
    let cell = |i: usize| -> String { format!("{}", lr.lops[i].op) };
    let mut w = 8usize;
    for row in &sched.cycles {
        for &i in row {
            w = w.max(cell(i).len());
        }
    }
    for (c, row) in sched.cycles.iter().enumerate() {
        let _ = write!(out, "{c:>3} |");
        for s in 0..width {
            let text = row.get(s).map(|&i| cell(i)).unwrap_or_default();
            let _ = write!(out, " {text:<w$} |");
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "exits: {}",
        lr.exits
            .iter()
            .enumerate()
            .map(|(e, x)| format!(
                "{}@{} (w={})",
                x.target
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "ret".into()),
                sched.exit_height(e),
                x.count
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_region;
    use crate::{form_basic_blocks, form_treegions};
    use treegion_analysis::{Cfg, Liveness};
    use treegion_ir::{Cond, Function, FunctionBuilder, Op, Opcode};

    fn lower_entry(f: &Function, treegion: bool) -> LoweredRegion {
        let set = if treegion {
            form_treegions(f)
        } else {
            form_basic_blocks(f)
        };
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let r = set.region(set.region_of(f.entry()).unwrap()).clone();
        lower_region(f, &r, &live, None)
    }

    fn sched(lr: &LoweredRegion, m: &MachineModel) -> Schedule {
        schedule_region(lr, m, &ScheduleOptions::default())
    }

    #[test]
    fn respects_issue_width() {
        // Eight independent movis on a 4-wide machine: 2 cycles + ret.
        let mut b = FunctionBuilder::new("w");
        let bb0 = b.block();
        for k in 0..8 {
            let r = b.gpr();
            b.push(bb0, Op::movi(r, k));
        }
        b.ret(bb0, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_4u());
        for c in &s.cycles {
            assert!(c.len() <= 4);
        }
        assert_eq!(s.cycles[0].len(), 4);
        assert_eq!(s.cycles[1].len(), 4);
    }

    #[test]
    fn respects_latency() {
        // load -> add: add must issue >= 2 cycles after the load.
        let mut b = FunctionBuilder::new("lat");
        let bb0 = b.block();
        let (a, x, y) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::load(x, a, 0), Op::add(y, x, x)]);
        b.ret(bb0, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_4u());
        let load = lr
            .lops
            .iter()
            .position(|l| l.op.opcode == Opcode::Load)
            .unwrap();
        let add = lr
            .lops
            .iter()
            .position(|l| l.op.opcode == Opcode::Add)
            .unwrap();
        assert!(s.cycle_of[add].unwrap() >= s.cycle_of[load].unwrap() + 2);
    }

    #[test]
    fn single_issue_machine_serializes_everything() {
        let mut b = FunctionBuilder::new("s1");
        let bb0 = b.block();
        for k in 0..5 {
            let r = b.gpr();
            b.push(bb0, Op::movi(r, k));
        }
        b.ret(bb0, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_1u());
        assert_eq!(s.length(), 6); // 5 movis + ret
        assert_eq!(s.issued_ops(), 6);
    }

    #[test]
    fn estimated_time_weights_exits() {
        // Branchy region; time must equal Σ count × height.
        let mut b = FunctionBuilder::new("est");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (x, y, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            bb0,
            [Op::movi(x, 1), Op::movi(y, 2), Op::cmp(Cond::Lt, c, x, y)],
        );
        b.branch(bb0, c, (bb1, 70.0), (bb2, 30.0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_4u());
        let manual: f64 = lr
            .exits
            .iter()
            .enumerate()
            .map(|(e, x)| x.count * s.exit_height(e) as f64)
            .sum();
        assert_eq!(s.estimated_time(&lr), manual);
        assert!(manual > 0.0);
    }

    #[test]
    fn wider_machine_is_never_slower() {
        let mut b = FunctionBuilder::new("wide");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let regs: Vec<_> = (0..6).map(|_| b.gpr()).collect();
        for (k, &r) in regs.iter().enumerate() {
            b.push(bb0, Op::movi(r, k as i64));
        }
        let c = b.gpr();
        b.push(bb0, Op::cmp(Cond::Lt, c, regs[0], regs[1]));
        b.branch(bb0, c, (bb1, 50.0), (bb2, 50.0));
        b.push(bb1, Op::add(regs[2], regs[0], regs[1]));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let t4 = sched(&lr, &MachineModel::model_4u()).estimated_time(&lr);
        let t8 = sched(&lr, &MachineModel::model_8u()).estimated_time(&lr);
        let t1 = sched(&lr, &MachineModel::model_1u()).estimated_time(&lr);
        assert!(t8 <= t4, "8U {t8} > 4U {t4}");
        assert!(t4 <= t1, "4U {t4} > 1U {t1}");
    }

    #[test]
    fn branch_limit_is_enforced() {
        // Three exits; with branch limit 1, at most one branch per cycle.
        let mut b = FunctionBuilder::new("bl");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let on = b.gpr();
        b.push(ids[0], Op::movi(on, 0));
        b.switch(
            ids[0],
            on,
            vec![(0, ids[1], 5.0), (1, ids[2], 5.0)],
            (ids[3], 5.0),
        );
        for &i in &ids[1..] {
            b.ret(i, None);
        }
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::builder("4b1", 4)
            .branch_limit(Some(1))
            .build();
        let s = sched(&lr, &m);
        for c in &s.cycles {
            let branches = c
                .iter()
                .filter(|&&i| lr.lops[i].op.opcode.is_branch())
                .count();
            assert!(branches <= 1);
        }
    }

    #[test]
    fn all_ops_scheduled_exactly_once() {
        let mut b = FunctionBuilder::new("once");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (a, x, c) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::load(x, a, 0), Op::movi(c, 1)]);
        b.branch(bb0, c, (bb1, 1.0), (bb2, 1.0));
        b.push(bb1, Op::store(a, x, 8));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let s = sched(&lr, &MachineModel::model_4u());
        assert_eq!(s.issued_ops(), lr.lops.len());
        let mut seen = std::collections::HashSet::new();
        for c in &s.cycles {
            for &i in c {
                assert!(seen.insert(i));
            }
        }
        assert_eq!(seen.len(), lr.lops.len());
    }

    #[test]
    fn mem_port_limit_is_enforced() {
        // Four independent loads on a 4-wide machine with 1 memory port:
        // loads must spread over four cycles.
        let mut b = FunctionBuilder::new("mp");
        let bb0 = b.block();
        let base = b.gpr();
        for k in 0..4 {
            let d = b.gpr();
            b.push(bb0, Op::load(d, base, k * 8));
        }
        b.ret(bb0, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::builder("4m1", 4).mem_ports(Some(1)).build();
        let s = sched(&lr, &m);
        for c in &s.cycles {
            let mems = c
                .iter()
                .filter(|&&i| lr.lops[i].op.opcode.is_memory())
                .count();
            assert!(mems <= 1);
        }
        let unlimited = sched(&lr, &MachineModel::model_4u());
        assert!(s.length() > unlimited.length());
    }

    #[test]
    fn round_robin_tie_break_interleaves_paths() {
        // A 3-way switch with symmetric case bodies: under round-robin the
        // first cycle after the root should draw ops from distinct nodes.
        let mut b = FunctionBuilder::new("rr");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let on = b.gpr();
        b.push(ids[0], Op::movi(on, 0));
        let mut regs = Vec::new();
        for (k, &id) in ids.iter().enumerate().take(4).skip(1) {
            let (x, y) = (b.gpr(), b.gpr());
            b.push(id, Op::movi(x, k as i64));
            b.push(id, Op::add(y, x, x));
            b.ret(id, Some(y));
            regs.push((x, y));
        }
        b.switch(
            ids[0],
            on,
            vec![(0, ids[1], 5.0), (1, ids[2], 5.0)],
            (ids[3], 5.0),
        );
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::model_4u();
        for tb in [TieBreak::SourceOrder, TieBreak::RoundRobin] {
            let s = schedule_region(
                &lr,
                &m,
                &ScheduleOptions {
                    heuristic: Heuristic::DependenceHeight,
                    dominator_parallelism: false,
                    tie_break: tb,
                },
            );
            assert_eq!(s.issued_ops(), lr.lops.len(), "{tb:?}");
        }
        // Round-robin must spread same-priority movis across nodes within
        // the first movi-bearing cycle (sanity: schedule verifies; the
        // interleaving property itself is covered by the ablation bench).
    }

    #[test]
    #[should_panic(expected = "cyclic reg_alias")]
    fn resolve_panics_on_cyclic_alias_instead_of_hanging() {
        // The seed's resolve spun forever on a hand-built cycle in the
        // public map; the bounded walk must detect it and panic.
        let a = Reg::gpr(1);
        let b = Reg::gpr(2);
        let mut reg_alias = HashMap::new();
        reg_alias.insert(a, b);
        reg_alias.insert(b, a);
        let s = Schedule {
            cycles: Vec::new(),
            cycle_of: Vec::new(),
            exit_cycles: Vec::new(),
            eliminated: Vec::new(),
            reg_alias,
        };
        let _ = s.resolve(a);
    }

    #[test]
    fn resolve_follows_acyclic_chains() {
        // Chains of any depth (the scheduler only builds depth <= 1, but
        // the public map is hand-editable) resolve to the final target.
        let (a, b, c) = (Reg::gpr(1), Reg::gpr(2), Reg::gpr(3));
        let mut reg_alias = HashMap::new();
        reg_alias.insert(a, b);
        reg_alias.insert(b, c);
        let s = Schedule {
            cycles: Vec::new(),
            cycle_of: Vec::new(),
            exit_cycles: Vec::new(),
            eliminated: Vec::new(),
            reg_alias,
        };
        assert_eq!(s.resolve(a), c);
        assert_eq!(s.resolve(b), c);
        assert_eq!(s.resolve(c), c);
        assert_eq!(s.resolve(Reg::gpr(9)), Reg::gpr(9));
    }

    #[test]
    fn pressure_peak_is_tracked_on_unbounded_machines() {
        // movi x; movi y; z = x + y; ret z — x and y overlap, so at
        // least two GPR ranges are simultaneously live.
        let mut b = FunctionBuilder::new("pp");
        let bb0 = b.block();
        let (x, y, z) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::movi(x, 1), Op::movi(y, 2), Op::add(z, x, y)]);
        b.ret(bb0, Some(z));
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let _ = sched(&lr, &MachineModel::model_4u());
        let mm = last_sched_metrics();
        assert!(
            mm.pressure_peak[RegClass::Gpr.index()] >= 2,
            "{:?}",
            mm.pressure_peak
        );
        assert_eq!(mm.pressure_parks, 0);
    }

    #[test]
    fn finite_file_defers_defs_to_later_cycles() {
        // Eight dead movis on a 4-wide machine: unbounded packs four defs
        // per cycle; a 1-register file admits one def per cycle (a dead
        // def still occupies its register until the cycle boundary).
        let mut b = FunctionBuilder::new("f1");
        let bb0 = b.block();
        for k in 0..8 {
            let r = b.gpr();
            b.push(bb0, Op::movi(r, k));
        }
        b.ret(bb0, None);
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::model_4u().with_gpr_file(1);
        let s = sched(&lr, &m);
        for c in &s.cycles {
            let defs: usize = c.iter().map(|&i| lr.lops[i].op.defs.len()).sum();
            assert!(defs <= 1, "cycle with {defs} defs under a 1-reg file");
        }
        assert_eq!(s.issued_ops(), lr.lops.len());
        let mm = last_sched_metrics();
        assert!(mm.pressure_parks > 0);
        assert_eq!(mm.pressure_peak[RegClass::Gpr.index()], 1);
        // And a file with slack changes nothing: byte-identical cycles.
        let unbounded = sched(&lr, &MachineModel::model_4u());
        let slack = sched(&lr, &MachineModel::model_4u().with_gpr_file(64));
        assert_eq!(unbounded.cycles, slack.cycles);
    }

    #[test]
    fn impossible_pressure_is_a_structured_failure() {
        // z = x + y needs x and y live together; a 1-GPR file can never
        // hold both, and nothing ever dies to break the tie — the
        // scheduler must detect the livelock deterministically rather
        // than spin to the watchdog. (With the consumer reserve the
        // movis never issue at all: each would fill the file without
        // freeing anything, so the livelock is caught at zero live.)
        let mut b = FunctionBuilder::new("rp");
        let bb0 = b.block();
        let (x, y, z) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::movi(x, 1), Op::movi(y, 2), Op::add(z, x, y)]);
        b.ret(bb0, Some(z));
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::model_4u().with_gpr_file(1);
        let err = try_schedule_region(&lr, &m, &ScheduleOptions::default(), &Budgets::UNLIMITED)
            .unwrap_err();
        match err {
            SchedFailure::RegisterPressure { class, live, cap } => {
                assert_eq!(class, RegClass::Gpr);
                assert_eq!(cap, 1);
                assert!(live <= cap, "parking never admits an overflow");
            }
            other => panic!("expected RegisterPressure, got {other:?}"),
        }
    }

    #[test]
    fn live_in_registers_count_against_the_file() {
        // A region that only reads a live-in (load from it) still holds
        // one GPR from cycle 0.
        let mut b = FunctionBuilder::new("li");
        let bb0 = b.block();
        let (a, x) = (b.gpr(), b.gpr());
        b.push(bb0, Op::load(x, a, 0));
        b.ret(bb0, Some(x));
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let _ = sched(&lr, &MachineModel::model_4u());
        let mm = last_sched_metrics();
        assert!(
            mm.pressure_peak[RegClass::Gpr.index()] >= 2,
            "live-in `a` plus loaded `x` must both be charged: {:?}",
            mm.pressure_peak
        );
    }

    #[test]
    fn render_produces_rows_per_cycle() {
        let mut b = FunctionBuilder::new("r");
        let bb0 = b.block();
        let x = b.gpr();
        b.push(bb0, Op::movi(x, 1));
        b.ret(bb0, Some(x));
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::model_4u();
        let s = sched(&lr, &m);
        let text = render_schedule(&lr, &s, &m);
        assert_eq!(text.lines().count(), s.length() + 1);
        assert!(text.contains("movi"));
        assert!(text.contains("exits:"));
    }

    #[test]
    fn render_aligns_trailing_empty_slots() {
        // One op per cycle on an 8-wide machine: slots 1..7 are empty in
        // every row. The seed widened only slots that held an op in some
        // row, so those trailing columns fell out of line; now all
        // `issue_width` columns share one uniform width.
        let mut b = FunctionBuilder::new("align");
        let bb0 = b.block();
        let (a, x, y) = (b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::load(x, a, 0), Op::add(y, x, x)]);
        b.ret(bb0, Some(y));
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::model_8u();
        let s = sched(&lr, &m);
        let text = render_schedule(&lr, &s, &m);
        let rows: Vec<&str> = text.lines().filter(|l| !l.starts_with("exits:")).collect();
        assert!(rows.len() >= 2);
        // Every row renders every slot: uniform line length and exactly
        // issue_width + 1 column separators per row.
        let len0 = rows[0].len();
        for r in &rows {
            assert_eq!(r.len(), len0, "misaligned row: {r:?}");
            assert_eq!(
                r.matches('|').count(),
                m.issue_width() + 1,
                "row missing slots: {r:?}"
            );
        }
    }

    #[test]
    fn render_snapshot_single_cycle() {
        // Exact-output snapshot: one movi + ret on a 1-wide machine.
        let mut b = FunctionBuilder::new("snap");
        let bb0 = b.block();
        let x = b.gpr();
        b.push(bb0, Op::movi(x, 7));
        b.ret(bb0, Some(x));
        let f = b.finish();
        let lr = lower_entry(&f, true);
        let m = MachineModel::model_1u();
        let s = sched(&lr, &m);
        let text = render_schedule(&lr, &s, &m);
        let cell0 = format!("{}", lr.lops[s.cycles[0][0]].op);
        let cell1 = format!("{}", lr.lops[s.cycles[1][0]].op);
        let w = cell0.len().max(cell1.len()).max(8);
        let expected = format!("  0 | {cell0:<w$} |\n  1 | {cell1:<w$} |\nexits: ret@2 (w=1)\n");
        assert_eq!(text, expected);
    }
}
