//! Fault containment metadata: retry policies and [`ContainmentEvent`]s.
//!
//! PR 1 gave the pipeline *structured* failure handling — verifier
//! rejections and budget trips degrade through the fallback chain and are
//! recorded as [`crate::DegradationEvent`]s. This module adds the
//! vocabulary for the *unstructured* failures that layer cannot see:
//! panics and wall-clock deadline trips, contained at the harness-cell
//! level by the evaluation runner (`treegion-eval`) and at the region
//! level by `schedule_function_robust`.
//!
//! A [`ContainmentEvent`] records one contained incident — which scope
//! (harness cell or region) failed, on which attempt, why
//! ([`ContainmentCause`]), and what the containment layer did about it
//! ([`ContainmentAction`]: retried with backoff, recovered on a later
//! attempt, or quarantined after exhausting the [`RetryPolicy`]).
//! Containment events ride alongside the existing degradation events in
//! eval reports and map to exit code 3 in the CLI (see DESIGN.md §9).

use std::fmt;

/// How many times a failing unit of work is attempted, and how the delay
/// between attempts grows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per unit (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Backoff before retry `k` (the second attempt is retry 1) is
    /// `base_backoff_ms << (k - 1)` milliseconds, capped at
    /// [`RetryPolicy::MAX_BACKOFF_MS`].
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10,
        }
    }
}

impl RetryPolicy {
    /// Upper bound on a single backoff sleep, whatever the exponent says.
    pub const MAX_BACKOFF_MS: u64 = 5_000;

    /// A policy that never retries (one attempt, straight to quarantine).
    pub const NO_RETRY: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        base_backoff_ms: 0,
    };

    /// The exponential backoff, in milliseconds, to sleep before the
    /// given retry (`retry >= 1`; retry 1 is the second attempt).
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let shift = retry.saturating_sub(1).min(16);
        self.base_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(Self::MAX_BACKOFF_MS)
    }

    /// `max_attempts`, clamped to at least one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// Why one attempt of a contained unit of work failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainmentCause {
    /// The attempt panicked; the unwind was caught.
    Panic {
        /// Stringified panic payload.
        payload: String,
    },
    /// The attempt exceeded its wall-clock deadline.
    Deadline {
        /// The configured deadline in milliseconds.
        budget_ms: u64,
    },
    /// The attempt failed with a structured error (e.g. a terminal
    /// [`crate::PipelineError`] after the degradation chain exhausted).
    Failure {
        /// Rendered error message.
        message: String,
    },
}

impl ContainmentCause {
    /// Short machine-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ContainmentCause::Panic { .. } => "panic",
            ContainmentCause::Deadline { .. } => "deadline",
            ContainmentCause::Failure { .. } => "failure",
        }
    }

    /// The human-readable detail of the cause.
    pub fn detail(&self) -> String {
        match self {
            ContainmentCause::Panic { payload } => payload.clone(),
            ContainmentCause::Deadline { budget_ms } => {
                format!("exceeded the {budget_ms} ms deadline")
            }
            ContainmentCause::Failure { message } => message.clone(),
        }
    }
}

impl fmt::Display for ContainmentCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.label(), self.detail())
    }
}

/// What the containment layer did after one failed attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContainmentAction {
    /// The unit will be retried after the given backoff.
    Retried {
        /// Backoff slept before the next attempt, in milliseconds.
        backoff_ms: u64,
    },
    /// A later attempt of the same unit succeeded; the run is complete
    /// despite this failure.
    Recovered,
    /// Every attempt failed; the unit's input was written to the
    /// quarantine corpus and excluded from the run.
    Quarantined,
}

impl fmt::Display for ContainmentAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainmentAction::Retried { backoff_ms } => {
                write!(f, "retried after {backoff_ms} ms")
            }
            ContainmentAction::Recovered => f.write_str("recovered"),
            ContainmentAction::Quarantined => f.write_str("quarantined"),
        }
    }
}

/// One contained incident: scope, attempt number, cause, and the action
/// taken. Emitted by the evaluation runner (per harness cell) and by the
/// CLI (for region-level contained failures surfaced through
/// [`crate::DegradationEvent`]s).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainmentEvent {
    /// What failed: a harness cell name (`"fig8@4u"`) or a region label
    /// (`"func/region#3"`).
    pub scope: String,
    /// 1-based attempt number that produced this incident.
    pub attempt: u32,
    /// Why the attempt failed.
    pub cause: ContainmentCause,
    /// What the containment layer did about it.
    pub action: ContainmentAction,
}

impl fmt::Display for ContainmentEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (attempt {}): {} -> {}",
            self.scope, self.attempt, self.cause, self.action
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 10,
        };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(3), 40);
        // Deep retries are capped, and huge shifts cannot overflow.
        assert_eq!(p.backoff_ms(30), RetryPolicy::MAX_BACKOFF_MS);
        assert_eq!(p.backoff_ms(u32::MAX), RetryPolicy::MAX_BACKOFF_MS);
        assert_eq!(RetryPolicy::NO_RETRY.attempts(), 1);
        assert_eq!(
            RetryPolicy {
                max_attempts: 0,
                base_backoff_ms: 1
            }
            .attempts(),
            1
        );
    }

    #[test]
    fn event_display_reads_well() {
        let e = ContainmentEvent {
            scope: "fig8@4u".into(),
            attempt: 2,
            cause: ContainmentCause::Panic {
                payload: "boom".into(),
            },
            action: ContainmentAction::Quarantined,
        };
        let s = e.to_string();
        assert!(s.contains("fig8@4u"), "{s}");
        assert!(s.contains("attempt 2"), "{s}");
        assert!(s.contains("panic: boom"), "{s}");
        assert!(s.contains("quarantined"), "{s}");
        let d = ContainmentCause::Deadline { budget_ms: 50 };
        assert_eq!(d.label(), "deadline");
        assert!(d.to_string().contains("50 ms"));
        assert_eq!(
            ContainmentAction::Retried { backoff_ms: 20 }.to_string(),
            "retried after 20 ms"
        );
    }
}
