//! Deterministic, seeded fault injection for the scheduling pipeline.
//!
//! A [`FaultInjector`] perturbs the artifacts of one region's scheduling
//! run — the dependence graph the scheduler consumes, the scheduler's
//! heuristic configuration, or the finished [`Schedule`] itself — in ways
//! that model real scheduler bugs. Each [`FaultClass`] is designed so that
//! [`crate::verify_schedule`], run against the *true* (uncorrupted) DDG,
//! attributes the damage to one specific [`ScheduleErrorKind`] (see
//! [`FaultClass::expected_kind`]); two classes are deliberately invisible
//! to the static verifier and exist to document its blind spots:
//!
//! * [`FaultClass::PerturbPriority`] only changes heuristic choices, so
//!   every resulting schedule is valid (possibly slower) — the verifier
//!   checks legality, not optimality.
//! * [`FaultClass::SkipRenamingRepair`] drops the compensation copies an
//!   exit would apply; the schedule's issue structure is untouched, so
//!   only *dynamic* differential simulation can expose the wrong
//!   architectural state.
//!
//! Faults are driven by a [`treegion_rng::StdRng`], so a bare `u64` seed
//! reproduces the exact same fault sites — the property the degradation
//! chain's tests and the `--fault-seed` CLI flag rely on.

use crate::ddg::Ddg;
use crate::heuristic::Heuristic;
use crate::lower::LoweredRegion;
use crate::sched::{Schedule, ScheduleOptions, TieBreak};
use crate::verify_sched::ScheduleErrorKind;
use std::fmt;
use treegion_machine::MachineModel;
use treegion_rng::StdRng;

/// One class of injectable scheduler fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Drop a latency-carrying dependence edge before scheduling: the
    /// scheduler plans against an incomplete graph.
    DropDdgEdge,
    /// Swap the priority heuristic and tie-break for random ones: a
    /// "wrong-but-legal" decision fault.
    PerturbPriority,
    /// Remove an issued op from its cycle row (bookkeeping still claims it
    /// issued).
    OmitOp,
    /// Issue an op a second time in the final cycle.
    DoubleIssue,
    /// Cram every issued op into cycle 0, blowing the issue width.
    OverfillCycle,
    /// Hoist the consumer of a latency-carrying edge above the point its
    /// input is ready.
    HoistConsumer,
    /// Record a fake dominator-parallelism elimination whose "surviving
    /// twin" never issues.
    BogusElimination,
    /// Shift one exit's recorded branch cycle off by one.
    ShiftExitCycle,
    /// Drop the renaming compensation copies from every exit (statically
    /// invisible; dynamically wrong).
    SkipRenamingRepair,
}

impl FaultClass {
    /// Every fault class, in a fixed order (stable across releases so that
    /// seeded fault streams stay reproducible).
    pub const ALL: [FaultClass; 9] = [
        FaultClass::DropDdgEdge,
        FaultClass::PerturbPriority,
        FaultClass::OmitOp,
        FaultClass::DoubleIssue,
        FaultClass::OverfillCycle,
        FaultClass::HoistConsumer,
        FaultClass::BogusElimination,
        FaultClass::ShiftExitCycle,
        FaultClass::SkipRenamingRepair,
    ];

    /// Short machine-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::DropDdgEdge => "drop-ddg-edge",
            FaultClass::PerturbPriority => "perturb-priority",
            FaultClass::OmitOp => "omit-op",
            FaultClass::DoubleIssue => "double-issue",
            FaultClass::OverfillCycle => "overfill-cycle",
            FaultClass::HoistConsumer => "hoist-consumer",
            FaultClass::BogusElimination => "bogus-elimination",
            FaultClass::ShiftExitCycle => "shift-exit-cycle",
            FaultClass::SkipRenamingRepair => "skip-renaming-repair",
        }
    }

    /// The [`ScheduleErrorKind`] the static verifier attributes this fault
    /// to when it manifests, or `None` for the two classes the static
    /// verifier cannot see ([`FaultClass::PerturbPriority`] produces valid
    /// schedules; [`FaultClass::SkipRenamingRepair`] is only caught by
    /// dynamic differential simulation).
    pub fn expected_kind(&self) -> Option<ScheduleErrorKind> {
        match self {
            FaultClass::DropDdgEdge => Some(ScheduleErrorKind::LatencyViolation),
            FaultClass::PerturbPriority => None,
            FaultClass::OmitOp => Some(ScheduleErrorKind::MissingOp),
            FaultClass::DoubleIssue => Some(ScheduleErrorKind::DoubleIssue),
            FaultClass::OverfillCycle => Some(ScheduleErrorKind::WidthOverflow),
            FaultClass::HoistConsumer => Some(ScheduleErrorKind::LatencyViolation),
            FaultClass::BogusElimination => Some(ScheduleErrorKind::BogusElimination),
            FaultClass::ShiftExitCycle => Some(ScheduleErrorKind::ExitMismatch),
            FaultClass::SkipRenamingRepair => None,
        }
    }

    /// `true` if the fault is applied *before* scheduling (to the DDG or
    /// the scheduler options) rather than to the finished schedule.
    pub fn is_pre_schedule(&self) -> bool {
        matches!(self, FaultClass::DropDdgEdge | FaultClass::PerturbPriority)
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A reproducible fault campaign: which classes may fire, how often, and
/// under which seed.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's deterministic RNG.
    pub seed: u64,
    /// Classes eligible for injection (picked uniformly per region).
    pub classes: Vec<FaultClass>,
    /// Probability that a given region receives a fault at all.
    pub probability: f64,
}

impl FaultPlan {
    /// The default campaign the CLI's `--fault-seed` flag runs: every
    /// class eligible, every region faulted.
    pub fn from_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            classes: FaultClass::ALL.to_vec(),
            probability: 1.0,
        }
    }

    /// A campaign injecting exactly one class into every region — what
    /// the targeted detection/recovery tests use.
    pub fn single(seed: u64, class: FaultClass) -> Self {
        FaultPlan {
            seed,
            classes: vec![class],
            probability: 1.0,
        }
    }
}

/// Stateful injector: owns the RNG stream and a log of what it did.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: StdRng,
    classes: Vec<FaultClass>,
    probability: f64,
    /// Every fault actually *applied* (a chosen class whose corruption
    /// found no viable site in the region is not logged).
    pub injected: Vec<FaultClass>,
}

impl FaultInjector {
    /// Builds an injector executing `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(plan.seed),
            classes: plan.classes.clone(),
            probability: plan.probability,
            injected: Vec::new(),
        }
    }

    /// Decides whether (and which) fault the next region receives. Always
    /// consumes the same amount of randomness, so downstream regions see a
    /// stable stream regardless of earlier outcomes.
    pub fn choose(&mut self) -> Option<FaultClass> {
        let fire = self.rng.gen_bool(self.probability);
        if self.classes.is_empty() {
            return None;
        }
        let class = self.classes[self.rng.pick_index(&self.classes)];
        fire.then_some(class)
    }

    /// Applies a pre-schedule fault to the graph/options the scheduler
    /// will consume. Returns `true` if a viable fault site existed.
    pub fn corrupt_pre(
        &mut self,
        class: FaultClass,
        ddg: &mut Ddg,
        opts: &mut ScheduleOptions,
    ) -> bool {
        let applied = match class {
            FaultClass::DropDdgEdge => {
                let sites: Vec<usize> = ddg
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.latency > 0)
                    .map(|(k, _)| k)
                    .collect();
                if sites.is_empty() {
                    false
                } else {
                    let k = sites[self.rng.pick_index(&sites)];
                    ddg.remove_edge(k);
                    true
                }
            }
            FaultClass::PerturbPriority => {
                opts.heuristic = Heuristic::ALL[self.rng.pick_index(&Heuristic::ALL)];
                opts.tie_break = if self.rng.gen_bool(0.5) {
                    TieBreak::SourceOrder
                } else {
                    TieBreak::RoundRobin
                };
                true
            }
            _ => false,
        };
        if applied {
            self.injected.push(class);
        }
        applied
    }

    /// Applies a post-schedule fault to the finished schedule (or, for
    /// [`FaultClass::SkipRenamingRepair`], to the lowered region's exits).
    /// Returns `true` if a viable fault site existed.
    pub fn corrupt_post(
        &mut self,
        class: FaultClass,
        lr: &mut LoweredRegion,
        m: &MachineModel,
        sched: &mut Schedule,
    ) -> bool {
        let issued: Vec<usize> = sched.cycles.iter().flatten().copied().collect();
        let applied = match class {
            FaultClass::OmitOp => match self.pick(&issued) {
                Some(i) => {
                    for row in sched.cycles.iter_mut() {
                        row.retain(|&x| x != i);
                    }
                    // cycle_of still claims the op issued: the verifier's
                    // completeness pass must notice it never did.
                    true
                }
                None => false,
            },
            FaultClass::DoubleIssue => match self.pick(&issued) {
                Some(i) => {
                    sched
                        .cycles
                        .last_mut()
                        .expect("issued op implies a cycle")
                        .push(i);
                    true
                }
                None => false,
            },
            FaultClass::OverfillCycle => {
                if issued.len() <= m.issue_width() {
                    false
                } else {
                    for &i in &issued {
                        sched.cycle_of[i] = Some(0);
                    }
                    sched.cycles = vec![issued.clone()];
                    true
                }
            }
            FaultClass::HoistConsumer => {
                // Rebuild the true DDG to find a latency-carrying edge
                // whose consumer can be hoisted into a legal-looking slot
                // that violates only that edge.
                let ddg = Ddg::build(lr, m);
                self.hoist_consumer(lr, &ddg, m, sched)
            }
            FaultClass::BogusElimination => match self.pick(&issued) {
                Some(i) => {
                    for row in sched.cycles.iter_mut() {
                        row.retain(|&x| x != i);
                    }
                    // Claim `i` was eliminated in favour of itself — a twin
                    // that was, of course, never issued.
                    sched.eliminated.push((i, i));
                    true
                }
                None => false,
            },
            FaultClass::ShiftExitCycle => {
                if sched.exit_cycles.is_empty() {
                    false
                } else {
                    let k = self.rng.pick_index(&sched.exit_cycles);
                    sched.exit_cycles[k] += 1;
                    true
                }
            }
            FaultClass::SkipRenamingRepair => {
                let mut any = false;
                for exit in lr.exits.iter_mut() {
                    if !exit.copies.is_empty() {
                        exit.copies.clear();
                        any = true;
                    }
                }
                any
            }
            _ => false,
        };
        if applied {
            self.injected.push(class);
        }
        applied
    }

    fn pick(&mut self, xs: &[usize]) -> Option<usize> {
        if xs.is_empty() {
            None
        } else {
            Some(xs[self.rng.pick_index(xs)])
        }
    }

    /// Moves the consumer of a latency-carrying edge into an earlier cycle
    /// with a free slot (respecting width/branch/mem limits so the *only*
    /// new violation is the latency one).
    fn hoist_consumer(
        &mut self,
        lr: &LoweredRegion,
        ddg: &Ddg,
        m: &MachineModel,
        sched: &mut Schedule,
    ) -> bool {
        let mut sites: Vec<(usize, usize)> = Vec::new(); // (consumer, dest row)
        for e in ddg.edges() {
            if e.latency == 0 {
                continue;
            }
            let (Some(cf), Some(ct)) = (sched.cycle_of[e.from], sched.cycle_of[e.to]) else {
                continue;
            };
            // Skip eliminated consumers: they are not in any row.
            if !sched.cycles.iter().flatten().any(|&i| i == e.to) {
                continue;
            }
            let deadline = (cf + e.latency).min(ct) as usize;
            let opc = lr.lops[e.to].op.opcode;
            let is_branch = opc.is_branch();
            let is_mem = opc.is_memory() || opc == treegion_ir::Opcode::Call;
            for d in 0..deadline.min(sched.cycles.len()) {
                let row = &sched.cycles[d];
                if row.len() >= m.issue_width() {
                    continue;
                }
                if is_branch {
                    if let Some(limit) = m.branch_limit() {
                        let b = row
                            .iter()
                            .filter(|&&i| lr.lops[i].op.opcode.is_branch())
                            .count();
                        if b >= limit {
                            continue;
                        }
                    }
                }
                if is_mem {
                    if let Some(limit) = m.mem_port_limit() {
                        let mm = row
                            .iter()
                            .filter(|&&i| {
                                let o = lr.lops[i].op.opcode;
                                o.is_memory() || o == treegion_ir::Opcode::Call
                            })
                            .count();
                        if mm >= limit {
                            continue;
                        }
                    }
                }
                sites.push((e.to, d));
                break; // first viable destination for this edge
            }
        }
        match sites.is_empty() {
            true => false,
            false => {
                let (to, d) = sites[self.rng.pick_index(&sites)];
                for row in sched.cycles.iter_mut() {
                    row.retain(|&i| i != to);
                }
                sched.cycles[d].push(to);
                sched.cycle_of[to] = Some(d as u32);
                // If the hoisted op was an exit branch, keep the exit
                // bookkeeping consistent so the *latency* check is what
                // fires, not the exit-cycle one.
                if let crate::lower::LOpKind::ExitBranch(e) = lr.lops[to].kind {
                    sched.exit_cycles[e] = d as u32;
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form_treegions;
    use crate::lower::lower_region;
    use crate::sched::{schedule_region, ScheduleOptions};
    use crate::verify_sched::verify_schedule;
    use treegion_analysis::{Cfg, Liveness};
    use treegion_ir::{Cond, Function, FunctionBuilder, Op};

    /// A region with latency chains, branches, and exit copies — a viable
    /// fault site for every class.
    fn rich_function() -> Function {
        let mut b = FunctionBuilder::new("rich");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let (a, x, y, c, s) = (b.gpr(), b.gpr(), b.gpr(), b.gpr(), b.gpr());
        b.push_all(
            ids[0],
            [
                Op::load(x, a, 0),
                Op::load(y, a, 8),
                Op::cmp(Cond::Lt, c, x, y),
            ],
        );
        b.branch(ids[0], c, (ids[1], 60.0), (ids[2], 40.0));
        b.push(ids[1], Op::add(s, x, y));
        b.jump(ids[1], ids[3], 60.0);
        b.push(ids[2], Op::store(a, y, 16));
        b.jump(ids[2], ids[3], 40.0);
        b.ret(ids[3], Some(x));
        b.finish()
    }

    fn lowered_entry(f: &Function) -> crate::LoweredRegion {
        let set = form_treegions(f);
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let r = set.region(set.region_of(f.entry()).unwrap()).clone();
        lower_region(f, &r, &live, None)
    }

    #[test]
    fn every_detectable_fault_is_attributed_correctly() {
        let f = rich_function();
        let m = treegion_machine::MachineModel::model_4u();
        for class in FaultClass::ALL {
            let Some(expect) = class.expected_kind() else {
                continue;
            };
            let mut lr = lowered_entry(&f);
            let true_ddg = Ddg::build(&lr, &m);
            let mut opts = ScheduleOptions::default();
            let mut inj = FaultInjector::new(&FaultPlan::single(7, class));
            let mut sched = if class.is_pre_schedule() {
                let mut corrupted = true_ddg.clone();
                assert!(
                    inj.corrupt_pre(class, &mut corrupted, &mut opts),
                    "{class}: no pre-schedule fault site"
                );
                crate::sched::try_schedule_with_ddg(
                    &lr,
                    &corrupted,
                    &m,
                    &opts,
                    &crate::Budgets::UNLIMITED,
                )
                .expect("corrupted graph still schedules")
            } else {
                schedule_region(&lr, &m, &opts)
            };
            if !class.is_pre_schedule() {
                assert!(
                    inj.corrupt_post(class, &mut lr, &m, &mut sched),
                    "{class}: no post-schedule fault site"
                );
            }
            let err = verify_schedule(&lr, &true_ddg, &m, &sched)
                .expect_err(&format!("{class}: verifier missed the fault"));
            assert_eq!(err.kind(), expect, "{class}: wrong attribution: {err}");
        }
    }

    #[test]
    fn undetectable_faults_pass_static_verification() {
        let f = rich_function();
        let m = treegion_machine::MachineModel::model_4u();
        for class in [FaultClass::PerturbPriority, FaultClass::SkipRenamingRepair] {
            let mut lr = lowered_entry(&f);
            let true_ddg = Ddg::build(&lr, &m);
            let mut opts = ScheduleOptions::default();
            let mut inj = FaultInjector::new(&FaultPlan::single(11, class));
            let mut sched = if class.is_pre_schedule() {
                let mut corrupted = true_ddg.clone();
                assert!(inj.corrupt_pre(class, &mut corrupted, &mut opts));
                crate::sched::try_schedule_with_ddg(
                    &lr,
                    &corrupted,
                    &m,
                    &opts,
                    &crate::Budgets::UNLIMITED,
                )
                .unwrap()
            } else {
                schedule_region(&lr, &m, &opts)
            };
            if !class.is_pre_schedule() {
                assert!(inj.corrupt_post(class, &mut lr, &m, &mut sched));
            }
            verify_schedule(&lr, &true_ddg, &m, &sched)
                .unwrap_or_else(|e| panic!("{class} should be statically invisible: {e}"));
        }
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let f = rich_function();
        let m = treegion_machine::MachineModel::model_4u();
        let run = |seed: u64| -> Vec<Vec<usize>> {
            let mut lr = lowered_entry(&f);
            let mut sched = schedule_region(&lr, &m, &ScheduleOptions::default());
            let mut inj = FaultInjector::new(&FaultPlan::single(seed, FaultClass::OmitOp));
            assert!(inj.corrupt_post(FaultClass::OmitOp, &mut lr, &m, &mut sched));
            sched.cycles
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn choose_respects_probability_and_classes() {
        let mut never = FaultInjector::new(&FaultPlan {
            seed: 1,
            classes: FaultClass::ALL.to_vec(),
            probability: 0.0,
        });
        for _ in 0..50 {
            assert_eq!(never.choose(), None);
        }
        let mut always = FaultInjector::new(&FaultPlan::single(1, FaultClass::OmitOp));
        for _ in 0..50 {
            assert_eq!(always.choose(), Some(FaultClass::OmitOp));
        }
    }
}
