//! Unified region formation: the [`RegionFormer`] trait and its
//! [`FormOutcome`].
//!
//! The paper's Fig. 2/3 flow begins with region formation, but the repo
//! historically exposed five free functions with three different return
//! shapes (`RegionSet`, `SuperblockResult`, `TailDupResult`). Every
//! driver — eval harness, CLI, figure binaries — then re-implemented the
//! same dispatch-and-normalise dance. This module collapses the trio into
//! one [`FormOutcome`] and puts every former behind one trait so the
//! [`crate::Pipeline`] driver (and anything else) can treat formation as a
//! single pluggable stage.

use crate::form::{
    form_basic_blocks, form_slrs, form_superblocks, form_treegions, form_treegions_td,
    TailDupLimits,
};
use crate::region::RegionSet;
use treegion_ir::{BlockId, Function};

/// The result of any region formation: the (possibly transformed)
/// function, its region partition, the per-block origin map, and enough
/// of the original function's shape to compute duplication statistics.
///
/// Replaces the former ad-hoc `RegionSet` / `SuperblockResult` /
/// `TailDupResult` trio: non-transforming formers (basic blocks, SLRs,
/// plain treegions) return a clone of the input with an identity origin
/// map, which lowers identically to the historical `origin = None` path.
#[derive(Clone, Debug)]
pub struct FormOutcome {
    /// The (possibly tail-duplicated) function; duplicates are appended,
    /// original block ids are unchanged.
    pub function: Function,
    /// The region partition of `function`.
    pub regions: RegionSet,
    /// `origin[b]` is the original block that block `b` is a copy of
    /// (identity for original blocks and for non-transforming formers).
    pub origin: Vec<BlockId>,
    /// Op count of the original, untransformed function.
    pub original_ops: usize,
    /// Block count of the original, untransformed function.
    pub original_blocks: usize,
}

impl FormOutcome {
    /// Wraps a partition over an *untransformed* function: clones `f` and
    /// records an identity origin map.
    pub fn unchanged(f: &Function, regions: RegionSet) -> Self {
        FormOutcome {
            function: f.clone(),
            regions,
            origin: f.block_ids().collect(),
            original_ops: f.num_ops(),
            original_blocks: f.num_blocks(),
        }
    }

    /// Static code expansion: ops after formation over original ops.
    pub fn code_expansion(&self) -> f64 {
        self.function.num_ops() as f64 / self.original_ops.max(1) as f64
    }

    /// Number of blocks created by tail duplication.
    pub fn duplicated_blocks(&self) -> usize {
        self.function.num_blocks() - self.original_blocks
    }

    /// `true` if formation transformed the function (tail duplication).
    pub fn is_transformed(&self) -> bool {
        self.duplicated_blocks() > 0 || self.origin.iter().enumerate().any(|(i, b)| b.index() != i)
    }
}

/// A region formation algorithm, as a pluggable pipeline stage.
///
/// Implementors must be [`Sync`]: the [`crate::Pipeline`] driver fans
/// whole functions out across the `treegion_par` worker budget and shares
/// the former between threads.
pub trait RegionFormer: Sync {
    /// Short label for reports and profiles (e.g. `"tree(2.0)"`).
    fn name(&self) -> String;

    /// Forms regions over a copy of `f` (the input is never modified).
    fn form(&self, f: &Function) -> FormOutcome;
}

/// Which region formation to run — the one config enum shared by the
/// pipeline driver, the eval harness, and the CLI.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum RegionConfig {
    /// One region per basic block (the scheduling baseline).
    BasicBlock,
    /// Simple linear regions (Section 3).
    Slr,
    /// Superblocks (traces + tail duplication; Hwu et al.).
    Superblock,
    /// Treegions without tail duplication (Figure 2).
    Treegion,
    /// Treegions with tail duplication under the given limits (Figure 11).
    TreegionTd(TailDupLimits),
}

impl RegionConfig {
    /// Short label for report tables.
    pub fn label(&self) -> String {
        match self {
            RegionConfig::BasicBlock => "bb".into(),
            RegionConfig::Slr => "slr".into(),
            RegionConfig::Superblock => "sb".into(),
            RegionConfig::Treegion => "tree".into(),
            RegionConfig::TreegionTd(l) => format!("tree({:.1})", l.code_expansion),
        }
    }
}

impl RegionFormer for RegionConfig {
    fn name(&self) -> String {
        self.label()
    }

    fn form(&self, f: &Function) -> FormOutcome {
        match self {
            RegionConfig::BasicBlock => FormOutcome::unchanged(f, form_basic_blocks(f)),
            RegionConfig::Slr => FormOutcome::unchanged(f, form_slrs(f)),
            RegionConfig::Treegion => FormOutcome::unchanged(f, form_treegions(f)),
            RegionConfig::Superblock => form_superblocks(f),
            RegionConfig::TreegionTd(limits) => form_treegions_td(f, limits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure1_cfg;

    #[test]
    fn labels_include_expansion_limit() {
        assert_eq!(RegionConfig::BasicBlock.label(), "bb");
        assert_eq!(
            RegionConfig::TreegionTd(TailDupLimits::expansion_3_0()).label(),
            "tree(3.0)"
        );
    }

    #[test]
    fn unchanged_formers_report_identity() {
        let (f, _) = figure1_cfg();
        for cfg in [
            RegionConfig::BasicBlock,
            RegionConfig::Slr,
            RegionConfig::Treegion,
        ] {
            let out = cfg.form(&f);
            assert!(!out.is_transformed(), "{cfg:?}");
            assert_eq!(out.origin.len(), f.num_blocks());
            assert_eq!(out.original_ops, f.num_ops());
            assert!((out.code_expansion() - 1.0).abs() < 1e-12);
            assert!(out.regions.is_partition_of(&out.function), "{cfg:?}");
        }
    }

    #[test]
    fn tail_duplicating_formers_report_expansion() {
        let (f, _) = figure1_cfg();
        let out = RegionConfig::TreegionTd(TailDupLimits::expansion_2_0()).form(&f);
        assert!(out.regions.is_partition_of(&out.function));
        assert_eq!(out.original_blocks, f.num_blocks());
        assert!(out.code_expansion() >= 1.0);
        if out.duplicated_blocks() > 0 {
            assert!(out.is_transformed());
        }
    }
}
