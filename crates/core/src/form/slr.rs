//! Simple linear region (SLR) formation.
//!
//! Per Section 3 of the paper, SLRs are "formed in the same manner as
//! superblocks, but tail duplication is not permitted. In fact, their
//! formation is implemented as a special case of treegion formation,
//! where for a given node placed into an SLR, the successor node with the
//! highest profile weight is selected next for possible inclusion rather
//! than all successors." The result is a single-entry multiple-exit region
//! formed without tail duplication.

use crate::{Region, RegionKind, RegionSet};
use std::collections::VecDeque;
use treegion_analysis::Cfg;
use treegion_ir::{BlockId, Function};

/// Forms simple linear regions over `f`.
///
/// Exactly the treegion formation of Figure 2, except that from each
/// absorbed node only the highest-profile-weight successor edge is
/// considered for inclusion; all other successors become saplings.
/// Merge points still delimit regions, which keeps every SLR single-entry.
pub fn form_slrs(f: &Function) -> RegionSet {
    let cfg = Cfg::new(f);
    let mut set = RegionSet::new(RegionKind::Slr);
    let mut unprocessed: VecDeque<BlockId> = VecDeque::new();
    unprocessed.push_back(f.entry());

    while let Some(node) = unprocessed.pop_front() {
        if set.region_of(node).is_some() {
            continue;
        }
        let mut region = Region::new(RegionKind::Slr, node);
        let mut cur = node;
        loop {
            // Highest-weight successor edge; ties broken by successor order.
            let edges = f.block(cur).term.edges();
            let Some((succ_index, best)) = edges
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| {
                    a.count
                        .partial_cmp(&b.count)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(ib.cmp(ia)) // earlier successor wins ties
                })
                .map(|(i, e)| (i, *e))
            else {
                break; // ret
            };
            let cand = best.target;
            if region.contains(cand) || set.region_of(cand).is_some() || cfg.is_merge_point(cand) {
                break;
            }
            region.absorb(cand, cur, succ_index);
            cur = cand;
        }
        // Saplings: every exit-edge target not yet regioned.
        for exit in region.exit_edges(f) {
            if exit.succ_index == usize::MAX {
                continue;
            }
            let target = f.block(exit.from).term.edges()[exit.succ_index].target;
            if set.region_of(target).is_none() && !region.contains(target) {
                unprocessed.push_back(target);
            }
        }
        set.add(region);
    }

    for b in f.block_ids() {
        if set.region_of(b).is_none() {
            unprocessed.push_back(b);
            while let Some(node) = unprocessed.pop_front() {
                if set.region_of(node).is_none() {
                    set.add(Region::new(RegionKind::Slr, node));
                }
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure1_cfg;
    use treegion_ir::{FunctionBuilder, Op};

    #[test]
    fn slrs_follow_the_heaviest_path() {
        let (f, ids) = figure1_cfg();
        let set = form_slrs(&f);
        assert!(set.is_partition_of(&f));
        // From bb1 (ids[0]): heaviest successor bb2 (60 vs 40); from bb2:
        // bb3 (35 vs 25). bb5 is a merge point, so the SLR is bb1-bb2-bb3.
        let top = set.region(set.region_of(ids[0]).unwrap());
        assert_eq!(top.blocks(), &[ids[0], ids[1], ids[2]]);
        assert!(top.is_linear());
        // bb4 and bb8 become their own regions (single-block SLRs).
        assert_eq!(set.region(set.region_of(ids[3]).unwrap()).num_blocks(), 1);
        assert_eq!(set.region(set.region_of(ids[7]).unwrap()).num_blocks(), 1);
    }

    #[test]
    fn all_slrs_are_linear_and_trees() {
        let (f, _) = figure1_cfg();
        let set = form_slrs(&f);
        for r in set.regions() {
            assert!(r.is_linear());
            assert!(r.is_tree());
            assert_eq!(r.path_count(), 1);
        }
    }

    #[test]
    fn slr_stops_at_merge_points() {
        let (f, ids) = figure1_cfg();
        let set = form_slrs(&f);
        // bb5 (merge) roots its own SLR; it extends to bb6 (tie broken to
        // first successor).
        let r5 = set.region(set.region_of(ids[4]).unwrap());
        assert_eq!(r5.root(), ids[4]);
        assert_eq!(r5.blocks(), &[ids[4], ids[5]]);
    }

    #[test]
    fn slr_never_absorbs_around_a_loop() {
        let mut b = FunctionBuilder::new("loop");
        let ids: Vec<_> = (0..3).map(|_| b.block()).collect();
        let c = b.gpr();
        b.push(ids[0], Op::movi(c, 1));
        b.jump(ids[0], ids[1], 1.0);
        b.branch(ids[1], c, (ids[1], 99.0), (ids[2], 1.0));
        b.ret(ids[2], None);
        let f = b.finish();
        let set = form_slrs(&f);
        assert!(set.is_partition_of(&f));
        // bb1's heaviest successor is itself, but it's a merge point.
        let r1 = set.region(set.region_of(ids[1]).unwrap());
        assert_eq!(r1.num_blocks(), 1);
    }
}
