//! Region formation algorithms.
//!
//! * [`form_basic_blocks`] — one region per block (scheduling baseline).
//! * [`form_treegions`] — the paper's Figure 2 algorithm.
//! * [`form_slrs`] — simple linear regions (Section 3).
//! * [`form_superblocks`] — profile-driven traces + tail duplication.
//! * [`form_treegions_td`] — treegions with tail duplication (Figure 11).

mod basic;
mod slr;
mod superblock;
mod tail_dup;
mod treegion;

pub use basic::form_basic_blocks;
pub use slr::form_slrs;
pub use superblock::form_superblocks;
pub use tail_dup::{form_treegions_td, TailDupLimits};
pub use treegion::form_treegions;
