//! Basic-block regions: the trivial partition used as the paper's
//! scheduling baseline (speedups are reported over basic-block scheduling
//! on the single-issue machine).

use crate::{Region, RegionKind, RegionSet};
use treegion_ir::Function;

/// Forms one region per basic block.
pub fn form_basic_blocks(f: &Function) -> RegionSet {
    let mut set = RegionSet::new(RegionKind::BasicBlock);
    for b in f.block_ids() {
        set.add(Region::new(RegionKind::BasicBlock, b));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use treegion_ir::{FunctionBuilder, Op};

    #[test]
    fn every_block_is_its_own_region() {
        let mut b = FunctionBuilder::new("t");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let c = b.gpr();
        b.push(bb0, Op::movi(c, 1));
        b.branch(bb0, c, (bb1, 1.0), (bb2, 1.0));
        b.ret(bb1, None);
        b.ret(bb2, None);
        let f = b.finish();
        let set = form_basic_blocks(&f);
        assert_eq!(set.len(), 3);
        assert!(set.is_partition_of(&f));
        for r in set.regions() {
            assert_eq!(r.num_blocks(), 1);
        }
    }
}
