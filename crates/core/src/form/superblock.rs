//! Superblock formation: profile-driven trace selection followed by tail
//! duplication, after Hwu et al. ("The Superblock", 1993).
//!
//! The paper compares treegions against superblocks formed inside the same
//! LEGO compiler, noting that "every attempt was made to produce
//! superblocks ... as described in the literature". This module does the
//! same:
//!
//! 1. **Trace selection** — seeds in descending profile weight, grown
//!    forward and backward using the classic *mutual-best* rule: extend
//!    across an edge only if it is both the source's most likely out-edge
//!    and the target's most heavily weighted in-edge.
//! 2. **Tail duplication** — any trace block (other than the head) with a
//!    side entrance has its tail duplicated; side edges are retargeted to
//!    the duplicate chain, which becomes a superblock of its own. Profile
//!    weight is split so flow conservation is preserved exactly.
//!
//! A per-function code-expansion budget bounds duplication (the paper
//! measures superblock expansion ≈1.2×); if the budget runs out, the trace
//! is *split* at the side-entered block instead, which preserves the
//! single-entry invariant without further growth.

use crate::{FormOutcome, Region, RegionKind, RegionSet};
use std::collections::HashMap;
use treegion_ir::{Block, BlockId, Function};

/// Default per-function code expansion budget for superblock tail
/// duplication, as a multiple of the original op count.
pub const SB_EXPANSION_BUDGET: f64 = 1.35;

/// Forms superblocks over a copy of `f` (the input is not modified).
pub fn form_superblocks(f: &Function) -> FormOutcome {
    form_superblocks_with_budget(f, SB_EXPANSION_BUDGET)
}

/// [`form_superblocks`] with an explicit expansion budget (total ops after
/// duplication may not exceed `budget` × original ops).
pub fn form_superblocks_with_budget(f: &Function, budget: f64) -> FormOutcome {
    let original_blocks = f.num_blocks();
    let mut func = f.clone();
    let original_ops = func.num_ops().max(1);
    let mut origin: Vec<BlockId> = func.block_ids().collect();

    // Loop headers may only start traces (classic trace-selection rule).
    // This also guarantees that a trace never contains an internal block
    // targeted by a back edge, which would break the weight-splitting
    // arithmetic in `duplicate_tail`.
    let loop_headers = find_loop_headers(&func);

    // ---- Trace selection ----
    let mut traces = select_traces(&func, &loop_headers);

    // ---- Tail duplication to fixpoint (budget-bounded) ----
    let mut in_trace: HashMap<BlockId, (usize, usize)> = HashMap::new(); // block -> (trace, pos)
    for (ti, t) in traces.iter().enumerate() {
        for (pi, &b) in t.iter().enumerate() {
            in_trace.insert(b, (ti, pi));
        }
    }

    while let Some((ti, pi)) = find_violation(&func, &traces, &in_trace) {
        let cur_ops = func.num_ops();
        let tail_ops: usize = traces[ti][pi..]
            .iter()
            .map(|&b| func.block(b).ops.len())
            .sum();
        if (cur_ops + tail_ops) as f64 > budget * original_ops as f64 {
            // Budget exhausted: split the trace before position `pi`.
            let tail: Vec<BlockId> = traces[ti].split_off(pi);
            for (npos, &b) in tail.iter().enumerate() {
                in_trace.insert(b, (traces.len(), npos));
            }
            traces.push(tail);
            continue;
        }
        duplicate_tail(&mut func, &mut traces, &mut in_trace, &mut origin, ti, pi);
    }

    // ---- Build the region set ----
    let mut set = RegionSet::new(RegionKind::Superblock);
    for t in &traces {
        let mut r = Region::new(RegionKind::Superblock, t[0]);
        for w in 1..t.len() {
            let (parent, child) = (t[w - 1], t[w]);
            let si = trace_succ_index(&func, parent, child).expect("trace edge must exist");
            r.absorb(child, parent, si);
        }
        set.add(r);
    }
    debug_assert!(set.is_partition_of(&func));
    FormOutcome {
        function: func,
        regions: set,
        origin,
        original_ops: f.num_ops(),
        original_blocks,
    }
}

/// Blocks that are the target of a back edge (`header` of some natural
/// loop), as a dense boolean vector.
fn find_loop_headers(f: &Function) -> Vec<bool> {
    use treegion_analysis::{Cfg, DomTree, Loops};
    let cfg = Cfg::new(f);
    let dom = DomTree::new(&cfg);
    let loops = Loops::new(&cfg, &dom);
    let mut headers = vec![false; f.num_blocks()];
    for be in loops.back_edges() {
        headers[be.header.index()] = true;
    }
    headers
}

/// Selects mutually-best traces covering every block.
fn select_traces(f: &Function, loop_headers: &[bool]) -> Vec<Vec<BlockId>> {
    let n = f.num_blocks();
    let mut visited = vec![false; n];
    // Seeds in descending weight, ties by id for determinism.
    let mut seeds: Vec<BlockId> = f.block_ids().collect();
    seeds.sort_by(|a, b| {
        let (wa, wb) = (f.block(*a).weight, f.block(*b).weight);
        wb.partial_cmp(&wa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index().cmp(&b.index()))
    });

    let preds = f.predecessors();
    let entry = f.entry();
    let mut traces = Vec::new();
    for seed in seeds {
        if visited[seed.index()] {
            continue;
        }
        visited[seed.index()] = true;
        let mut trace = vec![seed];
        // Grow forward.
        let mut cur = seed;
        while let Some(next) = best_successor(f, cur) {
            if visited[next.index()]
                || next == entry
                || loop_headers[next.index()]
                || trace.contains(&next)
                || !is_best_predecessor(f, &preds, cur, next)
            {
                break;
            }
            visited[next.index()] = true;
            trace.push(next);
            cur = next;
        }
        // Grow backward from the seed.
        let mut head = seed;
        while let Some(prev) = best_predecessor(f, &preds, head) {
            if visited[prev.index()]
                || head == entry
                || loop_headers[head.index()]
                || trace.contains(&prev)
                || best_successor(f, prev) != Some(head)
            {
                break;
            }
            visited[prev.index()] = true;
            trace.insert(0, prev);
            head = prev;
        }
        traces.push(trace);
    }
    traces
}

/// The most likely successor of `b` (highest edge count, > 0).
fn best_successor(f: &Function, b: BlockId) -> Option<BlockId> {
    f.block(b)
        .term
        .edges()
        .into_iter()
        .filter(|e| e.count > 0.0)
        .max_by(|a, b| {
            a.count
                .partial_cmp(&b.count)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|e| e.target)
}

/// The most heavily weighted predecessor of `b` (by total edge count).
fn best_predecessor(f: &Function, preds: &[Vec<BlockId>], b: BlockId) -> Option<BlockId> {
    let mut totals: HashMap<BlockId, f64> = HashMap::new();
    for &p in &preds[b.index()] {
        let w: f64 = f
            .block(p)
            .term
            .edges()
            .iter()
            .filter(|e| e.target == b)
            .map(|e| e.count)
            .sum();
        *totals.entry(p).or_insert(0.0) += w;
    }
    totals
        .into_iter()
        .filter(|(_, w)| *w > 0.0)
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0.index().cmp(&a.0.index()))
        })
        .map(|(p, _)| p)
}

fn is_best_predecessor(f: &Function, preds: &[Vec<BlockId>], p: BlockId, b: BlockId) -> bool {
    best_predecessor(f, preds, b) == Some(p)
}

/// The successor index of the trace edge `parent -> child` (the heaviest
/// such edge if several exist).
fn trace_succ_index(f: &Function, parent: BlockId, child: BlockId) -> Option<usize> {
    f.block(parent)
        .term
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.target == child)
        .max_by(|a, b| {
            a.1.count
                .partial_cmp(&b.1.count)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
}

/// Finds a trace position `pi > 0` whose block has an incoming edge other
/// than its trace edge.
fn find_violation(
    f: &Function,
    traces: &[Vec<BlockId>],
    in_trace: &HashMap<BlockId, (usize, usize)>,
) -> Option<(usize, usize)> {
    // Count side entrances per (trace, pos).
    let mut first: Option<(usize, usize)> = None;
    for (id, block) in f.blocks() {
        for (si, e) in block.term.edges().iter().enumerate() {
            let Some(&(ti, pi)) = in_trace.get(&e.target) else {
                continue;
            };
            if pi == 0 {
                continue; // heads may have any preds
            }
            let is_trace_edge =
                traces[ti][pi - 1] == id && trace_succ_index(f, id, e.target) == Some(si);
            if !is_trace_edge && (first.is_none() || (ti, pi) < first.unwrap()) {
                first = Some((ti, pi));
            }
        }
    }
    first
}

/// Duplicates the tail `traces[ti][pi..]`, retargets all side entrances of
/// `traces[ti][pi]` to the duplicate head, splits profile weight, and
/// registers the duplicate chain as a new trace.
fn duplicate_tail(
    f: &mut Function,
    traces: &mut Vec<Vec<BlockId>>,
    in_trace: &mut HashMap<BlockId, (usize, usize)>,
    origin: &mut Vec<BlockId>,
    ti: usize,
    pi: usize,
) {
    let tail: Vec<BlockId> = traces[ti][pi..].to_vec();
    let head = tail[0];
    // Side-entrance weight into the tail head.
    let trace_parent = traces[ti][pi - 1];
    let trace_si = trace_succ_index(f, trace_parent, head);
    let mut side_weight = 0.0;
    for (id, block) in f.blocks() {
        for (si, e) in block.term.edges().iter().enumerate() {
            if e.target == head && !(id == trace_parent && Some(si) == trace_si) {
                side_weight += e.count;
            }
        }
    }
    // Clone the tail blocks; remember the mapping old -> new.
    let mut map: HashMap<BlockId, BlockId> = HashMap::new();
    let mut flow_into_dup = side_weight;
    for (k, &ob) in tail.iter().enumerate() {
        let w = f.block(ob).weight;
        let fr = if w > 0.0 {
            (flow_into_dup / w).min(1.0)
        } else {
            0.0
        };
        // Flow into the next dup block = this block's trace edge count × fr.
        if k + 1 < tail.len() {
            let si = trace_succ_index(f, ob, tail[k + 1]).expect("trace edge");
            flow_into_dup = f.block(ob).term.edges()[si].count * fr;
        }
        let mut copy: Block = f.block(ob).clone();
        copy.weight = w * fr;
        copy.term.scale_counts(fr);
        let nb = f.add_block(copy);
        origin.push(origin[ob.index()]);
        map.insert(ob, nb);
        // Reduce the original's weight and edge counts.
        let ob_block = f.block_mut(ob);
        ob_block.weight = w * (1.0 - fr);
        ob_block.term.scale_counts(1.0 - fr);
    }
    // Retarget duplicate trace edges to stay inside the duplicate chain.
    for k in 0..tail.len() - 1 {
        let (ob, nxt) = (tail[k], tail[k + 1]);
        let si = trace_succ_index(f, ob, nxt).expect("trace edge");
        let nb = map[&ob];
        let nb_nxt = map[&nxt];
        retarget_edge(f, nb, si, nb_nxt);
    }
    // Retarget all side entrances of `head` to the duplicate head. (Chain
    // internal edges were already rewritten above, so any remaining edge
    // into `head` other than the trace edge is a genuine side entrance —
    // including copied side edges inside the duplicate chain.)
    let dup_head = map[&tail[0]];
    let all_ids: Vec<BlockId> = f.block_ids().collect();
    for id in all_ids {
        let term = &f.block(id).term;
        let edges = term.edges();
        for (si, e) in edges.iter().enumerate() {
            if e.target != head {
                continue;
            }
            let is_trace_edge = id == trace_parent && Some(si) == trace_si;
            // The duplicate of the trace parent does not exist (pi>0 and
            // parent not in tail), so no special case needed there.
            if !is_trace_edge {
                retarget_edge(f, id, si, dup_head);
            }
        }
    }
    // Register the duplicate chain as its own trace.
    let new_trace: Vec<BlockId> = tail.iter().map(|b| map[b]).collect();
    for (npos, &b) in new_trace.iter().enumerate() {
        in_trace.insert(b, (traces.len(), npos));
    }
    traces.push(new_trace);
}

/// Points successor `si` of `from` at `new_target`.
fn retarget_edge(f: &mut Function, from: BlockId, si: usize, new_target: BlockId) {
    use treegion_ir::Terminator;
    let term = &mut f.block_mut(from).term;
    match term {
        Terminator::Jump(e) => {
            debug_assert_eq!(si, 0);
            e.target = new_target;
        }
        Terminator::Branch { then_, else_, .. } => match si {
            0 => then_.target = new_target,
            1 => else_.target = new_target,
            _ => unreachable!("branch has two successors"),
        },
        Terminator::Switch { cases, default, .. } => {
            if si < cases.len() {
                cases[si].edge.target = new_target;
            } else {
                default.target = new_target;
            }
        }
        Terminator::Ret { .. } => unreachable!("ret has no successors"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure1_cfg;
    use treegion_ir::{verify_profile, FunctionBuilder, Op};

    #[test]
    fn figure1_forms_single_entry_superblocks() {
        let (f, ids) = figure1_cfg();
        let res = form_superblocks(&f);
        assert!(res.regions.is_partition_of(&res.function));
        verify_profile(&res.function).unwrap();
        // The hot trace follows bb1 -> bb2 -> bb3 -> bb5 ... with merges
        // duplicated; the head superblock starts at the entry.
        let top = res.regions.region(res.regions.region_of(ids[0]).unwrap());
        assert_eq!(top.root(), ids[0]);
        assert!(top.num_blocks() >= 2);
        // Single-entry invariant: every non-root member's only incoming
        // edges come from its trace parent.
        assert_single_entry(&res);
    }

    fn assert_single_entry(res: &FormOutcome) {
        let preds = res.function.predecessors();
        for r in res.regions.regions() {
            for &b in &r.blocks()[1..] {
                let (parent, _) = r.parent_edge(b).unwrap();
                for &p in &preds[b.index()] {
                    assert_eq!(p, parent, "side entrance into superblock member {b}");
                }
            }
        }
    }

    #[test]
    fn tail_duplication_preserves_flow_conservation() {
        let (f, _) = figure1_cfg();
        let res = form_superblocks(&f);
        verify_profile(&res.function).unwrap();
        // Total exit weight (into bb9's return) is preserved: sum of
        // weights of ret blocks == 100.
        let total_ret: f64 = res
            .function
            .blocks()
            .filter(|(_, b)| b.term.is_ret())
            .map(|(_, b)| b.weight)
            .sum();
        assert!((total_ret - 100.0).abs() < 1e-6, "got {total_ret}");
    }

    #[test]
    fn origin_map_tracks_duplicates() {
        let (f, _) = figure1_cfg();
        let n_before = f.num_blocks();
        let res = form_superblocks(&f);
        assert!(res.function.num_blocks() > n_before, "expected duplication");
        for (i, &o) in res.origin.iter().enumerate() {
            if i < n_before {
                assert_eq!(o.index(), i);
            } else {
                assert!(o.index() < n_before);
            }
        }
    }

    #[test]
    fn budget_bounds_op_expansion() {
        // Give every block some ops so duplication has a real cost, then
        // form with a budget of 1.0: no op may be duplicated, so traces
        // are split instead and the op count stays unchanged.
        let (f, _) = figure1_cfg();
        let mut f = f;
        for b in f.block_ids().collect::<Vec<_>>() {
            let r = treegion_ir::Reg::gpr(90 + b.index() as u32);
            f.block_mut(b).ops.push(Op::movi(r, 7));
        }
        let orig_ops = f.num_ops();
        let res = form_superblocks_with_budget(&f, 1.0);
        assert_eq!(res.function.num_ops(), orig_ops);
        assert!(res.regions.is_partition_of(&res.function));
        assert_single_entry(&res);
    }

    #[test]
    fn straight_line_is_one_superblock() {
        let mut b = FunctionBuilder::new("line");
        let ids: Vec<_> = (0..3).map(|_| b.block()).collect();
        b.jump(ids[0], ids[1], 7.0);
        b.jump(ids[1], ids[2], 7.0);
        b.ret(ids[2], None);
        let f = b.finish();
        let res = form_superblocks(&f);
        assert_eq!(res.regions.len(), 1);
        assert_eq!(res.regions.regions()[0].num_blocks(), 3);
    }

    #[test]
    fn loops_do_not_break_formation() {
        let mut b = FunctionBuilder::new("loop");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let c = b.gpr();
        b.push(ids[0], Op::movi(c, 1));
        b.jump(ids[0], ids[1], 10.0);
        b.branch(ids[1], c, (ids[2], 90.0), (ids[3], 10.0));
        b.jump(ids[2], ids[1], 90.0);
        b.ret(ids[3], None);
        let f = b.finish();
        let res = form_superblocks(&f);
        assert!(res.regions.is_partition_of(&res.function));
        verify_profile(&res.function).unwrap();
        assert_single_entry(&res);
    }

    #[test]
    fn cold_blocks_become_singletons() {
        let mut b = FunctionBuilder::new("cold");
        let ids: Vec<_> = (0..3).map(|_| b.block()).collect();
        let c = b.gpr();
        b.push(ids[0], Op::movi(c, 1));
        b.branch(ids[0], c, (ids[1], 100.0), (ids[2], 0.0));
        b.ret(ids[1], None);
        b.ret(ids[2], None);
        let f = b.finish();
        let res = form_superblocks(&f);
        // Cold bb2 is its own singleton superblock.
        let cold = res.regions.region(res.regions.region_of(ids[2]).unwrap());
        assert_eq!(cold.num_blocks(), 1);
    }
}
