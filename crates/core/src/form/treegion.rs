//! Treegion formation — the paper's Figure 2 algorithm.
//!
//! Treegions are grown across the CFG starting from the entry. From a
//! given root, blocks are absorbed depth-first as long as they are not
//! merge points; merge points left hanging off the leaves (*saplings*)
//! root new treegions. Formation depends only on CFG topology — no
//! profile information is used.

use crate::{Region, RegionKind, RegionSet};
use std::collections::VecDeque;
use treegion_analysis::Cfg;
use treegion_ir::{BlockId, Function};

/// Forms treegions over `f` (Figure 2: `treeform` / `absorb-into-tree`).
///
/// Every block ends up in exactly one treegion. Loop headers and other
/// merge points (blocks with more than one incoming edge) always root
/// their own treegion, so every treegion is an acyclic tree.
pub fn form_treegions(f: &Function) -> RegionSet {
    let cfg = Cfg::new(f);
    let mut set = RegionSet::new(RegionKind::Treegion);
    let mut unprocessed: VecDeque<BlockId> = VecDeque::new();
    unprocessed.push_back(f.entry());

    while let Some(node) = unprocessed.pop_front() {
        if set.region_of(node).is_some() {
            continue;
        }
        let mut region = Region::new(RegionKind::Treegion, node);
        let saplings = absorb_into_tree(&mut region, node, &cfg, &set);
        for s in saplings {
            if set.region_of(s).is_none() {
                unprocessed.push_back(s);
            }
        }
        set.add(region);
    }

    // Sweep unreachable blocks (never produced by our workloads, but the
    // partition invariant must hold regardless).
    for b in f.block_ids() {
        if set.region_of(b).is_none() {
            let mut region = Region::new(RegionKind::Treegion, b);
            let saplings = absorb_into_tree(&mut region, b, &cfg, &set);
            let _ = saplings;
            set.add(region);
        }
    }
    set
}

/// The flow facts `absorb-into-tree` consumes: per-edge successor lists
/// and incoming-edge (merge) counts. Implemented by the snapshot
/// [`Cfg`] for plain formation and by tail duplication's incrementally
/// maintained view (rebuilding a whole-function `Cfg` after every
/// single-block duplication dominated `treeform-td`'s cost).
pub(crate) trait FlowFacts {
    /// Successors of `b`, one entry per terminator edge, in edge order.
    fn succs(&self, b: BlockId) -> &[BlockId];
    /// Number of incoming edges of `b`.
    fn merge_count(&self, b: BlockId) -> usize;
}

impl FlowFacts for Cfg {
    fn succs(&self, b: BlockId) -> &[BlockId] {
        Cfg::succs(self, b)
    }
    fn merge_count(&self, b: BlockId) -> usize {
        Cfg::merge_count(self, b)
    }
}

/// Figure 2's `absorb-into-tree`: starting from `node` (already the root
/// of `region`), absorb successors depth-first, skipping merge points and
/// blocks already in a region. Returns the saplings encountered.
///
/// The candidate queue is a stack pushed at the front (the paper adds
/// successors "to (front of) candidate queue"), giving a depth-first
/// absorption order.
pub(crate) fn absorb_into_tree<F: FlowFacts>(
    region: &mut Region,
    node: BlockId,
    cfg: &F,
    set: &RegionSet,
) -> Vec<BlockId> {
    let mut saplings = Vec::new();
    // Each candidate carries the parent edge it was reached through.
    let mut candidates: VecDeque<(BlockId, BlockId, usize)> = VecDeque::new();
    push_successors(&mut candidates, node, cfg);

    while let Some((cand, parent, succ_index)) = candidates.pop_front() {
        if region.contains(cand) {
            // Already absorbed via another edge: the remaining edge stays
            // an exit edge (absorbing it again would create a DAG/cycle).
            continue;
        }
        if set.region_of(cand).is_some() {
            saplings.push(cand);
            continue;
        }
        if cfg.merge_count(cand) > 1 {
            // Merge points delimit treegions; they become saplings.
            if !saplings.contains(&cand) {
                saplings.push(cand);
            }
            continue;
        }
        region.absorb(cand, parent, succ_index);
        push_successors(&mut candidates, cand, cfg);
    }
    saplings
}

fn push_successors<F: FlowFacts>(
    candidates: &mut VecDeque<(BlockId, BlockId, usize)>,
    from: BlockId,
    cfg: &F,
) {
    // Push to the *front* in reverse so the first successor is processed
    // first (depth-first, successor order preserved).
    for (i, &s) in cfg.succs(from).iter().enumerate().rev() {
        candidates.push_front((s, from, i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure1_cfg;
    use treegion_ir::{FunctionBuilder, Op};

    #[test]
    fn figure1_forms_three_treegions() {
        let (f, ids) = figure1_cfg();
        let set = form_treegions(&f);
        assert!(set.is_partition_of(&f));
        // Expected: {bb1,bb2,bb3,bb4,bb8}, {bb5,bb6,bb7}, {bb9} —
        // bb5 and bb9 are merge points.
        assert_eq!(set.len(), 3);
        let top = set.region(set.region_of(ids[0]).unwrap());
        let mut blocks = top.blocks().to_vec();
        blocks.sort_by_key(|b| b.index());
        assert_eq!(blocks, vec![ids[0], ids[1], ids[2], ids[3], ids[7]]);
        let mid = set.region(set.region_of(ids[4]).unwrap());
        assert_eq!(mid.num_blocks(), 3);
        let last = set.region(set.region_of(ids[8]).unwrap());
        assert_eq!(last.num_blocks(), 1);
    }

    #[test]
    fn treegions_are_trees() {
        let (f, _) = figure1_cfg();
        let set = form_treegions(&f);
        for r in set.regions() {
            assert!(r.is_tree());
        }
    }

    #[test]
    fn loop_header_roots_its_own_treegion() {
        // bb0 -> bb1; bb1 -> {bb2, bb3}; bb2 -> bb1 (back edge).
        let mut b = FunctionBuilder::new("loop");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let c = b.gpr();
        b.push(ids[0], Op::movi(c, 1));
        b.jump(ids[0], ids[1], 10.0);
        b.branch(ids[1], c, (ids[2], 90.0), (ids[3], 10.0));
        b.jump(ids[2], ids[1], 90.0);
        b.ret(ids[3], None);
        let f = b.finish();
        let set = form_treegions(&f);
        assert!(set.is_partition_of(&f));
        // bb1 is a merge point (entry edge + back edge): roots a region
        // containing bb2 and bb3 as children.
        let header_region = set.region(set.region_of(ids[1]).unwrap());
        assert_eq!(header_region.root(), ids[1]);
        assert_eq!(header_region.num_blocks(), 3);
        assert!(header_region.is_tree());
        // bb0 is alone.
        assert_eq!(set.region(set.region_of(ids[0]).unwrap()).num_blocks(), 1);
    }

    #[test]
    fn straight_line_function_is_one_treegion() {
        let mut b = FunctionBuilder::new("line");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        for w in 0..3 {
            b.jump(ids[w], ids[w + 1], 5.0);
        }
        b.ret(ids[3], None);
        let f = b.finish();
        let set = form_treegions(&f);
        assert_eq!(set.len(), 1);
        assert_eq!(set.regions()[0].num_blocks(), 4);
        assert!(set.regions()[0].is_linear());
    }

    #[test]
    fn switch_fans_out_into_one_treegion() {
        let mut b = FunctionBuilder::new("sw");
        let ids: Vec<_> = (0..5).map(|_| b.block()).collect();
        let on = b.gpr();
        b.push(ids[0], Op::movi(on, 2));
        b.switch(
            ids[0],
            on,
            vec![(0, ids[1], 10.0), (1, ids[2], 20.0), (2, ids[3], 30.0)],
            (ids[4], 5.0),
        );
        for &i in &ids[1..] {
            b.ret(i, None);
        }
        let f = b.finish();
        let set = form_treegions(&f);
        assert_eq!(set.len(), 1);
        assert_eq!(set.regions()[0].num_blocks(), 5);
        assert_eq!(set.regions()[0].path_count(), 4);
    }

    #[test]
    fn duplicate_switch_targets_make_merge_points() {
        // Two switch cases to the same block: target has 2 incoming edges,
        // so it is a merge point and roots its own treegion.
        let mut b = FunctionBuilder::new("dup");
        let ids: Vec<_> = (0..3).map(|_| b.block()).collect();
        let on = b.gpr();
        b.push(ids[0], Op::movi(on, 0));
        b.switch(
            ids[0],
            on,
            vec![(0, ids[1], 5.0), (1, ids[1], 5.0)],
            (ids[2], 2.0),
        );
        b.ret(ids[1], None);
        b.ret(ids[2], None);
        let f = b.finish();
        let set = form_treegions(&f);
        assert!(set.is_partition_of(&f));
        assert_eq!(set.len(), 2);
        assert_eq!(set.region(set.region_of(ids[1]).unwrap()).root(), ids[1]);
    }
}
