//! Treegion formation with tail duplication — the paper's Figure 11
//! (`treeform-td`).
//!
//! After a treegion is grown normally, qualifying saplings (merge points
//! hanging off the leaves) are tail duplicated: the sapling is cloned, the
//! in-tree edge is retargeted to the clone, and the clone — now having a
//! single incoming edge — is absorbed. Profile weight is split between the
//! clone and the original so flow conservation is preserved exactly.
//!
//! Three heuristics bound the process (Section 4):
//! * **code expansion limit** — a treegion's op count may not exceed
//!   `code_expansion` × the op count of its distinct original blocks;
//! * **path count limit** — at most `path_limit` root→leaf paths;
//! * **merge count limit** — saplings with more than `merge_limit`
//!   incoming edges are not duplicated *unless* they have no successors
//!   (e.g. function exits, which are cheap to duplicate).

use crate::form::treegion::{absorb_into_tree, FlowFacts};
use crate::{FormOutcome, Region, RegionKind, RegionSet};
use std::collections::VecDeque;
use treegion_ir::{Block, BlockId, Function};

/// Limits applied during tail duplication (Section 4 defaults: merge
/// count 4, path count 20; the paper evaluates code expansion limits of
/// 2.0 and 3.0).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TailDupLimits {
    /// Maximum ratio of treegion ops to the ops of its distinct original
    /// blocks.
    pub code_expansion: f64,
    /// Maximum number of distinct execution paths per treegion.
    pub path_limit: usize,
    /// Maximum incoming-edge count of a sapling eligible for duplication
    /// (ignored for saplings with no successors).
    pub merge_limit: usize,
}

impl TailDupLimits {
    /// The paper's configuration with code expansion limit 2.0.
    pub fn expansion_2_0() -> Self {
        TailDupLimits {
            code_expansion: 2.0,
            path_limit: 20,
            merge_limit: 4,
        }
    }

    /// The paper's configuration with code expansion limit 3.0.
    pub fn expansion_3_0() -> Self {
        TailDupLimits {
            code_expansion: 3.0,
            ..TailDupLimits::expansion_2_0()
        }
    }
}

impl Default for TailDupLimits {
    fn default() -> Self {
        TailDupLimits::expansion_2_0()
    }
}

/// Forms treegions with tail duplication over a copy of `f` (Figure 11).
pub fn form_treegions_td(f: &Function, limits: &TailDupLimits) -> FormOutcome {
    let mut func = f.clone();
    let mut origin: Vec<BlockId> = func.block_ids().collect();
    let mut set = RegionSet::new(RegionKind::Treegion);
    // Flow facts maintained incrementally across duplications. The seed
    // rebuilt a whole-function `Cfg` (successor lists, predecessor
    // lists, DFS postorder) three times per absorbed sapling; a
    // single-block duplication only perturbs the clone, its source, and
    // the clone's successors, so the view updates in O(out-degree).
    let mut flow = FlowView::new(&func);
    let mut unprocessed: VecDeque<BlockId> = VecDeque::new();
    unprocessed.push_back(func.entry());

    while let Some(node) = unprocessed.pop_front() {
        if set.region_of(node).is_some() {
            continue;
        }
        let region = grow_region_td(&mut func, &mut origin, &mut flow, &set, node, limits);
        // Enqueue remaining saplings.
        for exit in region.exit_edges(&func) {
            if exit.succ_index == usize::MAX {
                continue;
            }
            let target = func.block(exit.from).term.edges()[exit.succ_index].target;
            if set.region_of(target).is_none() && !region.contains(target) {
                unprocessed.push_back(target);
            }
        }
        set.add(region);
    }

    // Sweep leftovers (unreachable blocks).
    for b in func.block_ids().collect::<Vec<_>>() {
        if set.region_of(b).is_none() {
            let region = grow_region_td(&mut func, &mut origin, &mut flow, &set, b, limits);
            set.add(region);
        }
    }
    debug_assert!(set.is_partition_of(&func));
    FormOutcome {
        function: func,
        regions: set,
        origin,
        original_ops: f.num_ops(),
        original_blocks: f.num_blocks(),
    }
}

/// Incrementally maintained per-edge successor lists and incoming-edge
/// counts — the subset of [`treegion_analysis::Cfg`] that `treeform-td`
/// consumes, kept exact across tail duplications instead of rebuilt from
/// scratch around every candidate.
struct FlowView {
    /// `succs[b]`: successors of block `b`, one entry per terminator
    /// edge, in edge order (mirrors `Block::successors`).
    succs: Vec<Vec<BlockId>>,
    /// `pred_count[b]`: number of incoming edges of `b` (the merge count).
    pred_count: Vec<u32>,
}

impl FlowView {
    fn new(f: &Function) -> Self {
        let mut succs = Vec::with_capacity(f.num_blocks());
        for (_, block) in f.blocks() {
            succs.push(block.successors());
        }
        let mut pred_count = vec![0u32; succs.len()];
        for ss in &succs {
            for s in ss {
                pred_count[s.index()] += 1;
            }
        }
        FlowView { succs, pred_count }
    }

    /// Applies the flow effect of [`split_off_copy`]: `dup` (a clone of
    /// `block`) was appended and the edge `(leaf, si)` retargeted to it.
    /// The clone inherits `block`'s out-edges verbatim (profile scaling
    /// does not change targets), so each of its successors gains one
    /// incoming edge; `block` loses the retargeted edge and `dup` gains
    /// it as its single predecessor.
    fn note_split(&mut self, block: BlockId, dup: BlockId, leaf: BlockId, si: usize) {
        debug_assert_eq!(dup.index(), self.succs.len());
        let dup_succs = self.succs[block.index()].clone();
        for s in &dup_succs {
            self.pred_count[s.index()] += 1;
        }
        self.succs.push(dup_succs);
        self.pred_count.push(1);
        self.pred_count[block.index()] -= 1;
        self.succs[leaf.index()][si] = dup;
    }
}

impl FlowFacts for FlowView {
    fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }
    fn merge_count(&self, b: BlockId) -> usize {
        self.pred_count[b.index()] as usize
    }
}

/// Grows one treegion from `root`, applying tail duplication until no
/// sapling qualifies.
fn grow_region_td(
    func: &mut Function,
    origin: &mut Vec<BlockId>,
    flow: &mut FlowView,
    set: &RegionSet,
    root: BlockId,
    limits: &TailDupLimits,
) -> Region {
    let mut region = Region::new(RegionKind::Treegion, root);
    absorb_into_tree(&mut region, root, flow, set);

    loop {
        if region.path_count() >= limits.path_limit {
            break;
        }
        // Candidate saplings: exit-edge targets not in any region.
        let mut chosen: Option<(BlockId, BlockId, usize)> = None; // (sapling, leaf, si)
        for exit in region.exit_edges(func) {
            if exit.succ_index == usize::MAX {
                continue;
            }
            let target = func.block(exit.from).term.edges()[exit.succ_index].target;
            if region.contains(target) || set.region_of(target).is_some() {
                continue;
            }
            let merge_count = flow.merge_count(target);
            let will_copy = merge_count > 1;
            if exceeds_expansion(
                func,
                origin,
                &region,
                target,
                will_copy,
                limits.code_expansion,
            ) {
                continue;
            }
            let has_succs = func.block(target).term.num_successors() > 0;
            if merge_count > limits.merge_limit && has_succs {
                continue;
            }
            chosen = Some((target, exit.from, exit.succ_index));
            break;
        }
        let Some((sapling, leaf, si)) = chosen else {
            break;
        };

        if flow.merge_count(sapling) > 1 {
            // Tail duplicate: clone the sapling for this in-tree edge.
            let dup = split_off_copy(func, origin, sapling, leaf, si);
            flow.note_split(sapling, dup, leaf, si);
            region.absorb(dup, leaf, si);
            absorb_into_tree(&mut region, dup, flow, set);
        } else {
            // Single remaining incoming edge: absorb directly.
            region.absorb(sapling, leaf, si);
            absorb_into_tree(&mut region, sapling, flow, set);
        }
    }
    region
}

/// Would absorbing (a copy of) `sapling` push the region past the code
/// expansion limit? The region's total ops (copies included) may not
/// exceed `limit` × the ops of its *original* (non-copy) blocks. Charging
/// every copy against its absorbing region's original content bounds the
/// whole-program expansion by `limit` as well, matching the moderate
/// actual expansions the paper reports in Table 3.
fn exceeds_expansion(
    func: &Function,
    origin: &[BlockId],
    region: &Region,
    sapling: BlockId,
    will_copy: bool,
    limit: f64,
) -> bool {
    let sapling_ops = func.block(sapling).ops.len();
    let region_ops = region.num_source_ops(func) + sapling_ops;
    let mut orig_ops: usize = region
        .blocks()
        .iter()
        .filter(|b| origin[b.index()] == **b)
        .map(|b| func.block(*b).ops.len())
        .sum();
    if !will_copy && origin[sapling.index()] == sapling {
        orig_ops += sapling_ops;
    }
    region_ops as f64 > limit * orig_ops.max(1) as f64
}

/// Clones `block`, giving the clone the share of profile weight carried by
/// the in-tree edge `(leaf, si)`, retargets that edge to the clone, and
/// returns the clone's id.
fn split_off_copy(
    func: &mut Function,
    origin: &mut Vec<BlockId>,
    block: BlockId,
    leaf: BlockId,
    si: usize,
) -> BlockId {
    let edge_count = func.block(leaf).term.edges()[si].count;
    let weight = func.block(block).weight;
    let frac = if weight > 0.0 {
        (edge_count / weight).min(1.0)
    } else {
        0.0
    };
    let mut copy: Block = func.block(block).clone();
    copy.weight = weight * frac;
    copy.term.scale_counts(frac);
    let dup = func.add_block(copy);
    origin.push(origin[block.index()]);
    {
        let orig = func.block_mut(block);
        orig.weight = weight * (1.0 - frac);
        orig.term.scale_counts(1.0 - frac);
    }
    // Retarget the in-tree edge (and only it) to the clone.
    let term = &mut func.block_mut(leaf).term;
    let mut idx = 0usize;
    term.retarget(move |t| {
        let res = if idx == si { dup } else { t };
        idx += 1;
        res
    });
    dup
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure1_cfg;
    use treegion_ir::{verify_profile, FunctionBuilder, Op};

    #[test]
    fn figure12_shape_whole_cfg_can_become_one_treegion() {
        // With a generous expansion limit, the Figure 1 CFG collapses into
        // a single treegion where every original path is a unique tree
        // path (the paper: "resulting in one large treegion").
        let (f, ids) = figure1_cfg();
        let limits = TailDupLimits {
            code_expansion: 10.0,
            path_limit: 20,
            merge_limit: 4,
        };
        let res = form_treegions_td(&f, &limits);
        assert!(res.regions.is_partition_of(&res.function));
        verify_profile(&res.function).unwrap();
        let top = res.regions.region(res.regions.region_of(ids[0]).unwrap());
        // Paths: bb1-2-3-5-6-9, -7-9, bb1-2-4-5-6-9, -7-9, bb1-8-9 => 5.
        assert_eq!(top.path_count(), 5);
        assert!(top.is_tree());
    }

    #[test]
    fn duplication_preserves_flow_conservation() {
        let (f, _) = figure1_cfg();
        for limits in [
            TailDupLimits::expansion_2_0(),
            TailDupLimits::expansion_3_0(),
        ] {
            let res = form_treegions_td(&f, &limits);
            verify_profile(&res.function).unwrap();
        }
    }

    #[test]
    fn expansion_limit_bounds_region_growth() {
        let (f, _) = figure1_cfg();
        let res = form_treegions_td(&f, &TailDupLimits::expansion_2_0());
        for r in res.regions.regions() {
            let region_ops = r.num_source_ops(&res.function);
            let origins: std::collections::HashSet<_> =
                r.blocks().iter().map(|b| res.origin[b.index()]).collect();
            let orig_ops: usize = origins
                .iter()
                .map(|b| res.function.block(*b).ops.len())
                .sum();
            assert!(
                region_ops as f64 <= 2.0 * orig_ops.max(1) as f64 + f64::EPSILON,
                "region ops {region_ops} exceed limit over {orig_ops}"
            );
        }
    }

    #[test]
    fn path_limit_is_respected() {
        let (f, _) = figure1_cfg();
        let limits = TailDupLimits {
            code_expansion: 100.0,
            path_limit: 3,
            merge_limit: 10,
        };
        let res = form_treegions_td(&f, &limits);
        for r in res.regions.regions() {
            assert!(r.path_count() <= 3, "path count {}", r.path_count());
        }
    }

    #[test]
    fn merge_limit_blocks_wide_merges_with_successors() {
        // Four blocks all jumping to one merge that then continues.
        let mut b = FunctionBuilder::new("wide");
        let ids: Vec<_> = (0..7).map(|_| b.block()).collect();
        let on = b.gpr();
        b.push(ids[0], Op::movi(on, 0));
        b.switch(
            ids[0],
            on,
            vec![(0, ids[1], 10.0), (1, ids[2], 10.0), (2, ids[3], 10.0)],
            (ids[4], 10.0),
        );
        for k in 1..=4 {
            b.jump(ids[k], ids[5], 10.0);
        }
        b.jump(ids[5], ids[6], 40.0);
        b.ret(ids[6], None);
        let f = b.finish();
        let limits = TailDupLimits {
            code_expansion: 100.0,
            path_limit: 20,
            merge_limit: 3, // ids[5] has merge count 4 > 3 and a successor
        };
        let res = form_treegions_td(&f, &limits);
        // ids[5] must not have been duplicated: block count unchanged…
        // except ids[6]? ids[6] has merge count 1 once ids[5] kept whole.
        assert_eq!(res.function.num_blocks(), f.num_blocks());
        let r5 = res.regions.region(res.regions.region_of(ids[5]).unwrap());
        assert_eq!(r5.root(), ids[5]);
    }

    #[test]
    fn exit_blocks_are_duplicated_despite_merge_limit() {
        // Same shape but the merge is a return block (no successors):
        // eligible for duplication regardless of merge count.
        let mut b = FunctionBuilder::new("exits");
        let ids: Vec<_> = (0..6).map(|_| b.block()).collect();
        let on = b.gpr();
        b.push(ids[0], Op::movi(on, 0));
        b.switch(
            ids[0],
            on,
            vec![(0, ids[1], 10.0), (1, ids[2], 10.0), (2, ids[3], 10.0)],
            (ids[4], 10.0),
        );
        for k in 1..=4 {
            b.jump(ids[k], ids[5], 10.0);
        }
        b.ret(ids[5], None);
        let f = b.finish();
        let limits = TailDupLimits {
            code_expansion: 100.0,
            path_limit: 20,
            merge_limit: 2,
        };
        let res = form_treegions_td(&f, &limits);
        assert!(res.function.num_blocks() > f.num_blocks());
        verify_profile(&res.function).unwrap();
        // Everything collapses into one treegion.
        assert_eq!(res.regions.len(), 1);
    }

    #[test]
    fn all_regions_are_trees_and_origins_valid() {
        let (f, _) = figure1_cfg();
        let res = form_treegions_td(&f, &TailDupLimits::expansion_3_0());
        for r in res.regions.regions() {
            assert!(r.is_tree());
        }
        for &o in &res.origin {
            assert!(o.index() < f.num_blocks());
        }
    }

    #[test]
    fn loops_are_safe_under_tail_duplication() {
        let mut b = FunctionBuilder::new("loop");
        let ids: Vec<_> = (0..4).map(|_| b.block()).collect();
        let c = b.gpr();
        b.push(ids[0], Op::movi(c, 1));
        b.jump(ids[0], ids[1], 10.0);
        b.branch(ids[1], c, (ids[2], 90.0), (ids[3], 10.0));
        b.jump(ids[2], ids[1], 90.0);
        b.ret(ids[3], None);
        let f = b.finish();
        let res = form_treegions_td(&f, &TailDupLimits::expansion_3_0());
        assert!(res.regions.is_partition_of(&res.function));
        verify_profile(&res.function).unwrap();
        for r in res.regions.regions() {
            assert!(r.is_tree());
        }
    }
}
