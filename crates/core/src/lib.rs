//! # treegion
//!
//! Reproduction of the core contribution of *"Treegion Scheduling for
//! Wide Issue Processors"* (Havanki, Banerjia, Conte — HPCA 1998):
//! treegion formation, tail duplication, and treegion scheduling with the
//! paper's four priority heuristics, alongside the baselines it compares
//! against (basic blocks, simple linear regions, superblocks).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod contain;
mod ddg;
mod error;
mod fault;
mod form;
mod former;
mod heuristic;
mod lower;
mod observe;
mod pipeline;
mod region;
mod robust;
mod sched;
#[cfg(debug_assertions)]
mod sched_ref;
mod verify_sched;

pub use contain::{ContainmentAction, ContainmentCause, ContainmentEvent, RetryPolicy};
pub use ddg::{Ddg, Dep, DepKind};
pub use error::{
    Budgets, DegradationEvent, FallbackLevel, FallbackPolicy, PipelineError, SchedFailure,
    VerifyMode,
};
pub use fault::{FaultClass, FaultInjector, FaultPlan};
pub use form::{
    form_basic_blocks, form_slrs, form_superblocks, form_treegions, form_treegions_td,
    TailDupLimits,
};
pub use former::{FormOutcome, RegionConfig, RegionFormer};
pub use heuristic::{Heuristic, Priority};
pub use lower::{
    lower_region, try_lower_region, LOp, LOpKind, LoweredRegion, OpOrigin, RNode, RegionExit,
};
pub use observe::{
    EventLog, NullObserver, PassObserver, Profiler, Stage, StageProfile, StageScope, StageStats,
};
pub use pipeline::{
    form_and_lower, FunctionRun, LoweredFunction, ModuleRun, Pipeline, RegionSchedule,
};
pub use region::{ExitEdge, Region, RegionId, RegionKind, RegionSet};
#[allow(deprecated)]
pub use robust::schedule_function_robust;
pub use robust::{carve_bb, carve_slr, RegionOutcome, RobustOptions, RobustResult};
pub use sched::{
    last_sched_metrics, render_schedule, schedule_region, schedule_with_ddg, try_schedule_region,
    try_schedule_with_ddg, SchedMetrics, Schedule, ScheduleOptions, TieBreak,
};
#[cfg(debug_assertions)]
pub use sched_ref::schedule_with_ddg_reference;
pub use verify_sched::{verify_schedule, ScheduleError, ScheduleErrorKind};

#[cfg(test)]
pub(crate) mod testutil {
    use treegion_ir::{BlockId, Function, FunctionBuilder, Op};

    /// The CFG of the paper's Figure 1:
    /// bb1 -> {bb2, bb8}; bb2 -> {bb3, bb4}; bb3 -> bb5; bb4 -> bb5;
    /// bb5 -> {bb6, bb7}; bb6 -> bb9; bb7 -> bb9; bb8 -> bb9; bb9 ret.
    /// (Our ids are 0-based: bb1 == index 0 ... bb9 == index 8.)
    pub(crate) fn figure1_cfg() -> (Function, Vec<BlockId>) {
        let mut b = FunctionBuilder::new("fig1");
        let ids: Vec<_> = (0..9).map(|_| b.block()).collect();
        let c = b.gpr();
        b.push(ids[0], Op::movi(c, 1));
        b.branch(ids[0], c, (ids[1], 60.0), (ids[7], 40.0)); // bb1 -> bb2, bb8
        b.branch(ids[1], c, (ids[2], 35.0), (ids[3], 25.0)); // bb2 -> bb3, bb4
        b.jump(ids[2], ids[4], 35.0); // bb3 -> bb5
        b.jump(ids[3], ids[4], 25.0); // bb4 -> bb5
        b.branch(ids[4], c, (ids[5], 30.0), (ids[6], 30.0)); // bb5 -> bb6, bb7
        b.jump(ids[5], ids[8], 30.0); // bb6 -> bb9
        b.jump(ids[6], ids[8], 30.0); // bb7 -> bb9
        b.jump(ids[7], ids[8], 40.0); // bb8 -> bb9
        b.ret(ids[8], None); // bb9
        (b.finish(), ids)
    }
}
