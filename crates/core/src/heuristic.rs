//! The paper's four treegion scheduling heuristics (Section 3).
//!
//! Each heuristic is a static priority assigned to every op before list
//! scheduling; the list scheduler picks ready ops in descending priority.
//! All heuristics break remaining ties by dependence height and then by
//! source order, as the paper specifies.

use crate::ddg::Ddg;
use crate::lower::LoweredRegion;
use treegion_machine::MachineModel;

/// Which priority function drives the list scheduler.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Critical-path scheduling: priority = dependence height. Maximum
    /// speculation; the paper's baseline heuristic (Figure 6).
    DependenceHeight,
    /// Priority = number of exits that follow the op in control flow
    /// (adapted from speculative hedge's *helped count*); ties by height.
    /// The paper shows this misfires on wide, shallow treegions (Figure 9).
    ExitCount,
    /// Priority = profile weight of the op's home block (equals the total
    /// weight of all exits the op helps, since a treegion is a tree);
    /// ties by height. The paper's best performer.
    GlobalWeight,
    /// Priority = (weight, exit count, height). The combination heuristic;
    /// degrades on linearized equal-weight treegions (Figure 10).
    WeightedCount,
    /// Priority = (net register release, weight, height). The
    /// pressure-aware heuristic beyond the paper: ops that free more
    /// live ranges than they open (their operands' last uses outnumber
    /// their defs) go first, which drains pressure before it piles up
    /// against a finite register file. Ties fall back to the paper's
    /// best performer (global weight), then height. Deliberately *not*
    /// in [`Heuristic::ALL`] — it is an extension axis, not one of the
    /// paper's four.
    RegPressure,
}

impl Heuristic {
    /// The paper's four heuristics in the order the paper presents them
    /// ([`Heuristic::RegPressure`] is an extension and excluded).
    pub const ALL: [Heuristic; 4] = [
        Heuristic::DependenceHeight,
        Heuristic::ExitCount,
        Heuristic::GlobalWeight,
        Heuristic::WeightedCount,
    ];

    /// Short name used in reports ("dep-height", "exit-count", ...).
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::DependenceHeight => "dep-height",
            Heuristic::ExitCount => "exit-count",
            Heuristic::GlobalWeight => "global-weight",
            Heuristic::WeightedCount => "weighted-count",
            Heuristic::RegPressure => "pressure",
        }
    }

    /// Computes the priority key of every op. Keys compare
    /// lexicographically, larger = scheduled first.
    pub fn priorities(self, lr: &LoweredRegion, ddg: &Ddg, m: &MachineModel) -> Vec<Priority> {
        let heights = ddg.heights(lr, m);
        let aux = self.pressure_aux(lr);
        (0..lr.lops.len())
            .map(|i| Priority {
                key: self.key_components(lr, &aux, i, heights[i]),
            })
            .collect()
    }

    /// Per-op static net-release deltas for [`Heuristic::RegPressure`]:
    /// `delta[i]` = (registers whose textually last use — operand, guard,
    /// or exit-copy source attributed to the exit's branch — is op `i`)
    /// minus (registers op `i` defines). Purely positional (lop order),
    /// so the optimized scheduler and the reference oracle derive the
    /// identical key from the lowering alone. Empty for every other
    /// heuristic (no allocation).
    pub(crate) fn pressure_aux(self, lr: &LoweredRegion) -> Vec<f64> {
        if self != Heuristic::RegPressure {
            return Vec::new();
        }
        let mut last_use: std::collections::HashMap<treegion_ir::Reg, usize> =
            std::collections::HashMap::new();
        for (i, l) in lr.lops.iter().enumerate() {
            for &u in &l.op.uses {
                last_use.insert(u, i);
            }
            if let Some(g) = l.guard {
                last_use.insert(g, i);
            }
        }
        for exit in &lr.exits {
            for &(_, src) in &exit.copies {
                let e = last_use.entry(src).or_insert(exit.branch_lop);
                *e = (*e).max(exit.branch_lop);
            }
        }
        // `0.0 - n` (not `-n`) so a zero-def op yields +0.0, never -0.0:
        // the packed integer keys order -0.0 below +0.0 while the
        // reference oracle's f64 comparison calls them equal, and the two
        // schedulers must sort identically.
        let mut delta: Vec<f64> = lr
            .lops
            .iter()
            .map(|l| 0.0 - (l.op.defs.len() as f64))
            .collect();
        for &i in last_use.values() {
            delta[i] += 1.0;
        }
        delta
    }

    /// The raw priority components of op `i` given its dependence
    /// height — the single-op core of [`Heuristic::priorities`], exposed
    /// crate-internally so the list scheduler can fuse key packing into
    /// its ready-key construction pass without materializing a
    /// `Vec<Priority>` first. Must stay in lockstep with `priorities`
    /// (it *is* its body) so packed and unpacked comparisons agree.
    /// `aux` is [`Heuristic::pressure_aux`] output (read only by
    /// [`Heuristic::RegPressure`]).
    #[inline]
    pub(crate) fn key_components(
        self,
        lr: &LoweredRegion,
        aux: &[f64],
        i: usize,
        height: u32,
    ) -> [f64; 4] {
        let node = &lr.nodes[lr.lops[i].home];
        let h = height as f64;
        match self {
            Heuristic::DependenceHeight => [h, 0.0, 0.0, 0.0],
            Heuristic::ExitCount => [node.exits_below as f64, h, 0.0, 0.0],
            Heuristic::GlobalWeight => [node.weight, h, 0.0, 0.0],
            Heuristic::WeightedCount => [node.weight, node.exits_below as f64, h, 0.0],
            Heuristic::RegPressure => [aux[i], node.weight, h, 0.0],
        }
    }
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A lexicographic priority key (larger is more urgent).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Priority {
    key: [f64; 4],
}

impl Priority {
    /// The raw key components.
    pub fn key(&self) -> [f64; 4] {
        self.key
    }

    /// Packs the key into four order-preserving `u64` words; see
    /// [`pack3`], which the list scheduler uses directly.
    #[cfg(test)]
    pub(crate) fn packed(&self) -> [u64; 4] {
        pack3(self.key)
    }
}

/// Packs a raw key quadruple into four order-preserving `u64` words so
/// the list scheduler's ready queue can compare priorities with plain
/// integer comparisons instead of four `f64::partial_cmp` calls per
/// element per sort pass. The scheduler feeds it
/// [`Heuristic::key_components`] output directly, skipping any
/// intermediate `Vec<Priority>`. (The name predates the fourth
/// component, added when the pressure heuristic widened every key; the
/// per-word transform is unchanged.)
///
/// The packing is the usual total-order bit trick (flip all bits of
/// negatives, set the sign bit of non-negatives): for the finite values
/// heuristics produce (heights, exit counts, profile weights, and
/// net-release deltas, which may be negative) `pack3(a) <= pack3(b)` iff
/// `a <= b` under [`Priority`]'s `Ord` — with one documented exception:
/// `pack(-0.0) < pack(+0.0)` while IEEE comparison (hence `Ord`) treats
/// them as equal. Heuristic components are therefore never produced as
/// `-0.0` ([`Heuristic::pressure_aux`] computes `0.0 - n` rather than
/// `-n` for exactly this reason; the property tests pin both facts).
/// NaN is rejected in debug builds: every component is built from
/// integer counts or summed non-negative profile weights, so a NaN
/// reaching the packer is a bug upstream, not an orderable key.
#[inline]
pub(crate) fn pack3(key: [f64; 4]) -> [u64; 4] {
    #[inline]
    fn pack(x: f64) -> u64 {
        debug_assert!(!x.is_nan(), "NaN heuristic key component");
        let b = x.to_bits();
        if b & (1 << 63) != 0 {
            !b
        } else {
            b | (1 << 63)
        }
    }
    [pack(key[0]), pack(key[1]), pack(key[2]), pack(key[3])]
}

impl Eq for Priority {}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for (a, b) in self.key.iter().zip(other.key.iter()) {
            match a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_region;
    use crate::{form_treegions, Ddg};
    use treegion_analysis::{Cfg, Liveness};
    use treegion_ir::{FunctionBuilder, Op};

    fn fanout() -> (LoweredRegion, Ddg, MachineModel) {
        // Root with two children of different weight; root ops help both
        // exits, child ops help one.
        let mut b = FunctionBuilder::new("f");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (x, c, y, z) = (b.gpr(), b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::movi(x, 1), Op::movi(c, 0)]);
        b.branch(bb0, c, (bb1, 90.0), (bb2, 10.0));
        b.push(bb1, Op::add(y, x, x));
        b.ret(bb1, Some(y));
        b.push(bb2, Op::add(z, x, x));
        b.ret(bb2, Some(z));
        let f = b.finish();
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let r = set.region(set.region_of(f.entry()).unwrap()).clone();
        let m = MachineModel::model_4u();
        let lr = lower_region(&f, &r, &live, None);
        let ddg = Ddg::build(&lr, &m);
        (lr, ddg, m)
    }

    fn find_add(lr: &LoweredRegion, node: usize) -> usize {
        lr.lops
            .iter()
            .position(|l| l.op.opcode == treegion_ir::Opcode::Add && l.home == node)
            .unwrap()
    }

    #[test]
    fn global_weight_prefers_hot_path_ops() {
        let (lr, ddg, m) = fanout();
        let p = Heuristic::GlobalWeight.priorities(&lr, &ddg, &m);
        let hot = find_add(&lr, 1);
        let cold = find_add(&lr, 2);
        assert!(p[hot] > p[cold]);
    }

    #[test]
    fn exit_count_prefers_root_ops() {
        let (lr, ddg, m) = fanout();
        let p = Heuristic::ExitCount.priorities(&lr, &ddg, &m);
        let root_movi = 0usize; // first lop is in the root
        let hot = find_add(&lr, 1);
        assert_eq!(lr.lops[root_movi].home, 0);
        assert!(p[root_movi] > p[hot]);
    }

    #[test]
    fn dependence_height_ignores_weight() {
        let (lr, ddg, m) = fanout();
        let p = Heuristic::DependenceHeight.priorities(&lr, &ddg, &m);
        let hot = find_add(&lr, 1);
        let cold = find_add(&lr, 2);
        // Symmetric adds on both paths: identical height, identical priority.
        assert_eq!(p[hot], p[cold]);
    }

    #[test]
    fn weighted_count_orders_weight_then_exits() {
        let a = Priority {
            key: [5.0, 1.0, 9.0, 0.0],
        };
        let b = Priority {
            key: [5.0, 2.0, 0.0, 0.0],
        };
        let c = Priority {
            key: [6.0, 0.0, 0.0, 0.0],
        };
        assert!(b > a);
        assert!(c > b);
        let mut v = vec![a, b, c];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn packed_keys_preserve_priority_order() {
        let keys = [
            [0.0, 0.0, 0.0, 0.0],
            [0.5, 3.0, 1.0, 0.0],
            [1.0, 0.0, 2.0, 4.0],
            [1.0, 2.0, 0.0, 0.0],
            [90.0, 1.0, 7.0, 2.0],
            [100.5, 0.25, 3.0, 0.0],
            // Negative components (pressure deltas) and the fourth word.
            [-1.0, 5.0, 0.0, 0.0],
            [-2.5, 5.0, 0.0, 1.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        for a in keys {
            for b in keys {
                let (pa, pb) = (Priority { key: a }, Priority { key: b });
                assert_eq!(
                    pa.packed().cmp(&pb.packed()),
                    pa.cmp(&pb),
                    "packed order diverges for {a:?} vs {b:?}"
                );
                assert_eq!(pack3(a).cmp(&pack3(b)), pa.cmp(&pb));
            }
        }
    }

    /// Property sweep over the tricky corners of the f64 total-order bit
    /// trick on the widened 4-component key: subnormals, signed zeros,
    /// negatives, and extreme magnitudes must pack in exactly the order
    /// `f64::partial_cmp` gives — except the documented signed-zero split.
    #[test]
    fn pack_orders_subnormals_and_negatives_like_partial_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            f64::MIN,
            -1.0e300,
            -2.0,
            -1.0,
            -f64::MIN_POSITIVE, // largest-magnitude negative normal boundary
            -f64::from_bits(1), // smallest-magnitude negative subnormal
            f64::from_bits(1),  // smallest positive subnormal
            f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
            f64::MIN_POSITIVE,
            0.5,
            1.0,
            1.0 + f64::EPSILON,
            1.0e300,
            f64::MAX,
            f64::INFINITY,
        ];
        for &a in &samples {
            for &b in &samples {
                let expect = a.partial_cmp(&b).unwrap();
                let got = pack3([a, 0.0, 0.0, 0.0]).cmp(&pack3([b, 0.0, 0.0, 0.0]));
                assert_eq!(got, expect, "pack order diverges for {a:e} vs {b:e}");
                // The component position must not matter.
                let got3 = pack3([0.0, 0.0, 0.0, a]).cmp(&pack3([0.0, 0.0, 0.0, b]));
                assert_eq!(
                    got3, expect,
                    "4th-word pack order diverges for {a:e} vs {b:e}"
                );
            }
        }
    }

    /// The one documented divergence: packed keys split the signed zeros
    /// (-0.0 packs below +0.0) while `Priority`'s `Ord` — like IEEE
    /// comparison — calls them equal. `pressure_aux` therefore never
    /// emits -0.0 (it computes `0.0 - n`, not `-n`).
    #[test]
    fn pack_splits_signed_zeros_and_aux_never_emits_negative_zero() {
        let neg = pack3([-0.0, 0.0, 0.0, 0.0]);
        let pos = pack3([0.0, 0.0, 0.0, 0.0]);
        assert!(neg < pos, "pack(-0.0) must order below pack(+0.0)");
        let (pa, pb) = (
            Priority {
                key: [-0.0, 0.0, 0.0, 0.0],
            },
            Priority {
                key: [0.0, 0.0, 0.0, 0.0],
            },
        );
        assert_eq!(pa.cmp(&pb), std::cmp::Ordering::Equal);

        // A region whose branch/ret ops have zero defs and kill nothing
        // would produce `-(0)` deltas under naive negation; the aux must
        // still hand back +0.0 bit patterns.
        let (lr, _, _) = fanout();
        let aux = Heuristic::RegPressure.pressure_aux(&lr);
        assert_eq!(aux.len(), lr.lops.len());
        for (i, d) in aux.iter().enumerate() {
            assert!(!(d == &0.0 && d.is_sign_negative()), "aux[{i}] is -0.0");
        }
    }

    /// NaN components are a bug upstream, not an orderable key: the
    /// packer rejects them loudly in debug builds.
    #[test]
    #[should_panic(expected = "NaN heuristic key component")]
    fn pack_rejects_nan_components_in_debug() {
        let _ = pack3([f64::NAN, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pressure_heuristic_prefers_releasing_ops() {
        let (lr, ddg, m) = fanout();
        let p = Heuristic::RegPressure.priorities(&lr, &ddg, &m);
        assert_eq!(p.len(), lr.lops.len());
        // A movi opens a live range and kills nothing: delta -1. The adds
        // consume x (but x has two uses, so only the later add is its
        // last use) and open one range each.
        let movi = lr
            .lops
            .iter()
            .position(|l| l.op.opcode == treegion_ir::Opcode::MovI)
            .unwrap();
        assert_eq!(p[movi].key()[0], -1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Heuristic::GlobalWeight.name(), "global-weight");
        assert_eq!(Heuristic::ALL.len(), 4);
        assert_eq!(Heuristic::ExitCount.to_string(), "exit-count");
        assert_eq!(Heuristic::RegPressure.name(), "pressure");
        assert!(!Heuristic::ALL.contains(&Heuristic::RegPressure));
    }
}
