//! The paper's four treegion scheduling heuristics (Section 3).
//!
//! Each heuristic is a static priority assigned to every op before list
//! scheduling; the list scheduler picks ready ops in descending priority.
//! All heuristics break remaining ties by dependence height and then by
//! source order, as the paper specifies.

use crate::ddg::Ddg;
use crate::lower::LoweredRegion;
use treegion_machine::MachineModel;

/// Which priority function drives the list scheduler.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Critical-path scheduling: priority = dependence height. Maximum
    /// speculation; the paper's baseline heuristic (Figure 6).
    DependenceHeight,
    /// Priority = number of exits that follow the op in control flow
    /// (adapted from speculative hedge's *helped count*); ties by height.
    /// The paper shows this misfires on wide, shallow treegions (Figure 9).
    ExitCount,
    /// Priority = profile weight of the op's home block (equals the total
    /// weight of all exits the op helps, since a treegion is a tree);
    /// ties by height. The paper's best performer.
    GlobalWeight,
    /// Priority = (weight, exit count, height). The combination heuristic;
    /// degrades on linearized equal-weight treegions (Figure 10).
    WeightedCount,
}

impl Heuristic {
    /// All four heuristics in the order the paper presents them.
    pub const ALL: [Heuristic; 4] = [
        Heuristic::DependenceHeight,
        Heuristic::ExitCount,
        Heuristic::GlobalWeight,
        Heuristic::WeightedCount,
    ];

    /// Short name used in reports ("dep-height", "exit-count", ...).
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::DependenceHeight => "dep-height",
            Heuristic::ExitCount => "exit-count",
            Heuristic::GlobalWeight => "global-weight",
            Heuristic::WeightedCount => "weighted-count",
        }
    }

    /// Computes the priority key of every op. Keys compare
    /// lexicographically, larger = scheduled first.
    pub fn priorities(self, lr: &LoweredRegion, ddg: &Ddg, m: &MachineModel) -> Vec<Priority> {
        let heights = ddg.heights(lr, m);
        (0..lr.lops.len())
            .map(|i| Priority {
                key: self.key_components(lr, i, heights[i]),
            })
            .collect()
    }

    /// The raw priority components of op `i` given its dependence
    /// height — the single-op core of [`Heuristic::priorities`], exposed
    /// crate-internally so the list scheduler can fuse key packing into
    /// its ready-key construction pass without materializing a
    /// `Vec<Priority>` first. Must stay in lockstep with `priorities`
    /// (it *is* its body) so packed and unpacked comparisons agree.
    #[inline]
    pub(crate) fn key_components(self, lr: &LoweredRegion, i: usize, height: u32) -> [f64; 3] {
        let node = &lr.nodes[lr.lops[i].home];
        let h = height as f64;
        match self {
            Heuristic::DependenceHeight => [h, 0.0, 0.0],
            Heuristic::ExitCount => [node.exits_below as f64, h, 0.0],
            Heuristic::GlobalWeight => [node.weight, h, 0.0],
            Heuristic::WeightedCount => [node.weight, node.exits_below as f64, h],
        }
    }
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A lexicographic priority key (larger is more urgent).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Priority {
    key: [f64; 3],
}

impl Priority {
    /// The raw key components.
    pub fn key(&self) -> [f64; 3] {
        self.key
    }

    /// Packs the key into three order-preserving `u64` words; see
    /// [`pack3`], which the list scheduler uses directly.
    #[cfg(test)]
    pub(crate) fn packed(&self) -> [u64; 3] {
        pack3(self.key)
    }
}

/// Packs a raw key triple into three order-preserving `u64` words so the
/// list scheduler's ready queue can compare priorities with plain integer
/// comparisons instead of three `f64::partial_cmp` calls per element per
/// sort pass. The scheduler feeds it [`Heuristic::key_components`] output
/// directly, skipping any intermediate `Vec<Priority>`.
///
/// The packing is the usual total-order bit trick (flip all bits of
/// negatives, set the sign bit of non-negatives): for the finite
/// values heuristics produce (non-negative heights, exit counts, and
/// profile weights) `pack3(a) <= pack3(b)` iff `a <= b` under
/// [`Priority`]'s `Ord`. NaN (impossible here — every component is built
/// from integer counts or summed non-negative profile weights) would
/// order as "greater than every finite value" instead of the `Ord`
/// impl's "equal"; the differential reference-scheduler test guards
/// this equivalence over the fuzz corpus.
#[inline]
pub(crate) fn pack3(key: [f64; 3]) -> [u64; 3] {
    #[inline]
    fn pack(x: f64) -> u64 {
        let b = x.to_bits();
        if b & (1 << 63) != 0 {
            !b
        } else {
            b | (1 << 63)
        }
    }
    [pack(key[0]), pack(key[1]), pack(key[2])]
}

impl Eq for Priority {}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for (a, b) in self.key.iter().zip(other.key.iter()) {
            match a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_region;
    use crate::{form_treegions, Ddg};
    use treegion_analysis::{Cfg, Liveness};
    use treegion_ir::{FunctionBuilder, Op};

    fn fanout() -> (LoweredRegion, Ddg, MachineModel) {
        // Root with two children of different weight; root ops help both
        // exits, child ops help one.
        let mut b = FunctionBuilder::new("f");
        let (bb0, bb1, bb2) = (b.block(), b.block(), b.block());
        let (x, c, y, z) = (b.gpr(), b.gpr(), b.gpr(), b.gpr());
        b.push_all(bb0, [Op::movi(x, 1), Op::movi(c, 0)]);
        b.branch(bb0, c, (bb1, 90.0), (bb2, 10.0));
        b.push(bb1, Op::add(y, x, x));
        b.ret(bb1, Some(y));
        b.push(bb2, Op::add(z, x, x));
        b.ret(bb2, Some(z));
        let f = b.finish();
        let set = form_treegions(&f);
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let r = set.region(set.region_of(f.entry()).unwrap()).clone();
        let m = MachineModel::model_4u();
        let lr = lower_region(&f, &r, &live, None);
        let ddg = Ddg::build(&lr, &m);
        (lr, ddg, m)
    }

    fn find_add(lr: &LoweredRegion, node: usize) -> usize {
        lr.lops
            .iter()
            .position(|l| l.op.opcode == treegion_ir::Opcode::Add && l.home == node)
            .unwrap()
    }

    #[test]
    fn global_weight_prefers_hot_path_ops() {
        let (lr, ddg, m) = fanout();
        let p = Heuristic::GlobalWeight.priorities(&lr, &ddg, &m);
        let hot = find_add(&lr, 1);
        let cold = find_add(&lr, 2);
        assert!(p[hot] > p[cold]);
    }

    #[test]
    fn exit_count_prefers_root_ops() {
        let (lr, ddg, m) = fanout();
        let p = Heuristic::ExitCount.priorities(&lr, &ddg, &m);
        let root_movi = 0usize; // first lop is in the root
        let hot = find_add(&lr, 1);
        assert_eq!(lr.lops[root_movi].home, 0);
        assert!(p[root_movi] > p[hot]);
    }

    #[test]
    fn dependence_height_ignores_weight() {
        let (lr, ddg, m) = fanout();
        let p = Heuristic::DependenceHeight.priorities(&lr, &ddg, &m);
        let hot = find_add(&lr, 1);
        let cold = find_add(&lr, 2);
        // Symmetric adds on both paths: identical height, identical priority.
        assert_eq!(p[hot], p[cold]);
    }

    #[test]
    fn weighted_count_orders_weight_then_exits() {
        let a = Priority {
            key: [5.0, 1.0, 9.0],
        };
        let b = Priority {
            key: [5.0, 2.0, 0.0],
        };
        let c = Priority {
            key: [6.0, 0.0, 0.0],
        };
        assert!(b > a);
        assert!(c > b);
        let mut v = vec![a, b, c];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn packed_keys_preserve_priority_order() {
        let keys = [
            [0.0, 0.0, 0.0],
            [0.5, 3.0, 1.0],
            [1.0, 0.0, 2.0],
            [1.0, 2.0, 0.0],
            [90.0, 1.0, 7.0],
            [100.5, 0.25, 3.0],
        ];
        for a in keys {
            for b in keys {
                let (pa, pb) = (Priority { key: a }, Priority { key: b });
                assert_eq!(
                    pa.packed().cmp(&pb.packed()),
                    pa.cmp(&pb),
                    "packed order diverges for {a:?} vs {b:?}"
                );
                assert_eq!(pack3(a).cmp(&pack3(b)), pa.cmp(&pb));
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Heuristic::GlobalWeight.name(), "global-weight");
        assert_eq!(Heuristic::ALL.len(), 4);
        assert_eq!(Heuristic::ExitCount.to_string(), "exit-count");
    }
}
