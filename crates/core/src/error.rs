//! Structured errors and degradation metadata for the scheduling pipeline.
//!
//! The seed scheduler treated every internal failure as a `panic!`: a
//! verifier rejection or a watchdog trip aborted the whole evaluation. This
//! module introduces the error hierarchy used by the fallible pipeline
//! entry points (`try_lower_region`, `try_schedule_region`) and by the
//! degradation chain in `treegion-eval`:
//!
//! * [`SchedFailure`] — why one region could not be scheduled (verifier
//!   rejection, or a resource budget exceeded).
//! * [`Budgets`] — configurable op/step watchdog limits.
//! * [`VerifyMode`] / [`FallbackPolicy`] / [`FallbackLevel`] — the policy
//!   knobs exposed on the CLI (`--verify`, `--fallback`).
//! * [`DegradationEvent`] — one recovered (or tolerated) failure, recorded
//!   per region in the eval stats.
//! * [`PipelineError`] — terminal failure after the fallback chain is
//!   exhausted, carrying every attempt for post-mortem.

use crate::verify_sched::ScheduleError;
use crate::RegionKind;
use std::fmt;
use std::str::FromStr;
use treegion_ir::BlockId;

/// Why scheduling one region failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedFailure {
    /// The produced schedule was rejected by [`crate::verify_schedule`].
    Verification(ScheduleError),
    /// The lowered region had more ops than [`Budgets::max_region_ops`].
    OpBudgetExceeded {
        /// Number of ops in the lowered region.
        ops: usize,
        /// The configured budget that was exceeded.
        budget: usize,
    },
    /// The list scheduler ran more cycles than allowed without finishing —
    /// either the configured [`Budgets::max_schedule_cycles`], or the
    /// built-in progress watchdog.
    StepBudgetExceeded {
        /// Cycles the scheduler ran before giving up.
        steps: usize,
        /// The cycle cap that was exceeded.
        budget: usize,
    },
    /// The scheduling attempt ran past its wall-clock deadline
    /// ([`Budgets::max_wall_ms`]), checked at scheduler loop boundaries.
    /// Deadlines are per *attempt*: every rung of the degradation chain
    /// starts a fresh clock, so a timed-out primary schedule can still
    /// recover through a faster fallback shape.
    DeadlineExceeded {
        /// Wall-clock milliseconds the attempt had consumed when the
        /// deadline check tripped.
        elapsed_ms: u64,
        /// The configured deadline in milliseconds.
        budget_ms: u64,
    },
    /// The scheduling attempt panicked; the unwind was contained by the
    /// robust pipeline and converted into this structured failure so the
    /// degradation chain can treat a crash like any other per-region
    /// failure (one poisoned region costs one region, not the run).
    Panicked {
        /// Stringified panic payload.
        payload: String,
    },
    /// A finite register file is provably too small for the region: the
    /// list scheduler reached a cycle where nothing could issue, nothing
    /// died, and no op was waiting on a latency, with ready ops parked
    /// on the pressure ceiling — replaying that cycle forever. The
    /// robust pipeline reacts by inserting spill code (GPRs) or by
    /// degrading to smaller regions, which carry less speculative
    /// pressure.
    RegisterPressure {
        /// The register class whose file overflowed.
        class: treegion_ir::RegClass,
        /// Live ranges of that class at the blocking park.
        live: u32,
        /// The file's capacity.
        cap: u32,
    },
}

impl fmt::Display for SchedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedFailure::Verification(e) => write!(f, "{e}"),
            SchedFailure::OpBudgetExceeded { ops, budget } => {
                write!(f, "region has {ops} ops, over the budget of {budget}")
            }
            SchedFailure::StepBudgetExceeded { steps, budget } => {
                write!(
                    f,
                    "scheduler ran {steps} cycles without finishing (cap {budget})"
                )
            }
            SchedFailure::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => {
                write!(
                    f,
                    "scheduling attempt ran {elapsed_ms} ms, past its {budget_ms} ms deadline"
                )
            }
            SchedFailure::Panicked { payload } => {
                write!(f, "scheduling attempt panicked: {payload}")
            }
            SchedFailure::RegisterPressure { class, live, cap } => {
                write!(
                    f,
                    "register pressure livelock: {live} live {class} ranges \
                     against a file of {cap}"
                )
            }
        }
    }
}

impl std::error::Error for SchedFailure {}

impl From<ScheduleError> for SchedFailure {
    fn from(e: ScheduleError) -> Self {
        SchedFailure::Verification(e)
    }
}

impl SchedFailure {
    /// Short machine-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedFailure::Verification(_) => "verification",
            SchedFailure::OpBudgetExceeded { .. } => "op-budget",
            SchedFailure::StepBudgetExceeded { .. } => "step-budget",
            SchedFailure::DeadlineExceeded { .. } => "deadline",
            SchedFailure::Panicked { .. } => "panic",
            SchedFailure::RegisterPressure { .. } => "reg-pressure",
        }
    }

    /// `true` for failures that were *contained* rather than produced by
    /// the scheduler's own logic: panics and wall-clock deadline trips.
    /// The CLI maps these to exit code 3 (contained failures present)
    /// instead of 2 (ordinary degradation).
    pub fn is_containment(&self) -> bool {
        matches!(
            self,
            SchedFailure::DeadlineExceeded { .. } | SchedFailure::Panicked { .. }
        )
    }
}

/// Resource budgets for the scheduling pipeline. `None` means unlimited
/// (beyond the scheduler's built-in progress watchdog).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budgets {
    /// Maximum number of lowered ops per region.
    pub max_region_ops: Option<usize>,
    /// Maximum number of schedule cycles per region.
    pub max_schedule_cycles: Option<usize>,
    /// Soft wall-clock deadline per scheduling *attempt*, in
    /// milliseconds. Checked at scheduler loop boundaries (once per
    /// schedule cycle), so a runaway region trips
    /// [`SchedFailure::DeadlineExceeded`] instead of stalling the run.
    /// `None` disables the wall clock entirely — the default, and the
    /// only mode the byte-determinism tests exercise (a wall-clock trip
    /// is inherently timing-dependent, so deterministic runs must not
    /// enable it unless the deadline is far above any real cell time, or
    /// zero for a guaranteed immediate trip in tests).
    pub max_wall_ms: Option<u64>,
}

impl Budgets {
    /// Unlimited budgets (only the built-in watchdog applies).
    pub const UNLIMITED: Budgets = Budgets {
        max_region_ops: None,
        max_schedule_cycles: None,
        max_wall_ms: None,
    };
}

/// What to do with a verifier rejection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// Skip post-scheduling verification entirely.
    Off,
    /// Verify, record failures as [`DegradationEvent`]s, but keep the
    /// rejected schedule.
    Warn,
    /// Verify and degrade (or fail) on rejection.
    #[default]
    Strict,
}

impl FromStr for VerifyMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(VerifyMode::Off),
            "warn" => Ok(VerifyMode::Warn),
            "strict" => Ok(VerifyMode::Strict),
            other => Err(format!(
                "unknown verify mode '{other}' (expected off, warn, or strict)"
            )),
        }
    }
}

impl fmt::Display for VerifyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VerifyMode::Off => "off",
            VerifyMode::Warn => "warn",
            VerifyMode::Strict => "strict",
        })
    }
}

/// How far the degradation chain may fall back when a region fails.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// No fallback: a failed region is a pipeline error.
    None,
    /// Re-form the failed region as single-path linear regions (SLRs).
    Slr,
    /// Try SLRs first, then individual basic blocks.
    #[default]
    Bb,
}

impl FallbackPolicy {
    /// The fallback levels this policy permits, in order of preference.
    pub fn levels(&self) -> &'static [FallbackLevel] {
        match self {
            FallbackPolicy::None => &[],
            FallbackPolicy::Slr => &[FallbackLevel::Slr],
            FallbackPolicy::Bb => &[FallbackLevel::Slr, FallbackLevel::BasicBlock],
        }
    }
}

impl FromStr for FallbackPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(FallbackPolicy::None),
            "slr" => Ok(FallbackPolicy::Slr),
            "bb" => Ok(FallbackPolicy::Bb),
            other => Err(format!(
                "unknown fallback policy '{other}' (expected none, slr, or bb)"
            )),
        }
    }
}

impl fmt::Display for FallbackPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FallbackPolicy::None => "none",
            FallbackPolicy::Slr => "slr",
            FallbackPolicy::Bb => "bb",
        })
    }
}

/// Which rung of the degradation ladder a schedule came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FallbackLevel {
    /// The originally requested region shape.
    Primary,
    /// Single-path linear regions carved out of the failed region.
    Slr,
    /// Individual basic blocks.
    BasicBlock,
}

impl fmt::Display for FallbackLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FallbackLevel::Primary => "primary",
            FallbackLevel::Slr => "slr",
            FallbackLevel::BasicBlock => "bb",
        })
    }
}

/// One region-level failure that the pipeline survived, either by falling
/// back to a simpler region shape (`recovered == true`) or by tolerating
/// the failure under [`VerifyMode::Warn`] (`recovered == false`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Name of the function containing the failed region.
    pub function: String,
    /// Index of the region within its [`crate::RegionSet`].
    pub region_index: usize,
    /// Root block of the failed region.
    pub region_root: BlockId,
    /// Shape of the failed region.
    pub region_kind: RegionKind,
    /// Why the primary schedule was unusable.
    pub cause: SchedFailure,
    /// The rung that finally produced the accepted schedule.
    pub level: FallbackLevel,
    /// Whether a verified replacement schedule was produced.
    pub recovered: bool,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: region #{} (root {}, {}) {}: {} -> {}",
            self.function,
            self.region_index,
            self.region_root,
            self.region_kind,
            if self.recovered {
                "degraded"
            } else {
                "kept unverified"
            },
            self.cause.label(),
            self.level,
        )
    }
}

/// Terminal failure: one region could not be scheduled even after the
/// entire fallback chain was tried. Carries every attempt for post-mortem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineError {
    /// Name of the function containing the failed region.
    pub function: String,
    /// Index of the region within its [`crate::RegionSet`].
    pub region_index: usize,
    /// Root block of the failed region.
    pub region_root: BlockId,
    /// Every (level, failure) pair in the order attempted.
    pub attempts: Vec<(FallbackLevel, SchedFailure)>,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: region #{} (root {}) failed at every fallback level:",
            self.function, self.region_index, self.region_root
        )?;
        for (level, failure) in &self.attempts {
            write!(f, "\n  [{level}] {failure}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_mode_parses() {
        assert_eq!("off".parse::<VerifyMode>().unwrap(), VerifyMode::Off);
        assert_eq!("warn".parse::<VerifyMode>().unwrap(), VerifyMode::Warn);
        assert_eq!("strict".parse::<VerifyMode>().unwrap(), VerifyMode::Strict);
        assert!("loose".parse::<VerifyMode>().is_err());
        assert_eq!(VerifyMode::default(), VerifyMode::Strict);
    }

    #[test]
    fn fallback_policy_parses_and_orders_levels() {
        assert_eq!(
            "none".parse::<FallbackPolicy>().unwrap().levels(),
            &[] as &[FallbackLevel]
        );
        assert_eq!(
            "slr".parse::<FallbackPolicy>().unwrap().levels(),
            &[FallbackLevel::Slr]
        );
        assert_eq!(
            "bb".parse::<FallbackPolicy>().unwrap().levels(),
            &[FallbackLevel::Slr, FallbackLevel::BasicBlock]
        );
        assert!("superblock".parse::<FallbackPolicy>().is_err());
    }

    #[test]
    fn failure_display_and_labels() {
        let f = SchedFailure::OpBudgetExceeded { ops: 10, budget: 5 };
        assert_eq!(f.label(), "op-budget");
        assert!(f.to_string().contains("10"));
        let f = SchedFailure::StepBudgetExceeded {
            steps: 99,
            budget: 64,
        };
        assert_eq!(f.label(), "step-budget");
        assert!(f.to_string().contains("99"));
        let f = SchedFailure::DeadlineExceeded {
            elapsed_ms: 120,
            budget_ms: 50,
        };
        assert_eq!(f.label(), "deadline");
        assert!(f.is_containment());
        assert!(f.to_string().contains("120"));
        let f = SchedFailure::Panicked {
            payload: "kaboom".into(),
        };
        assert_eq!(f.label(), "panic");
        assert!(f.is_containment());
        assert!(f.to_string().contains("kaboom"));
        assert!(!SchedFailure::OpBudgetExceeded { ops: 1, budget: 1 }.is_containment());
        let f = SchedFailure::RegisterPressure {
            class: treegion_ir::RegClass::Gpr,
            live: 32,
            cap: 32,
        };
        assert_eq!(f.label(), "reg-pressure");
        assert!(!f.is_containment());
        assert!(f.to_string().contains("32 live gpr ranges"), "{f}");
    }

    #[test]
    fn pipeline_error_lists_attempts() {
        let e = PipelineError {
            function: "f".into(),
            region_index: 0,
            region_root: BlockId::from_index(0),
            attempts: vec![
                (
                    FallbackLevel::Primary,
                    SchedFailure::OpBudgetExceeded { ops: 2, budget: 1 },
                ),
                (
                    FallbackLevel::Slr,
                    SchedFailure::StepBudgetExceeded {
                        steps: 3,
                        budget: 2,
                    },
                ),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("[primary]"), "{s}");
        assert!(s.contains("[slr]"), "{s}");
    }
}
