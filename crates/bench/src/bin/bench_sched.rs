//! `bench_sched` — machine-readable performance snapshot of the
//! scheduling pipeline and the evaluation harness.
//!
//! Emits `BENCH_sched.json` (hand-rolled JSON; the workspace builds
//! without crates.io) with:
//!
//! * ns/op microbenchmarks for region formation, DDG construction, and
//!   list scheduling on the compress-like benchmark module;
//! * end-to-end evaluation-harness wall time (all tables and figures) in
//!   three configurations: memoization off at `jobs=1` (the pre-cache
//!   behaviour), memoization on at `jobs=1`, and memoization on at the
//!   machine's job count.
//!
//! ```text
//! bench_sched [--quick] [--check] [--out PATH] [--regress BASELINE.json]
//! ```
//!
//! `--quick` (or `BENCH_QUICK=1`) runs a reduced suite with fewer
//! repetitions — the CI smoke mode. `--check` exits non-zero if the
//! parallel harness run is more than 1.2× slower than the serial one
//! (parallelism must never cost more than scheduling noise). `--out`
//! overrides the output path (default `BENCH_sched.json` in the current
//! directory, i.e. the repository root when run via `cargo run`).
//! `--regress BASELINE.json` exits non-zero if `schedule_region` or
//! `ddg_build` ns/op regresses more than 1.3× against the committed
//! baseline file (the per-kernel CI regression bound).

use std::fmt::Write as _;
use std::time::Instant;
use treegion::{
    lower_region, schedule_region, schedule_with_ddg, Ddg, Heuristic, LoweredRegion,
    ScheduleOptions,
};
use treegion_analysis::{Cfg, Liveness};
use treegion_bench::bench_module;
use treegion_eval::{fig13, fig6, fig8, table1, table2, table3, table4, Suite};
use treegion_machine::MachineModel;

struct Config {
    quick: bool,
    check: bool,
    out: String,
    regress: Option<String>,
}

fn parse_config() -> Config {
    let mut cfg = Config {
        quick: std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1"),
        check: false,
        out: "BENCH_sched.json".to_string(),
        regress: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cfg.quick = true,
            "--check" => cfg.check = true,
            "--out" => cfg.out = it.next().expect("--out needs a path"),
            "--regress" => cfg.regress = Some(it.next().expect("--regress needs a path")),
            other => {
                eprintln!("bench_sched: unknown argument `{other}`");
                eprintln!(
                    "usage: bench_sched [--quick] [--check] [--out PATH] [--regress BASELINE.json]"
                );
                std::process::exit(1);
            }
        }
    }
    cfg
}

/// Extracts the number following `"key": ` from hand-rolled bench JSON.
/// Good enough for the files this binary itself writes; `None` when the
/// key is absent (e.g. a pre-v2 baseline missing a new kernel).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Best-of-`reps` wall time of `body`, in nanoseconds.
fn best_of<F: FnMut()>(reps: usize, mut body: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

/// Lowers every treegion of the bench module once (shared input for the
/// DDG and scheduling microbenches).
fn lowered_regions(module: &treegion_ir::Module) -> Vec<LoweredRegion> {
    let mut out = Vec::new();
    for f in module.functions() {
        let regions = treegion::form_treegions(f);
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        for r in regions.regions() {
            let _ = &cfg;
            out.push(lower_region(f, r, &live, None));
        }
    }
    out
}

/// Renders every table/figure the `all` binary prints; returns total
/// rendered bytes (a cheap checksum that also defeats dead-code
/// elimination).
fn run_harness(suite: &Suite) -> usize {
    let (m4, m8) = (MachineModel::model_4u(), MachineModel::model_8u());
    let mut bytes = 0usize;
    for t in [table1(suite), table2(suite)] {
        bytes += t.render().len();
    }
    for m in [&m4, &m8] {
        bytes += fig6(suite, m).render().len();
    }
    for m in [&m4, &m8] {
        bytes += fig8(suite, m).render().len();
    }
    for t in [table3(suite), table4(suite)] {
        bytes += t.render().len();
    }
    for m in [&m4, &m8] {
        bytes += fig13(suite, m).render().len();
    }
    bytes
}

/// One end-to-end harness run (suite load + every table/figure), in
/// milliseconds, under the given job count and cache mode.
fn harness_ms(quick: bool, cached: bool, jobs: usize) -> f64 {
    treegion_par::set_jobs(jobs);
    let t0 = Instant::now();
    let suite = match (quick, cached) {
        (true, true) => Suite::load_small(2),
        (true, false) => Suite::load_small_uncached(2),
        (false, true) => Suite::load(),
        (false, false) => Suite::load_uncached(),
    };
    let bytes = run_harness(&suite);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(bytes > 0);
    ms
}

fn main() {
    let cfg = parse_config();
    // Microbench repetitions: best-of-3 even in quick mode — the kernels
    // cost milliseconds and the `--regress` bound compares against a
    // best-of-5 committed baseline, so a single noisy rep must not flap
    // the CI regression gate.
    let reps = if cfg.quick { 3 } else { 5 };

    // --- Microbenchmarks (ns per source/lowered op). ---
    let module = bench_module();
    let src_ops = module.num_ops() as u128;

    let formation_ns = best_of(reps, || {
        for f in module.functions() {
            std::hint::black_box(treegion::form_treegions(f));
        }
    });
    let formation_td_ns = best_of(reps, || {
        for f in module.functions() {
            std::hint::black_box(treegion::form_treegions_td(
                f,
                &treegion::TailDupLimits::expansion_2_0(),
            ));
        }
    });

    let lowered = lowered_regions(&module);
    let lowered_ops: u128 = lowered.iter().map(|lr| lr.num_ops() as u128).sum();
    let m8 = MachineModel::model_8u();

    let ddg_ns = best_of(reps, || {
        for lr in &lowered {
            std::hint::black_box(Ddg::build(lr, &m8));
        }
    });
    let opts = ScheduleOptions {
        heuristic: Heuristic::GlobalWeight,
        ..Default::default()
    };
    let sched_ns = best_of(reps, || {
        for lr in &lowered {
            std::hint::black_box(schedule_region(lr, &m8, &opts));
        }
    });
    // List scheduling alone, over prebuilt DDGs: isolates the ready-queue
    // and issue loop from graph construction.
    let with_ddgs: Vec<(&LoweredRegion, Ddg)> =
        lowered.iter().map(|lr| (lr, Ddg::build(lr, &m8))).collect();
    let list_sched_ns = best_of(reps, || {
        for (lr, ddg) in &with_ddgs {
            std::hint::black_box(schedule_with_ddg(lr, ddg, &m8, &opts));
        }
    });
    drop(with_ddgs);
    // Lowering runs last among the microbenches: it churns the heap
    // (one arena of vectors per region per rep), and the scheduling
    // kernels above are measured against the committed baseline.
    let lowering_ns = best_of(reps, || {
        std::hint::black_box(lowered_regions(&module));
    });

    // --- End-to-end harness wall times. ---
    let jobs_n = treegion_par::max_jobs();
    // Best-of-k wall times: k >= 2 even in quick mode so the --check
    // comparison is between best runs, not run-to-run noise.
    let e2e_reps = if cfg.quick { 2 } else { 3 };
    let best_ms = |cached: bool, jobs: usize| {
        (0..e2e_reps)
            .map(|_| harness_ms(cfg.quick, cached, jobs))
            .fold(f64::INFINITY, f64::min)
    };
    let uncached_jobs1 = best_ms(false, 1);
    let cached_jobs1 = best_ms(true, 1);
    let cached_jobsn = best_ms(true, jobs_n);
    treegion_par::set_jobs(1);

    let cache_speedup = uncached_jobs1 / cached_jobs1;
    let total_speedup = uncached_jobs1 / cached_jobsn;

    // --- Emit JSON. ---
    let per = |total_ns: u128, ops: u128| total_ns as f64 / ops.max(1) as f64;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"treegion-bench-sched/v2\",");
    let _ = writeln!(
        j,
        "  \"mode\": \"{}\",",
        if cfg.quick { "quick" } else { "full" }
    );
    let _ = writeln!(j, "  \"jobs_available\": {jobs_n},");
    let _ = writeln!(j, "  \"ns_per_op\": {{");
    let _ = writeln!(
        j,
        "    \"formation_treegion\": {:.2},",
        per(formation_ns, src_ops)
    );
    let _ = writeln!(
        j,
        "    \"formation_treegion_td2\": {:.2},",
        per(formation_td_ns, src_ops)
    );
    let _ = writeln!(j, "    \"lowering\": {:.2},", per(lowering_ns, src_ops));
    let _ = writeln!(j, "    \"ddg_build\": {:.2},", per(ddg_ns, lowered_ops));
    let _ = writeln!(
        j,
        "    \"list_sched\": {:.2},",
        per(list_sched_ns, lowered_ops)
    );
    let _ = writeln!(
        j,
        "    \"schedule_region\": {:.2}",
        per(sched_ns, lowered_ops)
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"harness_ms\": {{");
    let _ = writeln!(j, "    \"uncached_jobs1\": {uncached_jobs1:.1},");
    let _ = writeln!(j, "    \"cached_jobs1\": {cached_jobs1:.1},");
    let _ = writeln!(j, "    \"cached_jobsN\": {cached_jobsn:.1}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"speedup_cache_only_jobs1\": {cache_speedup:.2},");
    let _ = writeln!(j, "  \"speedup_total\": {total_speedup:.2}");
    let _ = writeln!(j, "}}");

    std::fs::write(&cfg.out, &j).expect("write BENCH_sched.json");
    eprintln!("bench_sched: wrote {}", cfg.out);
    eprint!("{j}");

    if cfg.check {
        let limit = 1.2 * cached_jobs1;
        if cached_jobsn > limit {
            eprintln!(
                "bench_sched: FAIL: jobs={jobs_n} harness took {cached_jobsn:.1} ms, \
                 more than 1.2x the jobs=1 time ({cached_jobs1:.1} ms)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_sched: check ok: jobs={jobs_n} {cached_jobsn:.1} ms <= 1.2 x {cached_jobs1:.1} ms"
        );
    }

    if let Some(baseline_path) = &cfg.regress {
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("bench_sched: cannot read baseline {baseline_path}: {e}"));
        let bound = 1.3;
        let mut failed = false;
        for (key, current) in [
            ("ddg_build", per(ddg_ns, lowered_ops)),
            ("schedule_region", per(sched_ns, lowered_ops)),
        ] {
            let Some(base) = json_number(&baseline, key) else {
                eprintln!("bench_sched: regress: baseline has no `{key}`, skipping");
                continue;
            };
            let limit = bound * base;
            if current > limit {
                eprintln!(
                    "bench_sched: FAIL: {key} {current:.2} ns/op exceeds \
                     {bound}x baseline ({base:.2} ns/op)"
                );
                failed = true;
            } else {
                eprintln!(
                    "bench_sched: regress ok: {key} {current:.2} ns/op <= \
                     {bound} x {base:.2} ns/op"
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
