//! `bench_sched` — machine-readable performance snapshot of the
//! scheduling pipeline and the evaluation harness.
//!
//! Emits `BENCH_sched.json` (hand-rolled JSON; the workspace builds
//! without crates.io) with:
//!
//! * ns/op microbenchmarks for region formation, lowering, DDG
//!   construction, and list scheduling on the compress-like benchmark
//!   module — sourced from the [`treegion::Profiler`] observer's
//!   per-stage [`treegion::PassObserver`] brackets on the
//!   [`treegion::Pipeline`] driver (the same instrumentation behind
//!   `tgc schedule --profile`), not ad-hoc kernel loops;
//! * us/request through the `tgc serve` engine's batch path, cold (every
//!   module scheduled and written to the disk cache tier) and warm
//!   (every module answered from cache) — the serve-daemon kernel;
//! * sustained-throughput kernels through a real TCP server driven by
//!   the `tgc loadgen` harness: `serve_warm_c1` (one connection, one
//!   batch per connection — the pre-pipelining baseline shape) and
//!   `serve_warm_c8` (8 keep-alive connections × pipeline depth 8),
//!   with req/s and connection concurrency recorded alongside;
//! * `cache_shard_probe`: ns per warm lookup on the 8-way lock-striped
//!   sharded disk cache, the warm path's contention kernel;
//! * `pressure_track`: ns per lowered op of list scheduling under a
//!   finite (64-entry) GPR file via the robust chain — the liveness
//!   bookkeeping, ceiling checks, and spill machinery in one number;
//! * end-to-end evaluation-harness wall time (all tables and figures) in
//!   three configurations: memoization off at `jobs=1` (the pre-cache
//!   behaviour), memoization on at `jobs=1`, and memoization on at the
//!   machine's job count.
//!
//! ```text
//! bench_sched [--quick] [--check] [--out PATH] [--regress BASELINE.json]
//!             [--states]
//! ```
//!
//! `--quick` (or `BENCH_QUICK=1`) runs a reduced suite with fewer
//! repetitions — the CI smoke mode. `--check` exits non-zero if the
//! parallel harness run is more than 1.2× slower than the serial one
//! (parallelism must never cost more than scheduling noise). `--out`
//! overrides the output path (default `BENCH_sched.json` in the current
//! directory, i.e. the repository root when run via `cargo run`).
//! `--regress BASELINE.json` exits non-zero if `ddg_build`,
//! `list_sched`, `schedule_region`, `pressure_track`, `hazard_probe`,
//! `serve_cold`, `serve_warm`, `serve_warm_c8`, or `cache_shard_probe`
//! regresses more than 1.3× against the committed baseline file (the
//! per-kernel CI regression bound); each failing line names the kernel
//! and its observed/allowed ratio. `--states` prints the
//! hazard-automaton state count of every machine preset and exits — the
//! CI guard against state-space blowups.

use std::fmt::Write as _;
use std::time::Instant;
use treegion::{
    Heuristic, Pipeline, Profiler, RegionConfig, RobustOptions, ScheduleOptions, Stage,
    TailDupLimits,
};
use treegion_bench::{bench_module, regress_verdicts};
use treegion_eval::{fig13, fig6, fig8, table1, table2, table3, table4, Suite};
use treegion_ir::Module;
use treegion_machine::{MachineModel, OpClass};

struct Config {
    quick: bool,
    check: bool,
    out: String,
    regress: Option<String>,
}

/// The machine presets whose automatons `--states` reports.
fn presets() -> [MachineModel; 4] {
    [
        MachineModel::model_1u(),
        MachineModel::model_4u(),
        MachineModel::model_8u(),
        MachineModel::model_4u_asym(),
    ]
}

fn parse_config() -> Config {
    let mut cfg = Config {
        quick: std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1"),
        check: false,
        out: "BENCH_sched.json".to_string(),
        regress: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cfg.quick = true,
            "--check" => cfg.check = true,
            "--out" => cfg.out = it.next().expect("--out needs a path"),
            "--regress" => cfg.regress = Some(it.next().expect("--regress needs a path")),
            "--states" => {
                for m in presets() {
                    println!(
                        "state-count {} {}",
                        m.name(),
                        m.hazard_automaton().state_count()
                    );
                }
                std::process::exit(0);
            }
            other => {
                eprintln!("bench_sched: unknown argument `{other}`");
                eprintln!(
                    "usage: bench_sched [--quick] [--check] [--out PATH] \
                     [--regress BASELINE.json] [--states]"
                );
                std::process::exit(1);
            }
        }
    }
    cfg
}

/// One observed run of the staged pipeline over the whole module: forms,
/// lowers, and schedules every function under `config`, with a fresh
/// [`Profiler`] capturing per-stage wall time via the pipeline's
/// observer brackets.
fn profiled_run(
    module: &Module,
    config: &RegionConfig,
    machine: &MachineModel,
    opts: &ScheduleOptions,
) -> Profiler {
    let pipeline = Pipeline::with_options(
        machine,
        RobustOptions {
            sched: *opts,
            ..Default::default()
        },
    );
    let prof = Profiler::new();
    for f in module.functions() {
        std::hint::black_box(pipeline.schedule_function(f, config, &prof));
    }
    prof
}

/// Best-of-`reps` per-stage nanoseconds (each rep is a fresh profiled
/// pipeline run; minima are stage-wise). The second value is the best
/// per-rep `ddg + list-sched` composite — the `schedule_region` kernel,
/// which composes exactly those two stages.
fn best_stages(reps: usize, mut run: impl FnMut() -> Profiler) -> ([u128; 5], u128) {
    let mut best = [u128::MAX; 5];
    let mut best_sched = u128::MAX;
    for _ in 0..reps {
        let prof = run();
        let mut rep = [0u128; 5];
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            rep[i] = prof.stage_nanos(s);
            best[i] = best[i].min(rep[i]);
        }
        best_sched = best_sched.min(rep[2] + rep[3]);
    }
    (best, best_sched)
}

/// ns per lowered op of list scheduling the whole module on the 8-issue
/// machine with a 64-entry GPR file — the pressure-tracking overhead
/// kernel. The run rides the robust chain (spill recovery included), so
/// the number covers the incremental liveness bookkeeping, the ceiling
/// checks, and any spill rounds the finite file forces; against the
/// unbounded `list_sched` kernel it bounds what register tracking costs.
fn pressure_track_kernel(reps: usize, module: &Module, lowered_ops: u128) -> f64 {
    let m = MachineModel::model_8u_r64();
    let pipeline = Pipeline::with_options(
        &m,
        RobustOptions {
            sched: ScheduleOptions {
                heuristic: Heuristic::GlobalWeight,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut best = u128::MAX;
    for _ in 0..reps {
        let prof = Profiler::new();
        for f in module.functions() {
            std::hint::black_box(
                pipeline
                    .run_function(f, &RegionConfig::Treegion, &prof)
                    .expect("pressure-track kernel schedules"),
            );
        }
        best = best.min(prof.stage_nanos(Stage::ListSched));
    }
    best as f64 / lowered_ops.max(1) as f64
}

/// ns per `go` probe on the asymmetric preset: a tight chase through the
/// precomputed transition table over a fixed mixed-class pattern,
/// restarting from the empty-cycle state on every hazard. This is the
/// scheduler inner loop's resource check in isolation — the kernel the
/// automaton rewrite optimizes — and the regression gate on it catches a
/// table-layout or interning change that turns the O(1) probe back into
/// something slower.
fn hazard_probe_kernel(reps: usize, iters: usize) -> f64 {
    let m = MachineModel::model_4u_asym();
    let auto = m.hazard_automaton();
    let pattern = [
        OpClass::Alu,
        OpClass::Mem,
        OpClass::Alu,
        OpClass::Branch,
        OpClass::Mem,
        OpClass::Alu,
        OpClass::FDiv,
        OpClass::Alu,
    ];
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut state = auto.start();
        let mut hazards = 0u64;
        let t0 = Instant::now();
        for i in 0..iters {
            match auto.go(state, pattern[i & 7]) {
                Some(next) => state = next,
                None => {
                    hazards += 1;
                    state = auto.start();
                }
            }
        }
        let ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
        std::hint::black_box((state, hazards));
        best = best.min(ns);
    }
    best
}

/// us-per-request through the serve engine's `process_batch`: best-of-
/// `reps` cold passes (fresh engine + disk cache; every module runs the
/// full pipeline and is fsynced into the cache) and warm passes over the
/// same engine (every module answered from the cache tiers). Runs
/// serially, like the other microbenches, so numbers are comparable
/// across machines.
fn serve_kernel(reps: usize, n: usize) -> (f64, f64) {
    use treegion_serve::{
        Admission, BatchOptions, Engine, EngineConfig, ModuleReply, ModuleRequest, Poison,
    };
    let dir = std::env::temp_dir().join(format!("tgc-bench-serve-{}", std::process::id()));
    let batch: Vec<ModuleRequest> = (0..n)
        .map(|i| ModuleRequest {
            text: format!(
                "module @bench{i}\n\nfunc @f {{\n  bb0 (weight 100):\n    r0 = movi #{i}\n    r1 = movi #2\n    r2 = add r0, r1\n    ret r2\n}}\n"
            ),
            poison: Poison::default(),
        })
        .collect();
    let gate = Admission::new(usize::MAX, 0);
    let opts = BatchOptions::default();
    let (mut cold, mut warm) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..reps {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::open(&EngineConfig {
            cache_path: Some(dir.join(format!("cache-{rep}.tgc"))),
            quarantine_dir: None,
            default_deadline_ms: None,
            chaos: None,
            cache_shards: 0,
        })
        .expect("bench engine opens");
        let t0 = Instant::now();
        let replies = engine.process_batch(&gate, &opts, &batch);
        cold = cold.min(t0.elapsed().as_secs_f64() * 1e6 / n as f64);
        assert!(replies
            .iter()
            .all(|r| matches!(r, ModuleReply::Ok { warm: false, .. })));
        let t0 = Instant::now();
        let replies = engine.process_batch(&gate, &opts, &batch);
        warm = warm.min(t0.elapsed().as_secs_f64() * 1e6 / n as f64);
        assert!(replies
            .iter()
            .all(|r| matches!(r, ModuleReply::Ok { warm: true, .. })));
    }
    let _ = std::fs::remove_dir_all(&dir);
    (cold, warm)
}

/// Connection/pipeline shapes of the two loadgen kernels. Recorded in
/// the JSON next to the numbers so a baseline comparison knows what
/// concurrency produced them.
const LOAD_C1: (usize, usize) = (1, 1);
const LOAD_C8: (usize, usize) = (8, 8);

/// Sustained warm throughput through a real TCP `Server` driven by the
/// `tgc loadgen` harness: `(c1_us, c1_rps, c8_us, c8_rps)`.
///
/// `c1` opens a fresh connection per batch at depth 1 — the
/// pre-pipelining one-batch-per-connection baseline shape. `c8` keeps 8
/// connections alive with 8 batches in flight each. Both draw the same
/// seeded module pool, primed once beforehand, so every measured
/// request is a warm cache hit and the delta is pure protocol/cache
/// concurrency.
fn loadgen_kernel() -> (f64, f64, f64, f64) {
    use treegion_serve::{
        parse_response, read_frame, render_simple, run_loadgen, write_frame, EngineConfig,
        LoadgenConfig, Server, ServerConfig, Verb,
    };
    let dir = std::env::temp_dir().join(format!("tgc-bench-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        engine: EngineConfig {
            cache_path: Some(dir.join("cache.tgc")),
            quarantine_dir: None,
            default_deadline_ms: None,
            chaos: None,
            cache_shards: 0,
        },
        ..ServerConfig::default()
    })
    .expect("bench server binds");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run());

    // One second per shape in quick mode too: sustained-throughput
    // numbers need the window to dominate startup jitter, or the CI
    // regression gate flaps.
    let base = LoadgenConfig {
        addr: addr.clone(),
        duration_ms: 1_000,
        seed: 0xBEEF,
        ..LoadgenConfig::default()
    };
    // Prime the cache: the pool is deterministic per seed, so one short
    // pass converts every later request into a warm hit.
    run_loadgen(&LoadgenConfig {
        connections: 1,
        pipeline_depth: 4,
        duration_ms: 200,
        reconnect: false,
        ..base.clone()
    })
    .expect("prime pass");
    let c1 = run_loadgen(&LoadgenConfig {
        connections: LOAD_C1.0,
        pipeline_depth: LOAD_C1.1,
        reconnect: true,
        ..base.clone()
    })
    .expect("c1 baseline pass");
    let c8 = run_loadgen(&LoadgenConfig {
        connections: LOAD_C8.0,
        pipeline_depth: LOAD_C8.1,
        reconnect: false,
        ..base
    })
    .expect("c8 pipelined pass");
    assert_eq!(c1.seq_mismatches + c8.seq_mismatches, 0, "FIFO broken");

    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    write_frame(&mut s, &render_simple(Verb::Shutdown)).unwrap();
    let reply = read_frame(&mut s).unwrap().expect("server hung up");
    assert_eq!(parse_response(&reply).unwrap().kind, "draining");
    handle.join().unwrap().expect("server run loop");
    let _ = std::fs::remove_dir_all(&dir);
    (
        c1.us_per_module(),
        c1.req_per_sec(),
        c8.us_per_module(),
        c8.req_per_sec(),
    )
}

/// ns per warm `get` on a pre-populated 8-way [`ShardedDiskCache`] —
/// the lock-striped lookup the serve warm path rides. A regression here
/// means the striping (or the per-shard in-memory index) picked up a
/// serialization point.
fn cache_shard_probe_kernel(reps: usize, iters: usize) -> f64 {
    use treegion_eval::ShardedDiskCache;
    let dir = std::env::temp_dir().join(format!("tgc-bench-shardprobe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (cache, _) = ShardedDiskCache::open(&dir.join("probe.tgc"), 8, None).expect("probe store");
    let keys = 256u64;
    for k in 0..keys {
        cache
            .put(k, &format!("probe payload {k}"))
            .expect("probe put");
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut live = 0u64;
        let t0 = Instant::now();
        for i in 0..iters {
            let key = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % keys;
            if cache.get(key).is_some() {
                live += 1;
            }
        }
        let ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
        assert_eq!(live, iters as u64);
        best = best.min(ns);
    }
    let _ = std::fs::remove_dir_all(&dir);
    best
}

/// Renders every table/figure the `all` binary prints; returns total
/// rendered bytes (a cheap checksum that also defeats dead-code
/// elimination).
fn run_harness(suite: &Suite) -> usize {
    let (m4, m8) = (MachineModel::model_4u(), MachineModel::model_8u());
    let mut bytes = 0usize;
    for t in [table1(suite), table2(suite)] {
        bytes += t.render().len();
    }
    for m in [&m4, &m8] {
        bytes += fig6(suite, m).render().len();
    }
    for m in [&m4, &m8] {
        bytes += fig8(suite, m).render().len();
    }
    for t in [table3(suite), table4(suite)] {
        bytes += t.render().len();
    }
    for m in [&m4, &m8] {
        bytes += fig13(suite, m).render().len();
    }
    bytes
}

/// One end-to-end harness run (suite load + every table/figure), in
/// milliseconds, under the given job count and cache mode.
fn harness_ms(quick: bool, cached: bool, jobs: usize) -> f64 {
    treegion_par::set_jobs(jobs);
    let t0 = Instant::now();
    let suite = match (quick, cached) {
        (true, true) => Suite::load_small(2),
        (true, false) => Suite::load_small_uncached(2),
        (false, true) => Suite::load(),
        (false, false) => Suite::load_uncached(),
    };
    let bytes = run_harness(&suite);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(bytes > 0);
    ms
}

fn main() {
    let cfg = parse_config();
    // Microbench repetitions: best-of-3 even in quick mode — the kernels
    // cost milliseconds and the `--regress` bound compares against a
    // best-of-5 committed baseline, so a single noisy rep must not flap
    // the CI regression gate.
    let reps = if cfg.quick { 3 } else { 5 };

    // --- Microbenchmarks (ns per source/lowered op). ---
    //
    // Every per-kernel number below comes from the Profiler observer's
    // stage brackets on the Pipeline driver — one profiled run yields
    // formation, lowering, ddg, and list-sched in a single pass. The
    // microbenches run strictly serial so per-stage sums are comparable
    // to the committed serial baseline.
    treegion_par::set_jobs(1);
    let module = bench_module();
    let src_ops = module.num_ops() as u128;
    let m8 = MachineModel::model_8u();
    let opts = ScheduleOptions {
        heuristic: Heuristic::GlobalWeight,
        ..Default::default()
    };
    let tree = RegionConfig::Treegion;
    let tree_td = RegionConfig::TreegionTd(TailDupLimits::expansion_2_0());

    // Warm-up run; also the source of the lowered-op denominator (the
    // Lowering stage's summed op counter).
    let lowered_ops = profiled_run(&module, &tree, &m8, &opts).report()[Stage::Lowering as usize]
        .stats
        .ops as u128;

    let (stage_ns, sched_ns) = best_stages(reps, || profiled_run(&module, &tree, &m8, &opts));
    let formation_ns = stage_ns[0];
    let lowering_ns = stage_ns[1];
    let ddg_ns = stage_ns[2];
    let list_sched_ns = stage_ns[3];
    let (td_stage_ns, _) = best_stages(reps, || profiled_run(&module, &tree_td, &m8, &opts));
    let formation_td_ns = td_stage_ns[0];

    // --- Pressure-tracking kernel (finite register file, ns per op). ---
    let pressure_track_ns = pressure_track_kernel(reps, &module, lowered_ops);

    // --- Hazard-probe micro-kernel (ns per table probe). ---
    let probe_iters = if cfg.quick { 1_000_000 } else { 4_000_000 };
    let hazard_probe_ns = hazard_probe_kernel(reps, probe_iters);

    // --- Serve engine kernel (cold vs warm, us per request). ---
    // Same batch size in quick and full mode: per-request numbers only
    // compare against the committed full-mode baseline if the
    // batch-level fixed costs amortize identically, and the kernel
    // costs milliseconds either way.
    let serve_n = 32;
    let (serve_cold_us, serve_warm_us) = serve_kernel(reps, serve_n);

    // --- Sustained-throughput loadgen kernels over real TCP. ---
    let (c1_us, c1_rps, c8_us, c8_rps) = loadgen_kernel();
    let load_speedup = if c1_rps > 0.0 { c8_rps / c1_rps } else { 0.0 };

    // --- Sharded-cache probe kernel (ns per warm get). ---
    let probe_gets = if cfg.quick { 200_000 } else { 1_000_000 };
    let shard_probe_ns = cache_shard_probe_kernel(reps, probe_gets);

    // --- End-to-end harness wall times. ---
    let jobs_n = treegion_par::max_jobs();
    // Best-of-k wall times: k >= 2 even in quick mode so the --check
    // comparison is between best runs, not run-to-run noise.
    let e2e_reps = if cfg.quick { 2 } else { 3 };
    let best_ms = |cached: bool, jobs: usize| {
        (0..e2e_reps)
            .map(|_| harness_ms(cfg.quick, cached, jobs))
            .fold(f64::INFINITY, f64::min)
    };
    let uncached_jobs1 = best_ms(false, 1);
    let cached_jobs1 = best_ms(true, 1);
    let cached_jobsn = best_ms(true, jobs_n);
    treegion_par::set_jobs(1);

    let cache_speedup = uncached_jobs1 / cached_jobs1;
    let total_speedup = uncached_jobs1 / cached_jobsn;

    // --- Emit JSON. ---
    let per = |total_ns: u128, ops: u128| total_ns as f64 / ops.max(1) as f64;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"treegion-bench-sched/v6\",");
    let _ = writeln!(
        j,
        "  \"mode\": \"{}\",",
        if cfg.quick { "quick" } else { "full" }
    );
    let _ = writeln!(j, "  \"jobs_available\": {jobs_n},");
    let _ = writeln!(j, "  \"ns_per_op\": {{");
    let _ = writeln!(
        j,
        "    \"formation_treegion\": {:.2},",
        per(formation_ns, src_ops)
    );
    let _ = writeln!(
        j,
        "    \"formation_treegion_td2\": {:.2},",
        per(formation_td_ns, src_ops)
    );
    let _ = writeln!(j, "    \"lowering\": {:.2},", per(lowering_ns, src_ops));
    let _ = writeln!(j, "    \"ddg_build\": {:.2},", per(ddg_ns, lowered_ops));
    let _ = writeln!(
        j,
        "    \"list_sched\": {:.2},",
        per(list_sched_ns, lowered_ops)
    );
    let _ = writeln!(
        j,
        "    \"schedule_region\": {:.2},",
        per(sched_ns, lowered_ops)
    );
    let _ = writeln!(j, "    \"pressure_track\": {pressure_track_ns:.2},");
    let _ = writeln!(j, "    \"hazard_probe\": {hazard_probe_ns:.2},");
    let _ = writeln!(j, "    \"cache_shard_probe\": {shard_probe_ns:.2}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"automaton_states\": {{");
    {
        let ps = presets();
        for (k, m) in ps.iter().enumerate() {
            let comma = if k + 1 < ps.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "    \"{}\": {}{comma}",
                m.name(),
                m.hazard_automaton().state_count()
            );
        }
    }
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"serve_us_per_req\": {{");
    let _ = writeln!(j, "    \"serve_cold\": {serve_cold_us:.2},");
    let _ = writeln!(j, "    \"serve_warm\": {serve_warm_us:.2},");
    let _ = writeln!(j, "    \"serve_warm_c1\": {c1_us:.2},");
    let _ = writeln!(j, "    \"serve_warm_c8\": {c8_us:.2}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"serve_load\": {{");
    let _ = writeln!(j, "    \"jobs_available\": {jobs_n},");
    let _ = writeln!(j, "    \"connections_c1\": {},", LOAD_C1.0);
    let _ = writeln!(j, "    \"pipeline_depth_c1\": {},", LOAD_C1.1);
    let _ = writeln!(j, "    \"req_per_sec_c1\": {c1_rps:.0},");
    let _ = writeln!(j, "    \"connections_c8\": {},", LOAD_C8.0);
    let _ = writeln!(j, "    \"pipeline_depth_c8\": {},", LOAD_C8.1);
    let _ = writeln!(j, "    \"req_per_sec_c8\": {c8_rps:.0},");
    let _ = writeln!(j, "    \"speedup_c8_over_c1\": {load_speedup:.2}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"harness_ms\": {{");
    let _ = writeln!(j, "    \"uncached_jobs1\": {uncached_jobs1:.1},");
    let _ = writeln!(j, "    \"cached_jobs1\": {cached_jobs1:.1},");
    let _ = writeln!(j, "    \"cached_jobsN\": {cached_jobsn:.1}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"speedup_cache_only_jobs1\": {cache_speedup:.2},");
    let _ = writeln!(j, "  \"speedup_total\": {total_speedup:.2}");
    let _ = writeln!(j, "}}");

    std::fs::write(&cfg.out, &j).expect("write BENCH_sched.json");
    eprintln!("bench_sched: wrote {}", cfg.out);
    eprint!("{j}");

    if cfg.check {
        let limit = 1.2 * cached_jobs1;
        if cached_jobsn > limit {
            eprintln!(
                "bench_sched: FAIL: jobs={jobs_n} harness took {cached_jobsn:.1} ms, \
                 more than 1.2x the jobs=1 time ({cached_jobs1:.1} ms)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_sched: check ok: jobs={jobs_n} {cached_jobsn:.1} ms <= 1.2 x {cached_jobs1:.1} ms"
        );
    }

    if let Some(baseline_path) = &cfg.regress {
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("bench_sched: cannot read baseline {baseline_path}: {e}"));
        let verdicts = regress_verdicts(
            &baseline,
            1.3,
            &[
                ("ddg_build", per(ddg_ns, lowered_ops)),
                ("list_sched", per(list_sched_ns, lowered_ops)),
                ("schedule_region", per(sched_ns, lowered_ops)),
                ("pressure_track", pressure_track_ns),
                ("hazard_probe", hazard_probe_ns),
                ("serve_cold", serve_cold_us),
                ("serve_warm", serve_warm_us),
                ("serve_warm_c8", c8_us),
                ("cache_shard_probe", shard_probe_ns),
            ],
        );
        for v in &verdicts {
            eprintln!("{}", v.render());
        }
        if verdicts.iter().any(|v| v.failed()) {
            std::process::exit(1);
        }
    }
}
