//! # treegion-bench
//!
//! Benchmarks for the treegion reproduction, written against a small
//! criterion-compatible harness (this workspace builds hermetically with no
//! access to crates.io, so the harness lives in [`harness`] rather than in
//! an external crate). The benches live in `benches/`:
//!
//! * `formation` — region formation throughput (treegion, SLR, superblock,
//!   tail-duplicated treegion) over a generated benchmark.
//! * `scheduling` — lowering + DDG + list scheduling per heuristic and
//!   machine model.
//! * `experiments` — the per-table/figure experiment pipelines (the same
//!   computations the `treegion-eval` binaries print).
//! * `ablations` — the design-choice ablations called out in DESIGN.md:
//!   dominator parallelism on/off, PlayDoh same-cycle memory dependences,
//!   and per-cycle branch limits.
//!
//! This library crate exports small helpers shared by those benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub use harness::{BatchSize, Bencher, BenchmarkGroup, Criterion};

use treegion::{Heuristic, NullObserver, Pipeline, RegionSet, RobustOptions, ScheduleOptions};
use treegion_ir::{Function, Module};
use treegion_machine::MachineModel;

/// Total estimated time of a formed function under one configuration —
/// the core computation every experiment repeats. Drives the staged
/// [`Pipeline`] (lower → DDG → list-sched) rather than wiring the
/// kernels by hand.
pub fn time_formed(
    f: &Function,
    regions: &RegionSet,
    origin: Option<&[treegion_ir::BlockId]>,
    machine: &MachineModel,
    heuristic: Heuristic,
    dompar: bool,
) -> f64 {
    time_formed_opts(
        f,
        regions,
        origin,
        machine,
        &ScheduleOptions {
            heuristic,
            dominator_parallelism: dompar,
            ..Default::default()
        },
    )
}

/// As [`time_formed`], with fully explicit [`ScheduleOptions`] (tie
/// break, dominator parallelism — the ablation benches need both).
pub fn time_formed_opts(
    f: &Function,
    regions: &RegionSet,
    origin: Option<&[treegion_ir::BlockId]>,
    machine: &MachineModel,
    opts: &ScheduleOptions,
) -> f64 {
    Pipeline::with_options(
        machine,
        RobustOptions {
            sched: *opts,
            ..Default::default()
        },
    )
    .schedule_set(f, regions, origin, &NullObserver)
    .iter()
    .map(|s| s.schedule.estimated_time(&s.lowered))
    .sum()
}

/// A small deterministic module for benchmarking (compress-like).
pub fn bench_module() -> Module {
    treegion_workloads::generate(&treegion_workloads::spec_suite()[0])
}
