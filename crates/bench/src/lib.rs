//! # treegion-bench
//!
//! Benchmarks for the treegion reproduction, written against a small
//! criterion-compatible harness (this workspace builds hermetically with no
//! access to crates.io, so the harness lives in [`harness`] rather than in
//! an external crate). The benches live in `benches/`:
//!
//! * `formation` — region formation throughput (treegion, SLR, superblock,
//!   tail-duplicated treegion) over a generated benchmark.
//! * `scheduling` — lowering + DDG + list scheduling per heuristic and
//!   machine model.
//! * `experiments` — the per-table/figure experiment pipelines (the same
//!   computations the `treegion-eval` binaries print).
//! * `ablations` — the design-choice ablations called out in DESIGN.md:
//!   dominator parallelism on/off, PlayDoh same-cycle memory dependences,
//!   and per-cycle branch limits.
//!
//! This library crate exports small helpers shared by those benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub use harness::{BatchSize, Bencher, BenchmarkGroup, Criterion};

use treegion::{Heuristic, NullObserver, Pipeline, RegionSet, RobustOptions, ScheduleOptions};
use treegion_ir::{Function, Module};
use treegion_machine::MachineModel;

/// Total estimated time of a formed function under one configuration —
/// the core computation every experiment repeats. Drives the staged
/// [`Pipeline`] (lower → DDG → list-sched) rather than wiring the
/// kernels by hand.
pub fn time_formed(
    f: &Function,
    regions: &RegionSet,
    origin: Option<&[treegion_ir::BlockId]>,
    machine: &MachineModel,
    heuristic: Heuristic,
    dompar: bool,
) -> f64 {
    time_formed_opts(
        f,
        regions,
        origin,
        machine,
        &ScheduleOptions {
            heuristic,
            dominator_parallelism: dompar,
            ..Default::default()
        },
    )
}

/// As [`time_formed`], with fully explicit [`ScheduleOptions`] (tie
/// break, dominator parallelism — the ablation benches need both).
pub fn time_formed_opts(
    f: &Function,
    regions: &RegionSet,
    origin: Option<&[treegion_ir::BlockId]>,
    machine: &MachineModel,
    opts: &ScheduleOptions,
) -> f64 {
    Pipeline::with_options(
        machine,
        RobustOptions {
            sched: *opts,
            ..Default::default()
        },
    )
    .schedule_set(f, regions, origin, &NullObserver)
    .iter()
    .map(|s| s.schedule.estimated_time(&s.lowered))
    .sum()
}

/// A small deterministic module for benchmarking (compress-like).
pub fn bench_module() -> Module {
    treegion_workloads::generate(&treegion_workloads::spec_suite()[0])
}

/// Extracts the number following `"key": ` from hand-rolled bench JSON.
/// Good enough for the files `bench_sched` itself writes; `None` when the
/// key is absent (e.g. an older baseline missing a new kernel).
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One kernel's verdict from the `--regress` gate: the observed value
/// against `bound ×` the committed baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct RegressVerdict {
    /// Kernel key as it appears in the baseline JSON.
    pub kernel: String,
    /// This run's measurement.
    pub observed: f64,
    /// The committed baseline value (`None` when the baseline predates
    /// the kernel — skipped, never failed).
    pub baseline: Option<f64>,
    /// The regression bound the gate enforces (e.g. 1.3).
    pub bound: f64,
}

impl RegressVerdict {
    /// observed ÷ allowed (`bound × baseline`); > 1.0 is a failure.
    /// `None` when the baseline is missing or non-positive.
    pub fn ratio_of_allowed(&self) -> Option<f64> {
        let base = self.baseline?;
        if base <= 0.0 {
            return None;
        }
        Some(self.observed / (self.bound * base))
    }

    /// Whether this kernel regressed past the bound.
    pub fn failed(&self) -> bool {
        self.ratio_of_allowed().is_some_and(|r| r > 1.0)
    }

    /// One human-readable gate line, naming the kernel and the
    /// observed/allowed ratio — what `--regress` prints per kernel.
    pub fn render(&self) -> String {
        let Some(base) = self.baseline else {
            return format!(
                "bench_sched: regress: baseline has no `{}`, skipping",
                self.kernel
            );
        };
        match self.ratio_of_allowed() {
            Some(r) if r > 1.0 => format!(
                "bench_sched: FAIL: kernel `{}` {:.2} exceeds {}x baseline ({:.2}): \
                 observed/allowed = {r:.2}",
                self.kernel, self.observed, self.bound, base
            ),
            Some(r) => format!(
                "bench_sched: regress ok: {} {:.2} <= {} x {:.2} (observed/allowed = {r:.2})",
                self.kernel, self.observed, self.bound, base
            ),
            None => format!(
                "bench_sched: regress: baseline `{}` is non-positive, skipping",
                self.kernel
            ),
        }
    }
}

/// Compares each `(kernel, observed)` pair against `baseline_json` under
/// the per-kernel `bound`. Pure — the binary prints each verdict's
/// [`RegressVerdict::render`] line and exits non-zero if any
/// [`RegressVerdict::failed`].
pub fn regress_verdicts(
    baseline_json: &str,
    bound: f64,
    kernels: &[(&str, f64)],
) -> Vec<RegressVerdict> {
    kernels
        .iter()
        .map(|&(key, observed)| RegressVerdict {
            kernel: key.to_string(),
            observed,
            baseline: json_number(baseline_json, key),
            bound,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{ "ns_per_op": { "list_sched": 100.0, "pressure_track": 200.0 } }"#;

    #[test]
    fn json_number_reads_keys_and_skips_absent_ones() {
        assert_eq!(json_number(BASELINE, "list_sched"), Some(100.0));
        assert_eq!(json_number(BASELINE, "pressure_track"), Some(200.0));
        assert_eq!(json_number(BASELINE, "missing_kernel"), None);
    }

    #[test]
    fn regress_verdicts_name_the_failing_kernel_and_ratio() {
        let v = regress_verdicts(
            BASELINE,
            1.3,
            &[
                ("list_sched", 120.0),     // within 1.3x of 100
                ("pressure_track", 300.0), // 300 > 1.3 * 200 = 260
                ("missing_kernel", 5.0),   // no baseline: skipped
            ],
        );
        assert!(!v[0].failed());
        assert!((v[0].ratio_of_allowed().unwrap() - 120.0 / 130.0).abs() < 1e-12);

        assert!(v[1].failed());
        let line = v[1].render();
        assert!(line.contains("pressure_track"), "{line}");
        assert!(line.contains("observed/allowed = 1.15"), "{line}");
        assert!(line.contains("FAIL"), "{line}");

        assert!(!v[2].failed());
        assert!(v[2].ratio_of_allowed().is_none());
        assert!(v[2].render().contains("skipping"));
    }
}
