//! # treegion-bench
//!
//! Benchmarks for the treegion reproduction, written against a small
//! criterion-compatible harness (this workspace builds hermetically with no
//! access to crates.io, so the harness lives in [`harness`] rather than in
//! an external crate). The benches live in `benches/`:
//!
//! * `formation` — region formation throughput (treegion, SLR, superblock,
//!   tail-duplicated treegion) over a generated benchmark.
//! * `scheduling` — lowering + DDG + list scheduling per heuristic and
//!   machine model.
//! * `experiments` — the per-table/figure experiment pipelines (the same
//!   computations the `treegion-eval` binaries print).
//! * `ablations` — the design-choice ablations called out in DESIGN.md:
//!   dominator parallelism on/off, PlayDoh same-cycle memory dependences,
//!   and per-cycle branch limits.
//!
//! This library crate exports small helpers shared by those benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub use harness::{BatchSize, Bencher, BenchmarkGroup, Criterion};

use treegion::{lower_region, schedule_region, Heuristic, RegionSet, ScheduleOptions};
use treegion_analysis::{Cfg, Liveness};
use treegion_ir::{Function, Module};
use treegion_machine::MachineModel;

/// Total estimated time of a formed function under one configuration —
/// the core computation every experiment repeats.
pub fn time_formed(
    f: &Function,
    regions: &RegionSet,
    origin: Option<&[treegion_ir::BlockId]>,
    machine: &MachineModel,
    heuristic: Heuristic,
    dompar: bool,
) -> f64 {
    let cfg = Cfg::new(f);
    let live = Liveness::new(f, &cfg);
    regions
        .regions()
        .iter()
        .map(|r| {
            let lowered = lower_region(f, r, &live, origin);
            schedule_region(
                &lowered,
                machine,
                &ScheduleOptions {
                    heuristic,
                    dominator_parallelism: dompar,
                    ..Default::default()
                },
            )
            .estimated_time(&lowered)
        })
        .sum()
}

/// A small deterministic module for benchmarking (compress-like).
pub fn bench_module() -> Module {
    treegion_workloads::generate(&treegion_workloads::spec_suite()[0])
}
