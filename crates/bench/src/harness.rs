//! A tiny, dependency-free benchmark harness with a criterion-shaped API.
//!
//! The workspace must build in hermetic environments with no crates.io
//! access, so the `criterion` crate is unavailable. This module provides
//! the small slice of its surface the benches in `benches/` use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-sample timing loop and plain-text reporting.
//!
//! The numbers are wall-clock means over `sample_size` samples; they are
//! good enough for relative comparisons ("did this PR make scheduling
//! slower?") without criterion's statistical machinery.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the harness always runs one setup per iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Top-level benchmark driver (criterion-compatible surface).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean sample time.
    pub fn bench_function<S: AsRef<str>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.elapsed.as_secs_f64() / b.iters as f64
        } else {
            0.0
        };
        eprintln!("  {:<40} {}", id.as_ref(), format_time(mean));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running a short warmup first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: run until ~10ms or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` over inputs produced by `setup`; only `routine` is
    /// measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warmup.
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>10.3} s ")
    } else if secs >= 1e-3 {
        format!("{:>10.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>10.3} µs", secs * 1e6)
    } else {
        format!("{:>10.1} ns", secs * 1e9)
    }
}

/// Declares a function that runs each benchmark in sequence (criterion
/// macro shim).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(4);
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        // 4 samples + at least 3 warmup iterations.
        assert!(runs >= 7, "{runs}");
    }

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).contains("s"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-9).contains("ns"));
    }
}
