//! Scheduling throughput: lowering, DDG construction, and list scheduling
//! under each of the paper's four heuristics, on the 4U and 8U machines.

use std::hint::black_box;
use treegion::{form_treegions, lower_region, schedule_with_ddg, Ddg, Heuristic, ScheduleOptions};
use treegion_analysis::{Cfg, Liveness};
use treegion_bench::{bench_module, criterion_group, criterion_main, Criterion};
use treegion_machine::MachineModel;

fn bench_scheduling(c: &mut Criterion) {
    let module = bench_module();
    let f = module
        .functions()
        .iter()
        .max_by_key(|f| f.num_blocks())
        .unwrap();
    let regions = form_treegions(f);
    let cfg = Cfg::new(f);
    let live = Liveness::new(f, &cfg);
    let m4 = MachineModel::model_4u();

    let mut g = c.benchmark_group("scheduling");
    g.bench_function("lowering", |b| {
        b.iter(|| {
            for r in regions.regions() {
                black_box(lower_region(black_box(f), r, &live, None));
            }
        })
    });

    let lowered: Vec<_> = regions
        .regions()
        .iter()
        .map(|r| lower_region(f, r, &live, None))
        .collect();
    g.bench_function("ddg_build", |b| {
        b.iter(|| {
            for lr in &lowered {
                black_box(Ddg::build(black_box(lr), &m4));
            }
        })
    });

    let ddgs: Vec<_> = lowered.iter().map(|lr| Ddg::build(lr, &m4)).collect();
    for h in Heuristic::ALL {
        g.bench_function(format!("list_schedule_{h}"), |b| {
            b.iter(|| {
                for (lr, ddg) in lowered.iter().zip(&ddgs) {
                    black_box(schedule_with_ddg(
                        lr,
                        ddg,
                        &m4,
                        &ScheduleOptions {
                            heuristic: h,
                            dominator_parallelism: false,
                            ..Default::default()
                        },
                    ));
                }
            })
        });
    }
    for machine in [MachineModel::model_1u(), MachineModel::model_8u()] {
        g.bench_function(format!("list_schedule_gw_{}", machine.name()), |b| {
            let ddgs: Vec<_> = lowered.iter().map(|lr| Ddg::build(lr, &machine)).collect();
            b.iter(|| {
                for (lr, ddg) in lowered.iter().zip(&ddgs) {
                    black_box(schedule_with_ddg(
                        lr,
                        ddg,
                        &machine,
                        &ScheduleOptions {
                            heuristic: Heuristic::GlobalWeight,
                            dominator_parallelism: false,
                            ..Default::default()
                        },
                    ));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
