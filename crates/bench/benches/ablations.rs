//! Ablation benches for the design choices DESIGN.md calls out. Each
//! bench reports the *estimated execution time* of the compress benchmark
//! under one configuration as its throughput payload, so `cargo bench`
//! output doubles as an ablation table (compare the printed times).

use std::hint::black_box;
use treegion::{form_treegions, form_treegions_td, Heuristic, TailDupLimits};
use treegion_bench::{
    bench_module, criterion_group, criterion_main, time_formed, time_formed_opts, Criterion,
};
use treegion_machine::MachineModel;

fn bench_ablations(c: &mut Criterion) {
    let module = bench_module();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // --- Dominator parallelism on/off (Section 4). ---
    for dompar in [false, true] {
        g.bench_function(
            format!("dompar_{}", if dompar { "on" } else { "off" }),
            |b| {
                let m4 = MachineModel::model_4u();
                b.iter(|| {
                    let mut total = 0.0;
                    for f in module.functions() {
                        let td = form_treegions_td(f, &TailDupLimits::expansion_2_0());
                        total += time_formed(
                            &td.function,
                            &td.regions,
                            Some(&td.origin),
                            &m4,
                            Heuristic::GlobalWeight,
                            dompar,
                        );
                    }
                    black_box(total)
                })
            },
        );
    }

    // --- PlayDoh same-cycle memory dependences vs serialized (+1). ---
    for same_cycle in [true, false] {
        let machine = MachineModel::builder("4U*", 4)
            .mem_dep_same_cycle(same_cycle)
            .build();
        g.bench_function(format!("mem_dep_same_cycle_{same_cycle}"), |b| {
            b.iter(|| {
                let mut total = 0.0;
                for f in module.functions() {
                    let regions = form_treegions(f);
                    total +=
                        time_formed(f, &regions, None, &machine, Heuristic::GlobalWeight, false);
                }
                black_box(total)
            })
        });
    }

    // --- Branch limit: "several branches in one cycle (providing the
    //     architecture allows it)". ---
    for limit in [None, Some(2), Some(1)] {
        let machine = MachineModel::builder("4U*", 4).branch_limit(limit).build();
        g.bench_function(
            format!(
                "branch_limit_{}",
                limit
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "none".into())
            ),
            |b| {
                b.iter(|| {
                    let mut total = 0.0;
                    for f in module.functions() {
                        let regions = form_treegions(f);
                        total += time_formed(
                            f,
                            &regions,
                            None,
                            &machine,
                            Heuristic::GlobalWeight,
                            false,
                        );
                    }
                    black_box(total)
                })
            },
        );
    }
    // --- Memory ports: universal units vs 1/2 memory ports at 4-wide. ---
    for ports in [None, Some(2), Some(1)] {
        let machine = MachineModel::builder("4U*", 4).mem_ports(ports).build();
        g.bench_function(
            format!(
                "mem_ports_{}",
                ports
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "universal".into())
            ),
            |b| {
                b.iter(|| {
                    let mut total = 0.0;
                    for f in module.functions() {
                        let regions = form_treegions(f);
                        total += time_formed(
                            f,
                            &regions,
                            None,
                            &machine,
                            Heuristic::GlobalWeight,
                            false,
                        );
                    }
                    black_box(total)
                })
            },
        );
    }

    // --- Tie break: source order vs round-robin ("democratic"). ---
    for tb in [
        treegion::TieBreak::SourceOrder,
        treegion::TieBreak::RoundRobin,
    ] {
        g.bench_function(format!("tie_break_{tb:?}"), |b| {
            let m4 = MachineModel::model_4u();
            b.iter(|| {
                let mut total = 0.0;
                for f in module.functions() {
                    let regions = form_treegions(f);
                    total += time_formed_tb(f, &regions, &m4, tb);
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

/// `time_formed` with an explicit tie break and dependence height (the
/// heuristic the paper calls "democratic" on wide shallow treegions).
fn time_formed_tb(
    f: &treegion_ir::Function,
    regions: &treegion::RegionSet,
    machine: &MachineModel,
    tie_break: treegion::TieBreak,
) -> f64 {
    time_formed_opts(
        f,
        regions,
        None,
        machine,
        &treegion::ScheduleOptions {
            heuristic: Heuristic::DependenceHeight,
            dominator_parallelism: false,
            tie_break,
        },
    )
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
