//! Region-formation throughput: the paper's Figure 2 (`treeform`),
//! Figure 11 (`treeform-td`), SLR formation, and superblock formation over
//! the compress-like benchmark.

use std::hint::black_box;
use treegion::{
    form_basic_blocks, form_slrs, form_superblocks, form_treegions, form_treegions_td,
    TailDupLimits,
};
use treegion_bench::{bench_module, criterion_group, criterion_main, BatchSize, Criterion};

fn bench_formation(c: &mut Criterion) {
    let module = bench_module();
    let mut g = c.benchmark_group("formation");
    g.bench_function("basic_blocks", |b| {
        b.iter(|| {
            for f in module.functions() {
                black_box(form_basic_blocks(black_box(f)));
            }
        })
    });
    g.bench_function("treegions", |b| {
        b.iter(|| {
            for f in module.functions() {
                black_box(form_treegions(black_box(f)));
            }
        })
    });
    g.bench_function("slrs", |b| {
        b.iter(|| {
            for f in module.functions() {
                black_box(form_slrs(black_box(f)));
            }
        })
    });
    g.bench_function("superblocks", |b| {
        b.iter_batched(
            || module.clone(),
            |m| {
                for f in m.functions() {
                    black_box(form_superblocks(black_box(f)));
                }
            },
            BatchSize::SmallInput,
        )
    });
    for limits in [
        TailDupLimits::expansion_2_0(),
        TailDupLimits::expansion_3_0(),
    ] {
        g.bench_function(format!("treegions_td_{:.1}", limits.code_expansion), |b| {
            b.iter(|| {
                for f in module.functions() {
                    black_box(form_treegions_td(black_box(f), &limits));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_formation);
criterion_main!(benches);
