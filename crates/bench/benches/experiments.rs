//! One bench per paper table/figure: each measures the pipeline that
//! regenerates that artifact (the printable versions live in the
//! `treegion-eval` binaries — `cargo run -p treegion-eval --bin table1`
//! etc.). Run on a reduced suite so a full `cargo bench` stays snappy.

use std::hint::black_box;
use treegion_bench::{criterion_group, criterion_main, Criterion};
use treegion_eval::{fig13, fig6, fig8, region_stats, table3, table4, RegionConfig, Suite};
use treegion_machine::MachineModel;

fn bench_experiments(c: &mut Criterion) {
    // compress only: the smallest benchmark exercises every code path.
    let suite = Suite::load_small(1);
    let m4 = MachineModel::model_4u();

    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table1_treegion_stats", |b| {
        b.iter(|| {
            for m in &suite.modules {
                black_box(region_stats(m, &RegionConfig::Treegion));
            }
        })
    });
    g.bench_function("table2_slr_stats", |b| {
        b.iter(|| {
            for m in &suite.modules {
                black_box(region_stats(m, &RegionConfig::Slr));
            }
        })
    });
    g.bench_function("table3_code_expansion", |b| {
        b.iter(|| black_box(table3(&suite)))
    });
    g.bench_function("table4_region_stats_td", |b| {
        b.iter(|| black_box(table4(&suite)))
    });
    g.bench_function("fig6_dep_height_speedups", |b| {
        b.iter(|| black_box(fig6(&suite, &m4)))
    });
    g.bench_function("fig8_four_heuristics", |b| {
        b.iter(|| black_box(fig8(&suite, &m4)))
    });
    g.bench_function("fig13_tail_dup_vs_superblock", |b| {
        b.iter(|| black_box(fig13(&suite, &m4)))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
