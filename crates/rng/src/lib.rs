//! # treegion-rng
//!
//! A small, dependency-free, deterministic pseudo-random number generator
//! used across the workspace (workload generation, profile perturbation,
//! fault injection, and the differential fuzz harness).
//!
//! The workspace must build in hermetic environments with no access to
//! crates.io, so this crate provides the tiny slice of the `rand` API the
//! repo actually uses — seeded construction, uniform ranges, booleans —
//! backed by xoshiro256** seeded through SplitMix64. Streams are stable
//! across platforms and releases of this workspace: the same seed always
//! produces the same programs, perturbations, and fault sites, which is
//! what makes fuzz failures and injected faults reproducible from a bare
//! `u64`.
//!
//! ## Example
//!
//! ```
//! use treegion_rng::StdRng;
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
//! let p = a.gen_f64();
//! assert!((0.0..1.0).contains(&p));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator with a `rand`-like surface.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, as
    /// recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` (unbiased via Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection sampling on the top bits: unbiased and branch-cheap.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let m = (r as u128) * (bound as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen index into a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick_index<T>(&mut self, xs: &[T]) -> usize {
        assert!(!xs.is_empty(), "pick_index on empty slice");
        self.below(xs.len() as u64) as usize
    }
}

/// Range types [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 only when the range covers the whole domain of
                // a 64-bit type, which no caller in this workspace does.
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: u64 = r.gen_range(0..1u64 << 40);
            assert!(u < 1u64 << 40);
        }
    }

    #[test]
    fn inclusive_singleton_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(r.gen_range(4usize..=4), 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn coverage_of_small_range() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(13);
        let (mut lo, mut hi) = (1.0f64, 0.0f64);
        for _ in 0..10_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor spread: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(17);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
