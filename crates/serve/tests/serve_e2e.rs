//! End-to-end daemon tests over real TCP: mixed batches, streaming
//! replies, stats, backpressure, keep-alive pipelining, and graceful
//! drain.

use std::net::TcpStream;
use std::path::PathBuf;
use treegion_serve::{
    parse_response, read_frame, render_compile, render_compile_seq, render_simple, write_frame,
    BatchOptions, EngineConfig, LoadgenConfig, ModuleRequest, Poison, ResponseFrame, ResultStatus,
    Server, ServerConfig, Verb,
};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tgc-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn module(name: &str, poison: Poison) -> ModuleRequest {
    ModuleRequest {
        text: format!(
            "module @{name}\n\nfunc @f {{\n  bb0 (weight 100):\n    r0 = movi #1\n    r1 = movi #2\n    r2 = add r0, r1\n    ret r2\n}}\n"
        ),
        poison,
    }
}

/// Starts a server on an ephemeral port; returns the address and the
/// run-loop thread (joined by sending `shutdown`).
fn start(config: ServerConfig) -> (String, std::thread::JoinHandle<Result<(), String>>) {
    let server = Server::bind(&config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn roundtrip(stream: &mut TcpStream, payload: &str) -> ResponseFrame {
    write_frame(stream, payload).unwrap();
    let reply = read_frame(stream).unwrap().expect("server hung up");
    parse_response(&reply).unwrap()
}

/// Reads the streamed replies of an n-module batch: n `result` frames
/// plus the `batch-end`.
fn read_batch(stream: &mut TcpStream, n: usize) -> (Vec<ResponseFrame>, ResponseFrame) {
    let mut results = Vec::new();
    for _ in 0..n {
        let f = parse_response(&read_frame(stream).unwrap().unwrap()).unwrap();
        assert_eq!(f.kind, "result", "{f:?}");
        results.push(f);
    }
    let end = parse_response(&read_frame(stream).unwrap().unwrap()).unwrap();
    assert_eq!(end.kind, "batch-end", "{end:?}");
    (results, end)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<Result<(), String>>) {
    let mut s = TcpStream::connect(addr).unwrap();
    let f = roundtrip(&mut s, &render_simple(Verb::Shutdown));
    assert_eq!(f.kind, "draining");
    handle.join().unwrap().unwrap();
}

#[test]
fn mixed_batch_poison_is_contained_while_siblings_complete() {
    let dir = tmpdir("mixed");
    let (addr, handle) = start(ServerConfig {
        engine: EngineConfig {
            cache_path: Some(dir.join("cache.tgc")),
            quarantine_dir: Some(dir.join("quarantine")),
            default_deadline_ms: None,
            chaos: None,
            cache_shards: 0,
        },
        ..ServerConfig::default()
    });
    let mut s = TcpStream::connect(&addr).unwrap();

    // Liveness first.
    assert_eq!(roundtrip(&mut s, &render_simple(Verb::Ping)).kind, "pong");

    let batch = vec![
        module("clean_a", Poison::default()),
        module(
            "poisoned",
            Poison {
                panic_hard: true,
                ..Poison::default()
            },
        ),
        module("clean_b", Poison::default()),
    ];
    write_frame(&mut s, &render_compile(&BatchOptions::default(), &batch)).unwrap();
    let (results, end) = read_batch(&mut s, 3);

    assert_eq!(results[0].status, Some(ResultStatus::Ok));
    assert_eq!(results[0].key("cache"), Some("cold"));
    assert!(results[0].body.contains("module @clean_a"));

    assert_eq!(results[1].status, Some(ResultStatus::Error));
    assert_eq!(results[1].key("cause"), Some("panic"));
    assert_eq!(results[1].key("quarantined"), Some("true"));

    assert_eq!(results[2].status, Some(ResultStatus::Ok));
    assert!(results[2].body.contains("module @clean_b"));

    assert_eq!(end.key("ok"), Some("2"));
    assert_eq!(end.key("errors"), Some("1"));
    assert_eq!(end.key("shed"), Some("0"));

    // Resubmitting the whole batch: cleans are warm and byte-identical,
    // the offender is fast-rejected from the ledger.
    write_frame(&mut s, &render_compile(&BatchOptions::default(), &batch)).unwrap();
    let (again, _) = read_batch(&mut s, 3);
    assert_eq!(again[0].key("cache"), Some("warm"));
    assert_eq!(
        again[0].body, results[0].body,
        "warm must be byte-identical"
    );
    assert_eq!(again[1].key("cause"), Some("quarantined"));
    assert_eq!(again[2].key("cache"), Some("warm"));
    assert_eq!(again[2].body, results[2].body);

    // Stats reflect all of it.
    let stats = roundtrip(&mut s, &render_simple(Verb::Stats));
    assert_eq!(stats.kind, "stats");
    let body = &stats.body;
    assert!(body.contains("contained 1\n"), "{body}");
    assert!(body.contains("quarantined 1\n"), "{body}");
    assert!(body.contains("quarantine-rejects 1\n"), "{body}");
    assert!(body.contains("cache-warm 2\n"), "{body}");
    assert!(body.contains("cache-cold 2\n"), "{body}");
    assert!(body.contains("cache-recovery "), "{body}");
    assert!(body.contains("stage-list-sched "), "{body}");

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_the_batch_suffix_with_retry_hints() {
    let (addr, handle) = start(ServerConfig {
        queue_max: 2,
        retry_after_ms: 125,
        ..ServerConfig::default()
    });
    let mut s = TcpStream::connect(&addr).unwrap();
    let batch: Vec<_> = (0..5)
        .map(|i| module(&format!("m{i}"), Poison::default()))
        .collect();
    write_frame(&mut s, &render_compile(&BatchOptions::default(), &batch)).unwrap();
    let (results, end) = read_batch(&mut s, 5);
    // Deterministic: the first `queue_max` run, the suffix sheds.
    for r in &results[..2] {
        assert_eq!(r.status, Some(ResultStatus::Ok), "{r:?}");
    }
    for r in &results[2..] {
        assert_eq!(r.status, Some(ResultStatus::Shed), "{r:?}");
        assert_eq!(r.key("retry-after-ms"), Some("125"));
    }
    assert_eq!(end.key("shed"), Some("3"));
    // The next batch is admitted again — slots were released.
    write_frame(
        &mut s,
        &render_compile(&BatchOptions::default(), &batch[..1]),
    )
    .unwrap();
    let (results, _) = read_batch(&mut s, 1);
    assert_eq!(results[0].status, Some(ResultStatus::Ok));
    shutdown(&addr, handle);
}

#[test]
fn protocol_errors_do_not_kill_the_connection() {
    let (addr, handle) = start(ServerConfig::default());
    let mut s = TcpStream::connect(&addr).unwrap();
    let f = roundtrip(&mut s, "tgc-serve v1 explode\n");
    assert_eq!(f.kind, "error");
    assert!(f.key("reason").unwrap().contains("unknown verb"));
    // Same connection still serves.
    assert_eq!(roundtrip(&mut s, &render_simple(Verb::Ping)).kind, "pong");
    shutdown(&addr, handle);
}

#[test]
fn drain_finishes_inflight_work_and_compacts_the_cache() {
    let dir = tmpdir("drain");
    let cache_path = dir.join("cache.tgc");
    let (addr, handle) = start(ServerConfig {
        engine: EngineConfig {
            cache_path: Some(cache_path.clone()),
            quarantine_dir: None,
            default_deadline_ms: None,
            chaos: None,
            cache_shards: 0,
        },
        ..ServerConfig::default()
    });
    let mut s = TcpStream::connect(&addr).unwrap();
    let batch = vec![
        module("d1", Poison::default()),
        module("d2", Poison::default()),
    ];
    write_frame(&mut s, &render_compile(&BatchOptions::default(), &batch)).unwrap();
    let (results, _) = read_batch(&mut s, 2);
    assert!(results.iter().all(|r| r.status == Some(ResultStatus::Ok)));
    shutdown(&addr, handle);
    // The drained cache file is freshly sealed and replayable: a new
    // server over it serves both modules warm.
    let (addr, handle) = start(ServerConfig {
        engine: EngineConfig {
            cache_path: Some(cache_path),
            quarantine_dir: None,
            default_deadline_ms: None,
            chaos: None,
            cache_shards: 0,
        },
        ..ServerConfig::default()
    });
    let mut s = TcpStream::connect(&addr).unwrap();
    write_frame(&mut s, &render_compile(&BatchOptions::default(), &batch)).unwrap();
    let (results2, _) = read_batch(&mut s, 2);
    for (a, b) in results.iter().zip(&results2) {
        assert_eq!(b.key("cache"), Some("warm"));
        assert_eq!(a.body, b.body, "restart must serve identical bytes");
    }
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_batches_echo_seq_ids_in_fifo_order() {
    let dir = tmpdir("pipeline");
    let (addr, handle) = start(ServerConfig {
        engine: EngineConfig {
            cache_path: Some(dir.join("cache.tgc")),
            quarantine_dir: None,
            default_deadline_ms: None,
            chaos: None,
            cache_shards: 0,
        },
        ..ServerConfig::default()
    });
    let mut s = TcpStream::connect(&addr).unwrap();
    // Fire off several sequence-tagged batches back to back without
    // reading anything: the server interleaves reading batch N + 1 with
    // scheduling batch N, but replies stay FIFO and carry the seq id.
    let opts = BatchOptions::default();
    for seq in 0..5u64 {
        let batch = vec![module(&format!("p{seq}"), Poison::default())];
        write_frame(&mut s, &render_compile_seq(&opts, Some(seq), &batch)).unwrap();
    }
    for seq in 0..5u64 {
        let (results, end) = read_batch(&mut s, 1);
        assert_eq!(results[0].key("seq"), Some(seq.to_string().as_str()));
        assert_eq!(end.key("seq"), Some(seq.to_string().as_str()));
        assert_eq!(end.key("ok"), Some("1"));
    }
    // A control verb interleaves cleanly on the same connection and the
    // pipelined batches landed in the latency histogram.
    let stats = roundtrip(&mut s, &render_simple(Verb::Stats));
    assert!(stats.body.contains("latency-count 5\n"), "{}", stats.body);
    assert!(stats.body.contains("latency-p99-us "), "{}", stats.body);
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn close_verb_drains_the_pipeline_and_ends_only_that_connection() {
    let (addr, handle) = start(ServerConfig::default());
    let mut s = TcpStream::connect(&addr).unwrap();
    let opts = BatchOptions::default();
    for seq in 0..3u64 {
        let batch = vec![module(&format!("c{seq}"), Poison::default())];
        write_frame(&mut s, &render_compile_seq(&opts, Some(seq), &batch)).unwrap();
    }
    // `close` right behind the batches: every reply must still arrive,
    // then the `closing` confirmation, then FIN.
    write_frame(&mut s, &render_simple(Verb::Close)).unwrap();
    for seq in 0..3u64 {
        let (_, end) = read_batch(&mut s, 1);
        assert_eq!(end.key("seq"), Some(seq.to_string().as_str()));
    }
    let closing = parse_response(&read_frame(&mut s).unwrap().unwrap()).unwrap();
    assert_eq!(closing.kind, "closing");
    assert_eq!(read_frame(&mut s).unwrap(), None, "server must FIN");
    // The server itself keeps running: a fresh connection works and the
    // close was counted.
    let mut s2 = TcpStream::connect(&addr).unwrap();
    let stats = roundtrip(&mut s2, &render_simple(Verb::Stats));
    assert!(stats.body.contains("closes 1\n"), "{}", stats.body);
    shutdown(&addr, handle);
}

#[test]
fn loadgen_drives_a_live_server_and_reports_latency() {
    let dir = tmpdir("loadgen");
    let (addr, handle) = start(ServerConfig {
        engine: EngineConfig {
            cache_path: Some(dir.join("cache.tgc")),
            quarantine_dir: None,
            default_deadline_ms: None,
            chaos: None,
            cache_shards: 0,
        },
        ..ServerConfig::default()
    });
    let report = treegion_serve::run_loadgen(&LoadgenConfig {
        addr: addr.clone(),
        connections: 2,
        pipeline_depth: 4,
        duration_ms: 300,
        seed: 7,
        batch_modules: 2,
        pool: 4,
        reconnect: false,
    })
    .unwrap();
    assert!(report.batches > 0);
    assert_eq!(report.modules, report.ok + report.errors + report.shed);
    assert_eq!(report.seq_mismatches, 0, "{report:?}");
    assert_eq!(report.conn_errors, 0, "{report:?}");
    assert!(report.req_per_sec() > 0.0);
    assert_eq!(report.latency.count, report.batches);
    let rendered = report.render();
    assert!(rendered.contains("latency-p999-us"), "{rendered}");
    // The server saw the same batch count and counted the two closes.
    let mut s = TcpStream::connect(&addr).unwrap();
    let stats = roundtrip(&mut s, &render_simple(Verb::Stats));
    assert!(stats.body.contains("closes 2\n"), "{}", stats.body);
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_request_deadline_answers_with_structured_error() {
    let dir = tmpdir("deadline");
    let (addr, handle) = start(ServerConfig {
        engine: EngineConfig {
            cache_path: None,
            quarantine_dir: Some(dir.join("quarantine")),
            default_deadline_ms: None,
            chaos: None,
            cache_shards: 0,
        },
        ..ServerConfig::default()
    });
    let mut s = TcpStream::connect(&addr).unwrap();
    let opts = BatchOptions {
        deadline_ms: Some(0), // trips at the first scheduler cycle check
        ..BatchOptions::default()
    };
    let batch = vec![module("late", Poison::default())];
    write_frame(&mut s, &render_compile(&opts, &batch)).unwrap();
    let (results, end) = read_batch(&mut s, 1);
    assert_eq!(results[0].status, Some(ResultStatus::Error), "{results:?}");
    let detail = results[0].key("detail").unwrap_or("");
    let cause = results[0].key("cause").unwrap_or("");
    assert!(
        cause == "deadline" || detail.contains("deadline"),
        "cause={cause} detail={detail}"
    );
    assert_eq!(end.key("errors"), Some("1"));
    let stats = roundtrip(&mut s, &render_simple(Verb::Stats));
    assert!(!stats.body.contains("\ndeadline 0\n"), "{}", stats.body);
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
