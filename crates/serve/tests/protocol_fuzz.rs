//! Protocol robustness: a seeded fuzzer feeding malformed, truncated,
//! oversized, and non-UTF-8 frames at both the pure parsers and a live
//! server, plus the socket-timeout exit paths (idle reaper, mid-frame
//! staller). The invariant everywhere: the server answers with a
//! structured error or drops the connection cleanly — it never panics,
//! never allocates past [`MAX_FRAME`], and never wedges a worker (a
//! fresh connection always still gets `pong`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use treegion_rng::StdRng;
use treegion_serve::{
    parse_request, parse_response, read_frame, render_compile_seq, render_simple, write_frame,
    BatchOptions, EngineConfig, ModuleRequest, Poison, Server, ServerConfig, Verb, MAX_FRAME,
};

fn tiny_module(name: &str) -> ModuleRequest {
    ModuleRequest {
        text: format!(
            "module @{name}\n\nfunc @f {{\n  bb0 (weight 1):\n    r0 = movi #1\n    ret r0\n}}\n"
        ),
        poison: Poison::default(),
    }
}

/// Reads one batch's replies and returns the `batch-end` frame.
fn read_to_batch_end(s: &mut TcpStream) -> treegion_serve::ResponseFrame {
    loop {
        let f = parse_response(&read_frame(s).unwrap().expect("hung up mid-batch")).unwrap();
        if f.kind == "batch-end" {
            return f;
        }
        assert!(f.kind == "result" || f.kind == "error", "{f:?}");
    }
}

fn start(config: ServerConfig) -> (String, std::thread::JoinHandle<Result<(), String>>) {
    let server = Server::bind(&config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn quick_server() -> (String, std::thread::JoinHandle<Result<(), String>>) {
    start(ServerConfig {
        engine: EngineConfig {
            cache_path: None,
            quarantine_dir: None,
            default_deadline_ms: None,
            chaos: None,
            cache_shards: 0,
        },
        // Short ticks so stall/reap paths fire within test time.
        read_timeout_ms: 50,
        write_timeout_ms: 1_000,
        idle_timeout_ms: 150,
        ..ServerConfig::default()
    })
}

fn connect(addr: &str) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    // The test must fail, not hang, if the server wedges.
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

/// The liveness probe: a brand-new connection still gets `pong`.
fn assert_alive(addr: &str) {
    let mut s = connect(addr);
    write_frame(&mut s, &render_simple(Verb::Ping)).unwrap();
    let f = parse_response(&read_frame(&mut s).unwrap().expect("server hung up")).unwrap();
    assert_eq!(f.kind, "pong");
}

/// Drains until the server closes the connection (or errors); panics if
/// it keeps talking for more than `max` frames.
fn assert_closed(mut s: TcpStream, max: usize) {
    let mut buf = [0u8; 4096];
    for _ in 0..max {
        match s.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return, // reset counts as closed
        }
    }
    panic!("server kept the connection alive past {max} reads");
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<Result<(), String>>) {
    let mut s = connect(addr);
    write_frame(&mut s, &render_simple(Verb::Shutdown)).unwrap();
    let f = parse_response(&read_frame(&mut s).unwrap().unwrap()).unwrap();
    assert_eq!(f.kind, "draining");
    handle.join().unwrap().unwrap();
}

fn stats_value(addr: &str, key: &str) -> u64 {
    let mut s = connect(addr);
    write_frame(&mut s, &render_simple(Verb::Stats)).unwrap();
    let f = parse_response(&read_frame(&mut s).unwrap().unwrap()).unwrap();
    assert_eq!(f.kind, "stats");
    f.body
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("stats body lacks `{key}`:\n{}", f.body))
        .parse()
        .unwrap()
}

#[test]
fn parsers_survive_seeded_garbage() {
    // Pure-parser fuzz: random bytes (lossy UTF-8) and seeded mutations
    // of a valid request must never panic — only `Ok` or `Err`.
    let valid = "tgc-serve v1 compile\nkind tree\nmachine 4u\n\nmodule @m\n\nfunc @f {\n  bb0 (weight 1):\n    ret\n}\n";
    let mut rng = StdRng::seed_from_u64(0xf00d);
    for round in 0..500 {
        let text: String = if round % 2 == 0 {
            let len = rng.gen_range(0usize..300);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
            String::from_utf8_lossy(&bytes).into_owned()
        } else {
            // Mutate the valid request: truncate, splice, flip chars.
            let mut t: Vec<char> = valid.chars().collect();
            for _ in 0..rng.gen_range(1usize..8) {
                match rng.gen_range(0u64..3) {
                    0 if !t.is_empty() => t.truncate(rng.gen_range(0usize..t.len())),
                    1 => {
                        let i = rng.gen_range(0usize..t.len().max(1));
                        t.insert(i.min(t.len()), rng.gen_range(0u64..128) as u8 as char);
                    }
                    _ if !t.is_empty() => {
                        let i = rng.gen_range(0usize..t.len());
                        t[i] = rng.gen_range(0u64..128) as u8 as char;
                    }
                    _ => {}
                }
            }
            t.into_iter().collect()
        };
        let _ = parse_request(&text);
        let _ = parse_response(&text);
    }
}

#[test]
fn live_server_survives_malformed_frames() {
    let (addr, handle) = quick_server();

    // Oversized length claim: refused before allocation, connection
    // dropped, server alive.
    let mut s = connect(&addr);
    s.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
    assert_closed(s, 4);
    assert_alive(&addr);

    // Truncated body: header promises 100 bytes, sender hangs up at 10.
    let mut s = connect(&addr);
    s.write_all(&100u32.to_be_bytes()).unwrap();
    s.write_all(b"0123456789").unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    assert_closed(s, 4);
    assert_alive(&addr);

    // Non-UTF-8 payload: dropped cleanly.
    let mut s = connect(&addr);
    s.write_all(&4u32.to_be_bytes()).unwrap();
    s.write_all(&[0xff, 0xfe, 0x80, 0x81]).unwrap();
    assert_closed(s, 4);
    assert_alive(&addr);

    // Zero-length flood: framing stays intact, so each empty payload is
    // answered with a structured `error` frame on the SAME connection —
    // bounded work per frame, no amplification, no wedge.
    let mut s = connect(&addr);
    for _ in 0..64 {
        s.write_all(&0u32.to_be_bytes()).unwrap();
    }
    for _ in 0..64 {
        let f = parse_response(&read_frame(&mut s).unwrap().expect("hung up mid-flood")).unwrap();
        assert_eq!(f.kind, "error");
    }
    write_frame(&mut s, &render_simple(Verb::Ping)).unwrap();
    let f = parse_response(&read_frame(&mut s).unwrap().unwrap()).unwrap();
    assert_eq!(f.kind, "pong", "connection must survive the flood");

    // Seeded random payloads in valid framing: every reply is a
    // structured frame or a clean close, and the server outlives all of
    // them.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let mut s = connect(&addr);
        let len = rng.gen_range(1usize..2048);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        let payload = String::from_utf8_lossy(&bytes).into_owned();
        if write_frame(&mut s, &payload).is_err() {
            continue;
        }
        // A clean close (Ok(None) / Err) is also acceptable.
        if let Ok(Some(reply)) = read_frame(&mut s) {
            let f = parse_response(&reply).expect("reply must be structured");
            assert!(f.kind == "error" || f.kind.starts_with("result"), "{f:?}");
        }
    }
    assert_alive(&addr);
    shutdown(&addr, handle);
}

#[test]
fn pipelined_framing_survives_interleaved_garbage() {
    // Keep-alive fuzz: valid seq-tagged batches interleaved with garbage
    // frames on ONE connection. Garbage gets structured `error` frames,
    // batches get their FIFO replies with the seq id echoed verbatim,
    // and the connection survives the whole mix.
    let (addr, handle) = quick_server();
    let mut s = connect(&addr);
    let opts = BatchOptions::default();
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let mut sent: Vec<u64> = Vec::new();
    for round in 0..12u64 {
        if round % 3 == 2 {
            // Garbage in valid framing between pipelined batches.
            let len = rng.gen_range(1usize..128);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..128) as u8).collect();
            write_frame(&mut s, &String::from_utf8_lossy(&bytes)).unwrap();
        } else {
            // Out-of-order, gappy seq ids: the server echoes, never
            // reorders or validates them.
            let seq = rng.gen_range(0u64..u64::MAX);
            let batch = vec![tiny_module(&format!("g{round}"))];
            write_frame(&mut s, &render_compile_seq(&opts, Some(seq), &batch)).unwrap();
            sent.push(seq);
        }
    }
    // Replies come back in submission order; `error` frames from the
    // garbage interleave but read_to_batch_end skips past them.
    for seq in &sent {
        let end = read_to_batch_end(&mut s);
        assert_eq!(end.key("seq"), Some(seq.to_string().as_str()));
    }
    assert_alive(&addr);
    shutdown(&addr, handle);
}

#[test]
fn truncated_pipelined_frame_still_answers_accepted_batches() {
    // A peer that pipelines two good batches, then dies mid-frame: the
    // accepted batches must still be answered before the drop — the
    // reader's exit drains the worker, it doesn't abandon it.
    let (addr, handle) = quick_server();
    let mut s = connect(&addr);
    let opts = BatchOptions::default();
    for seq in 0..2u64 {
        let batch = vec![tiny_module(&format!("t{seq}"))];
        write_frame(&mut s, &render_compile_seq(&opts, Some(seq), &batch)).unwrap();
    }
    // Header promises 64 bytes; deliver 3 and stall.
    s.write_all(&64u32.to_be_bytes()).unwrap();
    s.write_all(b"abc").unwrap();
    s.flush().unwrap();
    for seq in 0..2u64 {
        let end = read_to_batch_end(&mut s);
        assert_eq!(end.key("seq"), Some(seq.to_string().as_str()));
        assert_eq!(end.key("ok"), Some("1"));
    }
    assert_closed(s, 64);
    assert_alive(&addr);
    shutdown(&addr, handle);
}

#[test]
fn idle_connections_are_reaped_and_counted() {
    let (addr, handle) = quick_server();
    // An idle connection: no bytes at all. With a 50ms tick and a 150ms
    // idle budget the reaper fires within a few ticks.
    let s = connect(&addr);
    assert_closed(s, 64);
    assert!(
        stats_value(&addr, "idle-reaped") >= 1,
        "reap must be counted"
    );
    // The reaper does not touch connections that keep talking.
    let mut chatty = connect(&addr);
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(60));
        write_frame(&mut chatty, &render_simple(Verb::Ping)).unwrap();
        let f = parse_response(&read_frame(&mut chatty).unwrap().unwrap()).unwrap();
        assert_eq!(f.kind, "pong");
    }
    shutdown(&addr, handle);
}

#[test]
fn mid_frame_stall_drops_the_connection() {
    let (addr, handle) = quick_server();
    // Two header bytes, then silence: the peer started a frame and
    // stalled. The handler must drop it after one read tick — not wait
    // out the idle budget, not hang forever.
    let mut s = connect(&addr);
    s.write_all(&[0u8, 0u8]).unwrap();
    s.flush().unwrap();
    assert_closed(s, 64);
    assert!(
        stats_value(&addr, "read-stalls") >= 1,
        "stall must be counted"
    );
    assert_alive(&addr);
    shutdown(&addr, handle);
}
