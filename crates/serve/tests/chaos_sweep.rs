//! Crash-point recovery fuzzing: record the durable-operation journal of
//! a clean run (serve cache + quarantine ledger + eval checkpoint), then
//! for every prefix of that journal materialize the simulated post-crash
//! filesystem and assert the recovery invariants:
//!
//! - the engine reopens without panicking and never serves corrupted
//!   bytes (every served payload is byte-identical to the clean run's),
//! - the quarantine ledger rebuilds to a subset of the real offenders,
//! - a published manifest is always complete (the fsync-before-rename
//!   ordering), and resume sees a subset of the recorded cells.
//!
//! The durability sites are enumerated programmatically: the journal IS
//! the enumeration (every shimmed create/write/sync/rename lands in it),
//! and the sweep iterates `0..=journal.len()`, so a new durable call
//! site added anywhere behind the shim is swept automatically.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use treegion_chaos::{replay, FaultPlan, Op};
use treegion_eval::{cell_path, CellRecord, CellStatus, RunManifest};
use treegion_serve::{Engine, EngineConfig, ModuleReply, ModuleRequest, Poison};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tgc-chaos-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn clean_module(name: &str) -> ModuleRequest {
    ModuleRequest {
        text: format!(
            "module @{name}\n\nfunc @f {{\n  bb0 (weight 100):\n    r0 = movi #1\n    r1 = movi #2\n    r2 = add r0, r1\n    ret r2\n}}\n"
        ),
        poison: Poison::default(),
    }
}

fn poisoned_module(name: &str) -> ModuleRequest {
    let mut m = clean_module(name);
    m.poison.panic_hard = true;
    m
}

fn engine(root: &Path, chaos: treegion_chaos::Chaos) -> Engine {
    Engine::open(&EngineConfig {
        cache_path: Some(root.join("cache.tgc")),
        quarantine_dir: Some(root.join("quarantine")),
        default_deadline_ms: None,
        chaos,
        cache_shards: 0,
    })
    .unwrap()
}

fn manifest() -> RunManifest {
    RunManifest {
        config_hash: 0x5eed,
        git_rev: "testrev".into(),
        fault_seed: None,
        cells: vec![CellRecord {
            name: "table1".into(),
            status: CellStatus::Done,
            digest: 0x7,
            attempts: 1,
        }],
    }
}

/// The recorded scenario: one cold compile (cache put), one warm hit,
/// one hard panic (quarantine write), a drain checkpoint (cache
/// compaction), then an eval-style checkpoint (durable cell file + the
/// manifest's create → write → fsync → rename). Returns the served
/// payload of the clean module.
fn scenario(root: &Path, chaos: treegion_chaos::Chaos) -> String {
    let eng = engine(root, chaos.clone());
    let opts = Default::default();
    let cold = match eng.compile_module(&opts, &clean_module("sweep")) {
        ModuleReply::Ok { payload, .. } => payload,
        other => panic!("cold run failed: {other:?}"),
    };
    match eng.compile_module(&opts, &clean_module("sweep")) {
        ModuleReply::Ok { warm, payload } => {
            assert!(warm);
            assert_eq!(payload, cold);
        }
        other => panic!("warm run failed: {other:?}"),
    }
    match eng.compile_module(&opts, &poisoned_module("boom")) {
        ModuleReply::Err { quarantined, .. } => assert!(quarantined),
        other => panic!("poisoned module must error: {other:?}"),
    }
    eng.checkpoint().unwrap();
    // The eval checkpoint sites, through the same shim the harness uses:
    // the cell body is fsynced before the manifest records it done.
    let ckpt = root.join("ckpt");
    let cells = ckpt.join("cells");
    treegion_chaos::shim::create_dir_all(&cells, &chaos, "eval.cell").unwrap();
    treegion_chaos::shim::write_durable(
        &cell_path(&ckpt, "table1"),
        b"cell table1\nspeedup 1.23\n",
        &chaos,
        "eval.cell",
    )
    .unwrap();
    manifest().save_chaos(&ckpt, &chaos).unwrap();
    cold
}

#[test]
fn crash_point_sweep_recovers_at_every_prefix() {
    let root = tmpdir("rec");
    let plan = Arc::new(FaultPlan::from_seed(11));
    let clean_payload = scenario(&root, Some(Arc::clone(&plan)));
    let journal = plan.journal();
    assert!(
        journal.len() >= 12,
        "scenario should journal a rich op sequence, got {}",
        journal.len()
    );

    // Programmatic coverage: the journal must span every durable
    // subsystem this sweep claims to protect. A site prefix missing
    // here means a subsystem silently stopped going through the shim.
    let subsystems: BTreeSet<&str> = journal
        .iter()
        .filter_map(|r| r.site.split('.').next())
        .collect();
    for required in ["diskcache", "serve", "checkpoint", "eval"] {
        assert!(
            subsystems.contains(required),
            "journal covers {subsystems:?}, missing `{required}`"
        );
    }

    // One simulated crash at every journal prefix (k = journal.len() is
    // the no-crash control).
    for k in 0..=journal.len() {
        let image = replay::materialize(&journal, k, 0xc4a5 + k as u64);
        let fresh = tmpdir(&format!("rec-k{k}"));
        image.materialize_under(&root, &fresh).unwrap();

        // Recovery must never panic or fail, whatever survived.
        let eng = engine(&fresh, None);
        // No corrupted bytes are ever served: warm or cold, the payload
        // matches the clean run exactly.
        match eng.compile_module(&Default::default(), &clean_module("sweep")) {
            ModuleReply::Ok { payload, .. } => assert_eq!(
                payload, clean_payload,
                "crash at op {k}: served payload diverged from the clean run"
            ),
            other => panic!("crash at op {k}: recovery compile failed: {other:?}"),
        }
        // The ledger rebuilds to a subset of the real offenders (the one
        // quarantined digest), never an invented one.
        assert!(
            eng.quarantined_count() <= 1,
            "crash at op {k}: ledger invented offenders"
        );
        // fsync-before-rename makes a published manifest complete: if
        // manifest.txt exists at all, it parses strictly and resume sees
        // a subset of the recorded cells.
        let mpath = fresh.join("ckpt").join(treegion_eval::MANIFEST_FILE);
        if mpath.exists() {
            let (m, _rec) = RunManifest::load_recovering(&mpath)
                .unwrap_or_else(|e| panic!("crash at op {k}: torn manifest published: {e}"));
            assert!(m.cells.len() <= 1, "crash at op {k}: invented cells");
            for c in &m.cells {
                assert_eq!(c.name, "table1");
            }
        }
        let _ = std::fs::remove_dir_all(&fresh);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn manifest_save_orders_sync_before_rename() {
    let root = tmpdir("order");
    let plan = Arc::new(FaultPlan::from_seed(0));
    let _ = scenario(&root, Some(Arc::clone(&plan)));
    // The guard for the fsync-before-rename fix: within the
    // checkpoint.save site, the tmp file's bytes are synced before the
    // rename publishes them under the real name.
    let journal = plan.journal();
    let ops: Vec<&Op> = journal
        .iter()
        .filter(|r| r.site == "checkpoint.save")
        .map(|r| &r.op)
        .collect();
    let sync_idx = ops.iter().position(
        |o| matches!(o, Op::Sync { path } if path.file_name().is_some_and(|n| n == ".manifest.tmp")),
    );
    let rename_idx = ops.iter().position(|o| matches!(o, Op::Rename { .. }));
    let (s, r) = (
        sync_idx.expect("manifest tmp must be fsynced"),
        rename_idx.expect("manifest must be renamed into place"),
    );
    assert!(s < r, "manifest fsync must precede the publishing rename");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn same_seed_same_faults_same_outcome() {
    // Determinism: two runs of the same scenario under the same plan
    // spec and seed journal the same operation sequence (sites + op
    // labels + byte counts) and serve the same bytes.
    let run = |tag: &str| {
        let root = tmpdir(tag);
        let plan = Arc::new(FaultPlan::parse("record", 42).unwrap());
        let payload = scenario(&root, Some(Arc::clone(&plan)));
        let trace: Vec<String> = plan
            .journal()
            .iter()
            .map(|r| {
                let size = match &r.op {
                    Op::Write { bytes, .. } => bytes.len(),
                    _ => 0,
                };
                format!("{} {} {}", r.site, r.op.label(), size)
            })
            .collect();
        let _ = std::fs::remove_dir_all(&root);
        (payload, trace, plan.snapshot())
    };
    let (p1, t1, s1) = run("det-a");
    let (p2, t2, s2) = run("det-b");
    assert_eq!(p1, p2);
    assert_eq!(t1, t2);
    assert_eq!(s1.ops, s2.ops);
    assert_eq!(s1.injected_errors, 0);
    assert_eq!(s2.injected_errors, 0);
}

#[test]
fn unarmed_run_is_byte_identical_to_record_mode() {
    // The differential guarantee: an armed record-only plan changes
    // nothing observable — served bytes, the durable cache file, the
    // quarantine directory, and the manifest all match an unarmed run.
    let observe = |root: &Path, chaos: treegion_chaos::Chaos| {
        let payload = scenario(root, chaos);
        // Per-shard byte identity: the striped store keys shards by
        // digest, so the same workload lands in the same files.
        let cache: Vec<Vec<u8>> = (0..treegion_serve::DEFAULT_CACHE_SHARDS)
            .map(|k| std::fs::read(treegion_eval::shard_path(&root.join("cache.tgc"), k)).unwrap())
            .collect();
        let mut qfiles: Vec<String> = std::fs::read_dir(root.join("quarantine"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        qfiles.sort();
        let manifest =
            std::fs::read_to_string(root.join("ckpt").join(treegion_eval::MANIFEST_FILE)).unwrap();
        (payload, cache, qfiles, manifest)
    };
    let off_root = tmpdir("diff-off");
    let on_root = tmpdir("diff-on");
    let off = observe(&off_root, None);
    let on = observe(&on_root, Some(Arc::new(FaultPlan::from_seed(999))));
    assert_eq!(off.0, on.0, "served payload must not change");
    assert_eq!(off.1, on.1, "cache bytes must not change");
    assert_eq!(off.2, on.2, "quarantine contents must not change");
    assert_eq!(off.3, on.3, "manifest must not change");
    let _ = std::fs::remove_dir_all(&off_root);
    let _ = std::fs::remove_dir_all(&on_root);
}

#[test]
fn injected_errors_surface_without_wedging_the_engine() {
    // err-every faults fail operations loudly (counted in the snapshot)
    // but the engine keeps answering — a failed cache write degrades the
    // put, never the reply.
    // Calibrate the phase past `Engine::open`'s own durable ops (which
    // scale with the shard count): an injected fault *during* open
    // fails the open loudly — also correct, but not what this test is
    // about.
    let probe_root = tmpdir("inject-probe");
    let probe = Arc::new(FaultPlan::parse("record", 0).unwrap());
    let _ = engine(&probe_root, Some(Arc::clone(&probe)));
    let open_ops = probe.snapshot().ops;
    let _ = std::fs::remove_dir_all(&probe_root);
    // First fault at op index open_ops + 2: (idx + seed) % n == 0.
    let n = open_ops + 5;
    let seed = n - (open_ops + 2) % n;
    let root = tmpdir("inject");
    let plan = Arc::new(FaultPlan::parse(&format!("err-every:{n}"), seed).unwrap());
    let eng = engine(&root, Some(Arc::clone(&plan)));
    let opts = Default::default();
    for i in 0..6 {
        match eng.compile_module(&opts, &clean_module(&format!("m{i}"))) {
            ModuleReply::Ok { .. } | ModuleReply::Err { .. } => {}
            other => panic!("engine wedged: {other:?}"),
        }
    }
    let snap = plan.snapshot();
    assert!(snap.ops > 0, "chaos layer saw no ops");
    assert!(
        snap.injected_errors > 0,
        "err-every:{n} injected nothing over {} ops",
        snap.ops
    );
    let _ = std::fs::remove_dir_all(&root);
}
