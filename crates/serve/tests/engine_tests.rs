//! Engine-level fault-tolerance tests: quarantine round-trips, restart
//! dedup, warm/cold byte-identity, poison hygiene, deadline accounting.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use treegion_serve::{
    parse_quarantine, Admission, BatchOptions, Engine, EngineConfig, ModuleReply, ModuleRequest,
    Poison,
};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tgc-serve-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn clean_module(name: &str) -> ModuleRequest {
    ModuleRequest {
        text: format!(
            "module @{name}\n\nfunc @f {{\n  bb0 (weight 100):\n    r0 = movi #1\n    r1 = movi #2\n    r2 = add r0, r1\n    ret r2\n}}\n"
        ),
        poison: Poison::default(),
    }
}

// A serve-layer panic: escapes the pipeline's own fallback containment,
// so the per-request `catch_unwind` and quarantine must handle it.
fn poisoned_module(name: &str) -> ModuleRequest {
    let mut m = clean_module(name);
    m.poison.panic_hard = true;
    m
}

fn engine(cache: Option<PathBuf>, qdir: Option<PathBuf>) -> Engine {
    Engine::open(&EngineConfig {
        cache_path: cache,
        quarantine_dir: qdir,
        default_deadline_ms: None,
        chaos: None,
        cache_shards: 0,
    })
    .unwrap()
}

#[test]
fn warm_hit_is_byte_identical_to_cold_run() {
    let dir = tmpdir("warm");
    let eng = engine(Some(dir.join("cache.tgc")), None);
    let opts = BatchOptions::default();
    let m = clean_module("warmcold");
    let cold = match eng.compile_module(&opts, &m) {
        ModuleReply::Ok { warm, payload } => {
            assert!(!warm);
            payload
        }
        other => panic!("cold run failed: {other:?}"),
    };
    let warm = match eng.compile_module(&opts, &m) {
        ModuleReply::Ok { warm, payload } => {
            assert!(warm, "second request must hit the cache");
            payload
        }
        other => panic!("warm run failed: {other:?}"),
    };
    assert_eq!(cold, warm, "warm payload must be byte-identical");
    // A restarted engine over the same cache file serves the same bytes.
    let eng2 = engine(Some(dir.join("cache.tgc")), None);
    match eng2.compile_module(&opts, &m) {
        ModuleReply::Ok { warm, payload } => {
            assert!(warm, "restart must recover the cache");
            assert_eq!(payload, cold);
        }
        other => panic!("post-restart run failed: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_config_is_a_different_cache_key() {
    let dir = tmpdir("key");
    let eng = engine(Some(dir.join("cache.tgc")), None);
    let m = clean_module("keyed");
    let opts = BatchOptions::default();
    assert!(matches!(
        eng.compile_module(&opts, &m),
        ModuleReply::Ok { warm: false, .. }
    ));
    let wider = BatchOptions {
        machine: treegion_machine::MachineModel::model_8u(),
        ..BatchOptions::default()
    };
    // Same module, different machine: must be a cold miss, not a stale hit.
    assert!(matches!(
        eng.compile_module(&wider, &m),
        ModuleReply::Ok { warm: false, .. }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_runs_never_touch_the_cache() {
    let dir = tmpdir("poison-cache");
    let eng = engine(Some(dir.join("cache.tgc")), None);
    let opts = BatchOptions::default();
    let mut m = clean_module("seeded");
    // An out-of-range panic region never fires, so the run succeeds —
    // but the request is still poisoned, so the cache must stay cold in
    // both directions (no read, no write).
    m.poison.panic_region = Some(999);
    assert!(matches!(
        eng.compile_module(&opts, &m),
        ModuleReply::Ok { warm: false, .. }
    ));
    assert!(matches!(
        eng.compile_module(&opts, &m),
        ModuleReply::Ok { warm: false, .. }
    ));
    // The unpoisoned request sees an empty cache: one cold run.
    let clean = clean_module("seeded");
    assert!(matches!(
        eng.compile_module(&opts, &clean),
        ModuleReply::Ok { warm: false, .. }
    ));
    assert!(matches!(
        eng.compile_module(&opts, &clean),
        ModuleReply::Ok { warm: true, .. }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_replays_to_the_identical_containment_cause() {
    let qdir = tmpdir("replay");
    let eng = engine(None, Some(qdir.clone()));
    let opts = BatchOptions::default();
    let m = poisoned_module("crasher");
    let (cause1, detail1) = match eng.compile_module(&opts, &m) {
        ModuleReply::Err {
            cause,
            detail,
            quarantined,
        } => {
            assert!(quarantined, "a contained panic must be quarantined");
            (cause, detail)
        }
        other => panic!("poisoned module must fail: {other:?}"),
    };
    assert_eq!(cause1, "panic");
    assert_eq!(eng.quarantined_count(), 1);

    // The ledger file is a valid, replayable repro: module text plus the
    // poison knobs that crashed it.
    let files: Vec<_> = std::fs::read_dir(&qdir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(files.len(), 1, "{files:?}");
    let file_text = std::fs::read_to_string(&files[0]).unwrap();
    let (text, poison, recorded_cause) = parse_quarantine(&file_text);
    assert_eq!(text, m.text, "module text must survive byte-identically");
    assert_eq!(poison, m.poison);
    assert_eq!(recorded_cause, "panic");
    // The whole file (header included) still parses as tir.
    treegion_ir::parse_module(&file_text).expect("quarantine file must stay parseable");

    // Replaying through a *fresh* engine (empty ledger, so no fast
    // reject) reproduces the identical containment cause and detail.
    let replay_engine = engine(None, Some(tmpdir("replay-fresh")));
    match replay_engine.compile_module(
        &opts,
        &ModuleRequest {
            text: text.clone(),
            poison,
        },
    ) {
        ModuleReply::Err { cause, detail, .. } => {
            assert_eq!(cause, cause1);
            assert_eq!(detail, detail1, "replay must reproduce the event");
        }
        other => panic!("replay must crash the same way: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&qdir);
}

#[test]
fn quarantine_dedup_holds_across_restarts() {
    let qdir = tmpdir("dedup");
    let opts = BatchOptions::default();
    let m = poisoned_module("repeat");
    {
        let eng = engine(None, Some(qdir.clone()));
        assert!(matches!(
            eng.compile_module(&opts, &m),
            ModuleReply::Err {
                quarantined: true,
                ..
            }
        ));
        assert_eq!(eng.stats.contained.load(Ordering::Relaxed), 1);
        // Resubmission within the same process: fast-rejected, not re-run.
        match eng.compile_module(&opts, &m) {
            ModuleReply::Err { cause, .. } => assert_eq!(cause, "quarantined"),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            eng.stats.contained.load(Ordering::Relaxed),
            1,
            "fast reject must not re-run the module"
        );
        assert_eq!(eng.stats.quarantine_rejects.load(Ordering::Relaxed), 1);
    }
    // A restarted engine replays the ledger from the directory alone.
    let eng = engine(None, Some(qdir.clone()));
    assert_eq!(eng.quarantined_count(), 1);
    match eng.compile_module(&opts, &m) {
        ModuleReply::Err {
            cause, quarantined, ..
        } => {
            assert_eq!(cause, "quarantined");
            assert!(quarantined);
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(
        eng.stats.contained.load(Ordering::Relaxed),
        0,
        "the restarted engine never ran the offender"
    );
    let _ = std::fs::remove_dir_all(&qdir);
}

#[test]
fn ledger_rebuild_skips_hostile_directory_contents() {
    // The quarantine directory is operator-writable: a restart must
    // rebuild the ledger from whatever it finds without panicking,
    // skipping (and counting) everything that is not a ledger file —
    // while still deduplicating the real offender it shares the
    // directory with.
    let qdir = tmpdir("hostile");
    let opts = BatchOptions::default();
    let m = poisoned_module("realoffender");
    {
        let eng = engine(None, Some(qdir.clone()));
        assert!(matches!(
            eng.compile_module(&opts, &m),
            ModuleReply::Err {
                quarantined: true,
                ..
            }
        ));
    }
    // Hostile neighbors: foreign names, empty digest, bad hex, an
    // overlong digest, a stray extension, and a *directory* wearing a
    // perfectly valid ledger name.
    std::fs::write(qdir.join("README.txt"), "ops notes").unwrap();
    std::fs::write(qdir.join("serve-.tir"), "").unwrap();
    std::fs::write(qdir.join("serve-zzzz.tir"), "not hex").unwrap();
    std::fs::write(qdir.join("serve-ffffffffffffffff0.tir"), "too long").unwrap();
    std::fs::write(qdir.join("serve-1234.dat"), "wrong suffix").unwrap();
    std::fs::create_dir(qdir.join("serve-000000000000000a.tir")).unwrap();

    let eng = engine(None, Some(qdir.clone()));
    assert_eq!(
        eng.quarantined_count(),
        1,
        "only the real offender belongs on the ledger"
    );
    assert_eq!(
        eng.stats.ledger_skipped.load(Ordering::Relaxed),
        6,
        "every hostile entry is skipped and counted"
    );
    // The real offender is still fast-rejected without re-running.
    match eng.compile_module(&opts, &m) {
        ModuleReply::Err {
            cause, quarantined, ..
        } => {
            assert_eq!(cause, "quarantined");
            assert!(quarantined);
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(eng.stats.contained.load(Ordering::Relaxed), 0);
    // A clean module still schedules in the hostile neighborhood.
    assert!(matches!(
        eng.compile_module(&opts, &clean_module("fine")),
        ModuleReply::Ok { .. }
    ));
    let _ = std::fs::remove_dir_all(&qdir);
}

#[test]
fn batch_mixes_containment_and_success() {
    let qdir = tmpdir("mixed");
    let eng = engine(None, Some(qdir.clone()));
    let admission = Admission::new(16, 50);
    let batch = vec![
        clean_module("good1"),
        poisoned_module("bad"),
        clean_module("good2"),
    ];
    let replies = eng.process_batch(&admission, &BatchOptions::default(), &batch);
    assert_eq!(replies.len(), 3);
    assert!(
        matches!(replies[0], ModuleReply::Ok { .. }),
        "{:?}",
        replies[0]
    );
    assert!(
        matches!(
            replies[1],
            ModuleReply::Err {
                quarantined: true,
                ..
            }
        ),
        "{:?}",
        replies[1]
    );
    assert!(
        matches!(replies[2], ModuleReply::Ok { .. }),
        "{:?}",
        replies[2]
    );
    assert_eq!(admission.inflight(), 0, "permits must all be released");
    let _ = std::fs::remove_dir_all(&qdir);
}

#[test]
fn shedding_is_deterministic_and_counted() {
    let eng = engine(None, None);
    let admission = Admission::new(2, 75);
    let batch = vec![
        clean_module("s1"),
        clean_module("s2"),
        clean_module("s3"),
        clean_module("s4"),
    ];
    let replies = eng.process_batch(&admission, &BatchOptions::default(), &batch);
    // Slots are taken in batch order: the first two run, the rest shed.
    assert!(matches!(replies[0], ModuleReply::Ok { .. }));
    assert!(matches!(replies[1], ModuleReply::Ok { .. }));
    assert_eq!(replies[2], ModuleReply::Shed { retry_after_ms: 75 });
    assert_eq!(replies[3], ModuleReply::Shed { retry_after_ms: 75 });
    assert_eq!(eng.stats.shed.load(Ordering::Relaxed), 2);
    assert_eq!(admission.inflight(), 0);
    // The next batch admits again — shedding is load, not state.
    let replies = eng.process_batch(&admission, &BatchOptions::default(), &batch[..2]);
    assert!(replies.iter().all(|r| matches!(r, ModuleReply::Ok { .. })));
}

#[test]
fn zero_deadline_is_a_counted_contained_failure() {
    let qdir = tmpdir("deadline");
    let eng = engine(None, Some(qdir.clone()));
    let opts = BatchOptions {
        deadline_ms: Some(0),
        ..BatchOptions::default()
    };
    // A zero soft deadline trips at every fallback rung, so the pipeline
    // reports a terminal failure whose chain names the deadline. The
    // module is answered with a structured error but NOT quarantined:
    // a deadline miss is a property of the request's budget, not of the
    // module, and the same text must stay servable under a roomier one.
    match eng.compile_module(&opts, &clean_module("late")) {
        ModuleReply::Err {
            cause,
            detail,
            quarantined,
        } => {
            assert!(
                cause == "deadline" || detail.contains("deadline"),
                "cause={cause} detail={detail}"
            );
            assert!(!quarantined, "soft-deadline misses must stay retryable");
        }
        other => panic!("zero deadline cannot succeed: {other:?}"),
    }
    assert!(eng.stats.deadline.load(Ordering::Relaxed) >= 1);
    assert_eq!(eng.stats.contained.load(Ordering::Relaxed), 1);
    assert_eq!(eng.quarantined_count(), 0);
    // The identical module under an unlimited budget schedules cleanly.
    assert!(matches!(
        eng.compile_module(&BatchOptions::default(), &clean_module("late")),
        ModuleReply::Ok { .. }
    ));
    let _ = std::fs::remove_dir_all(&qdir);
}

#[test]
fn pipeline_level_panic_recovers_without_quarantine() {
    // `!panic-region` is contained by the pipeline's own fallback chain:
    // the serve layer sees a degraded success, not a crash.
    let eng = engine(None, None);
    let mut m = clean_module("recovering");
    m.poison.panic_region = Some(0);
    match eng.compile_module(&BatchOptions::default(), &m) {
        ModuleReply::Ok { warm, payload } => {
            assert!(!warm);
            assert!(
                !payload.contains("events 0"),
                "degradation visible: {payload}"
            );
        }
        other => panic!("pipeline containment must recover: {other:?}"),
    }
    assert_eq!(eng.quarantined_count(), 0);
    assert_eq!(eng.stats.contained.load(Ordering::Relaxed), 0);
}

#[test]
fn malformed_tir_is_a_bad_request_not_a_quarantine() {
    let qdir = tmpdir("badreq");
    let eng = engine(None, Some(qdir.clone()));
    let m = ModuleRequest {
        text: "this is not tir at all\n".into(),
        poison: Poison::default(),
    };
    match eng.compile_module(&BatchOptions::default(), &m) {
        ModuleReply::Err {
            cause, quarantined, ..
        } => {
            assert_eq!(cause, "bad-request");
            assert!(!quarantined, "client bugs are not service crashes");
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(eng.quarantined_count(), 0);
    assert_eq!(eng.stats.contained.load(Ordering::Relaxed), 0);
    let _ = std::fs::remove_dir_all(&qdir);
}

#[test]
fn fault_seed_poison_never_kills_the_engine_or_warms_the_cache() {
    // `!fault-seed` arms the pipeline-level fault campaign. Those faults
    // are contained by the robust ladder (PR 1/PR 3): most seeds recover
    // to a degraded-but-correct schedule, and a seed that defeats every
    // fallback rung answers a structured error. Either way the engine
    // survives, keeps serving, and the poisoned run never touches the
    // cache in either direction.
    let dir = tmpdir("fault-seed");
    let eng = engine(Some(dir.join("cache.tgc")), Some(dir.join("q")));
    let opts = BatchOptions::default();
    for seed in [1u64, 7, 23, 99, 1234] {
        // Per-seed module text: if a seed ever defeats every fallback
        // rung and gets quarantined, only its own digest is ledgered.
        let mut m = clean_module(&format!("seeded{seed}"));
        m.poison.fault_seed = Some(seed);
        match eng.compile_module(&opts, &m) {
            ModuleReply::Ok { warm, .. } => assert!(!warm, "seed {seed} must not read cache"),
            ModuleReply::Err { cause, .. } => {
                assert_ne!(cause, "bad-request", "seed {seed} input is valid tir")
            }
            shed @ ModuleReply::Shed { .. } => panic!("seed {seed}: {shed:?}"),
        }
    }
    // The engine still schedules clean traffic, and the cache was never
    // warmed by any of the seeded runs (the unpoisoned text is new to
    // every tier: one cold run, then warm).
    let clean = clean_module("seeded1");
    assert!(matches!(
        eng.compile_module(&opts, &clean),
        ModuleReply::Ok { warm: false, .. }
    ));
    assert!(matches!(
        eng.compile_module(&opts, &clean),
        ModuleReply::Ok { warm: true, .. }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
