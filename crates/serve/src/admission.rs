//! Bounded admission with load-shedding backpressure.
//!
//! The daemon must not grow memory without bound under overload: every
//! module of every in-flight batch holds one admission slot, and once
//! the high-water mark is reached further modules are **shed** — the
//! client gets a structured `shed` result with a retry hint instead of
//! the request silently queueing. Shedding is deterministic: slots are
//! taken in batch order at admission time (before the parallel fan-out),
//! so the same overload always sheds the same suffix of a batch.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct Inner {
    inflight: AtomicUsize,
    high_water: usize,
    shed: AtomicU64,
    admitted: AtomicU64,
    retry_after_ms: u64,
}

/// The admission gate, shared by every connection handler.
#[derive(Clone)]
pub struct Admission {
    inner: Arc<Inner>,
}

/// An RAII admission slot: dropping it releases the slot.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<Inner>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.inner.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Admission {
    /// A gate admitting at most `high_water` modules at once;
    /// `retry_after_ms` is the hint shed results carry.
    pub fn new(high_water: usize, retry_after_ms: u64) -> Self {
        Admission {
            inner: Arc::new(Inner {
                inflight: AtomicUsize::new(0),
                high_water: high_water.max(1),
                shed: AtomicU64::new(0),
                admitted: AtomicU64::new(0),
                retry_after_ms,
            }),
        }
    }

    /// Tries to take one slot. `Err(retry_after_ms)` when the gate is at
    /// its high-water mark (the shed counter is bumped).
    ///
    /// # Errors
    ///
    /// The error value is the retry hint in milliseconds.
    pub fn try_admit(&self) -> Result<Permit, u64> {
        let mut cur = self.inner.inflight.load(Ordering::Acquire);
        loop {
            if cur >= self.inner.high_water {
                self.inner.shed.fetch_add(1, Ordering::Relaxed);
                return Err(self.inner.retry_after_ms);
            }
            match self.inner.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.inner.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(Permit {
                        inner: Arc::clone(&self.inner),
                    });
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Modules currently holding slots.
    pub fn inflight(&self) -> usize {
        self.inner.inflight.load(Ordering::Acquire)
    }

    /// Total modules shed since startup.
    pub fn shed(&self) -> u64 {
        self.inner.shed.load(Ordering::Relaxed)
    }

    /// Total modules admitted since startup.
    pub fn admitted(&self) -> u64 {
        self.inner.admitted.load(Ordering::Relaxed)
    }

    /// The configured high-water mark.
    pub fn high_water(&self) -> usize {
        self.inner.high_water
    }

    /// The retry hint shed results carry, in milliseconds.
    pub fn retry_after_ms(&self) -> u64 {
        self.inner.retry_after_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_deterministically_past_high_water() {
        let gate = Admission::new(2, 50);
        let a = gate.try_admit().unwrap();
        let b = gate.try_admit().unwrap();
        assert_eq!(gate.inflight(), 2);
        // Third module of the "batch" sheds with the retry hint.
        assert_eq!(gate.try_admit().unwrap_err(), 50);
        assert_eq!(gate.try_admit().unwrap_err(), 50);
        assert_eq!(gate.shed(), 2);
        drop(a);
        // A released slot admits again.
        let c = gate.try_admit().unwrap();
        assert_eq!(gate.inflight(), 2);
        drop((b, c));
        assert_eq!(gate.inflight(), 0);
        assert_eq!(gate.admitted(), 3);
    }

    #[test]
    fn zero_high_water_is_clamped_to_one() {
        let gate = Admission::new(0, 10);
        assert_eq!(gate.high_water(), 1);
        let _p = gate.try_admit().unwrap();
        assert!(gate.try_admit().is_err());
    }
}
