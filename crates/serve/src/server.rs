//! The TCP front end: accept loop, per-connection pipelined handlers,
//! graceful drain.
//!
//! The accept loop is non-blocking with a short poll so the drain flag
//! is observed promptly; each connection gets a blocking handler thread
//! (connections are few — this is a build-farm service, not a web
//! server). `shutdown` flips the drain flag: the loop stops accepting,
//! waits for every admission slot to free (in-flight batches finish and
//! their replies go out), force-closes idle connections to unblock
//! their readers, joins every handler, and checkpoints the durable
//! cache. Crash safety does **not** depend on the graceful path — every
//! cache write is already fsynced — the checkpoint merely compacts.
//!
//! ## The connection state machine
//!
//! Each connection runs **two** threads so the socket read of batch
//! N + 1 overlaps the scheduling of batch N:
//!
//! ```text
//!  reader thread                 worker thread
//!  ─────────────                 ─────────────
//!  read_frame_event ──┐
//!  parse, dispatch    │ bounded channel (pipeline_depth)
//!  compile → enqueue ─┴───────▶  process_batch on the par pool
//!  control verbs answer          result/batch-end frames (seq echoed)
//!  via the shared writer  ◀────  via the shared writer
//! ```
//!
//! The reader keeps the PR 8 per-frame semantics (idle-budget ticks at
//! frame boundaries, immediate drop on a mid-frame stall) and handles
//! `ping`/`stats`/`shutdown`/`close` inline; `compile` batches enqueue
//! into a bounded channel the single worker drains FIFO — so one
//! connection's replies always arrive in submission order, while the
//! enqueue itself is the natural backpressure (a sender more than
//! `pipeline_depth` batches ahead blocks in TCP). Every frame write
//! goes through one mutex-guarded socket clone, keeping frames atomic
//! when a control reply interleaves with streamed results. The idle
//! reaper only ticks while **no batch is in flight** — a silent client
//! waiting on a slow batch is patient, not idle.

use crate::admission::Admission;
use crate::engine::{Engine, EngineConfig, ModuleReply};
use crate::protocol::{
    parse_request, read_frame_event, render_response, write_frame, FrameEvent, Request, Verb,
};
use crate::stats::bump;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use treegion_par::lock_tolerant as lock;

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Engine options (cache file, quarantine dir, default deadline).
    pub engine: EngineConfig,
    /// Admission high-water mark: modules in flight at once.
    pub queue_max: usize,
    /// Retry hint carried by shed replies, in milliseconds.
    pub retry_after_ms: u64,
    /// Per-connection pipeline window: compile batches buffered between
    /// the reader and the worker before the enqueue blocks.
    pub pipeline_depth: usize,
    /// Socket read timeout. Doubles as the idle poll tick: a frame that
    /// *starts* must deliver its next bytes within this budget or the
    /// connection is dropped as a stalled peer.
    pub read_timeout_ms: u64,
    /// Socket write timeout: a peer that stops draining its receive
    /// buffer cannot pin a handler on a blocked write forever.
    pub write_timeout_ms: u64,
    /// Idle budget: a connection with no traffic at all (and no batch in
    /// flight) for this long is reaped (counted in `idle-reaped`). Zero
    /// disables the reaper.
    pub idle_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            engine: EngineConfig::default(),
            queue_max: 64,
            retry_after_ms: 100,
            pipeline_depth: 32,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            idle_timeout_ms: 300_000,
        }
    }
}

/// The per-connection timeout knobs, shared by every handler thread.
#[derive(Clone, Copy, Debug)]
struct Timeouts {
    read_ms: u64,
    write_ms: u64,
    idle_ms: u64,
    pipeline_depth: usize,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    admission: Admission,
    drain: Arc<AtomicBool>,
    timeouts: Timeouts,
}

impl Server {
    /// Opens the engine (running cache recovery and the quarantine
    /// ledger replay) and binds the listener.
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-recovery failures.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let engine = Arc::new(Engine::open(&config.engine)?);
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        Ok(Server {
            listener,
            engine,
            admission: Admission::new(config.queue_max.max(1), config.retry_after_ms),
            drain: Arc::new(AtomicBool::new(false)),
            timeouts: Timeouts {
                read_ms: config.read_timeout_ms.max(1),
                write_ms: config.write_timeout_ms.max(1),
                idle_ms: config.idle_timeout_ms,
                pipeline_depth: config.pipeline_depth.max(1),
            },
        })
    }

    /// The bound address (read this for `:0` ephemeral binds).
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Shared handle to the engine (counters, stats, quarantine ledger)
    /// — stays valid after [`Server::run`] returns.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// A handle that trips the drain from outside the protocol (tests,
    /// embedders). The `shutdown` verb flips the same flag.
    pub fn drain_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    /// Runs until drained: accepts connections, serves requests, and on
    /// `shutdown` finishes in-flight work, joins every handler, and
    /// checkpoints the cache.
    ///
    /// # Errors
    ///
    /// Propagates listener failures and the final checkpoint error.
    pub fn run(self) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let handlers: Mutex<Vec<(std::thread::JoinHandle<()>, TcpStream)>> = Mutex::new(Vec::new());
        while !self.drain.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let peer_copy = stream
                        .try_clone()
                        .map_err(|e| format!("clone stream: {e}"))?;
                    let engine = Arc::clone(&self.engine);
                    let admission = self.admission.clone();
                    let drain = Arc::clone(&self.drain);
                    let timeouts = self.timeouts;
                    let handle = std::thread::spawn(move || {
                        handle_connection(stream, &engine, &admission, &drain, timeouts);
                    });
                    lock(&handlers).push((handle, peer_copy));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
        // Drain: in-flight batches hold admission slots until their
        // replies are rendered; wait for the slots to free (bounded so a
        // wedged handler cannot hold the drain hostage), give the final
        // reply writes a beat, then unblock idle readers and join.
        let deadline = Instant::now() + Duration::from_secs(60);
        while self.admission.inflight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(100));
        let mut handlers = lock(&handlers);
        for (_, stream) in handlers.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for (handle, _) in handlers.drain(..) {
            let _ = handle.join();
        }
        self.engine.checkpoint()
    }
}

/// Serves one connection until EOF, a `close`, a dead socket, a timeout,
/// or drain.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    admission: &Admission,
    drain: &AtomicBool,
    timeouts: Timeouts,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(timeouts.read_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(timeouts.write_ms)));
    serve_connection(&mut stream, engine, admission, drain, timeouts);
    // The accept loop holds a clone of this socket (for the drain-time
    // force-close), so merely dropping our handle would NOT send FIN —
    // the peer would sit on a half-dead connection until the server
    // drains. Shut the underlying socket down explicitly: a dropped,
    // reaped, or stalled connection closes the moment its handler exits.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// One enqueued compile batch: its sequence id, the parsed request, and
/// the instant its frame was accepted (feeds the latency histogram).
struct BatchJob {
    seq: Option<u64>,
    req: Request,
    accepted: Instant,
}

/// The connection state machine (see the module docs): a reader loop on
/// the calling thread plus a scoped worker thread draining the batch
/// channel; returning ends the connection.
///
/// The socket read timeout is the poll tick: each expiry at a frame
/// boundary burns `read_ms` of the connection's idle budget (the
/// reaper) **unless a batch is in flight**, while an expiry *mid-frame*
/// means the peer started a frame and stalled — that connection is
/// dropped immediately so a wedged sender cannot pin a handler thread
/// forever.
fn serve_connection(
    stream: &mut TcpStream,
    engine: &Engine,
    admission: &Admission,
    drain: &AtomicBool,
    timeouts: Timeouts,
) {
    let Ok(wstream) = stream.try_clone() else {
        return;
    };
    let writer = Mutex::new(wstream);
    // Set by the worker when a reply write fails: the connection is
    // beyond saving, the reader gives up at its next tick.
    let dead = AtomicBool::new(false);
    // Batches enqueued but not yet fully answered. The idle reaper and
    // the drain path only act when this is zero.
    let outstanding = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::sync_channel::<BatchJob>(timeouts.pipeline_depth);
        let mut tx = Some(tx);
        let (writer, dead, outstanding) = (&writer, &dead, &outstanding);
        let mut worker = Some(s.spawn(move || {
            while let Ok(job) = rx.recv() {
                if !dead.load(Ordering::Acquire)
                    && serve_batch(writer, engine, admission, &job).is_err()
                {
                    dead.store(true, Ordering::Release);
                }
                outstanding.fetch_sub(1, Ordering::AcqRel);
            }
        }));
        // Joins the worker after closing the channel: every accepted
        // batch is answered before the connection advances past this.
        let finish =
            |tx: &mut Option<mpsc::SyncSender<BatchJob>>,
             worker: &mut Option<std::thread::ScopedJoinHandle<'_, ()>>| {
                drop(tx.take());
                if let Some(w) = worker.take() {
                    let _ = w.join();
                }
            };
        let mut idle_ms = 0u64;
        loop {
            if dead.load(Ordering::Acquire) {
                break;
            }
            let frame = match read_frame_event(&mut *stream) {
                Ok(FrameEvent::Frame(f)) => {
                    idle_ms = 0;
                    f
                }
                Ok(FrameEvent::Eof) => break, // peer hung up cleanly
                Ok(FrameEvent::IdleTimeout) => {
                    if outstanding.load(Ordering::Acquire) > 0 {
                        continue; // waiting on results, not idle
                    }
                    if drain.load(Ordering::Acquire) {
                        break; // draining: stop waiting on idle peers
                    }
                    idle_ms = idle_ms.saturating_add(timeouts.read_ms);
                    if timeouts.idle_ms > 0 && idle_ms >= timeouts.idle_ms {
                        bump(&engine.stats.idle_reaped);
                        break;
                    }
                    continue;
                }
                Err(e) => {
                    if e.starts_with("stalled") {
                        bump(&engine.stats.read_stalls);
                    }
                    break; // dead, stalled, or force-closed socket
                }
            };
            bump(&engine.stats.requests);
            let req = match parse_request(&frame) {
                Ok(r) => r,
                Err(msg) => {
                    // Framing is intact, so the connection survives a bad
                    // request; only the request is rejected.
                    let reply = render_response("error", &[("reason", msg)], "");
                    if write_locked(writer, &reply).is_err() {
                        break;
                    }
                    continue;
                }
            };
            match req.verb {
                Verb::Ping => {
                    if write_locked(writer, &render_response("pong", &[], "")).is_err() {
                        break;
                    }
                }
                Verb::Stats => {
                    let body = engine.render_stats(admission.inflight(), admission.high_water());
                    if write_locked(writer, &render_response("stats", &[], &body)).is_err() {
                        break;
                    }
                }
                Verb::Shutdown => {
                    // Answer this connection's accepted batches first —
                    // a client that pipelines compiles and a shutdown
                    // still gets every reply.
                    finish(&mut tx, &mut worker);
                    let _ = write_locked(writer, &render_response("draining", &[], ""));
                    drain.store(true, Ordering::Release);
                    break;
                }
                Verb::Close => {
                    // Protocol FIN: drain this connection's pipeline,
                    // confirm, close. The server keeps running.
                    finish(&mut tx, &mut worker);
                    bump(&engine.stats.closes);
                    let _ = write_locked(writer, &render_response("closing", &[], ""));
                    break;
                }
                Verb::Compile => {
                    let job = BatchJob {
                        seq: req.seq,
                        req,
                        accepted: Instant::now(),
                    };
                    outstanding.fetch_add(1, Ordering::AcqRel);
                    // A full channel blocks here — backpressure via TCP.
                    match &tx {
                        Some(tx) if tx.send(job).is_ok() => {}
                        _ => {
                            outstanding.fetch_sub(1, Ordering::AcqRel);
                            break;
                        }
                    }
                }
            }
        }
        finish(&mut tx, &mut worker);
    });
}

/// Writes one frame under the connection's writer lock, keeping frames
/// atomic when the reader (control replies) and the worker (results)
/// interleave.
fn write_locked(writer: &Mutex<TcpStream>, payload: &str) -> Result<(), String> {
    write_frame(&mut *lock(writer), payload)
}

/// Runs one compile batch and streams the per-module `result` frames in
/// input order, closed by a `batch-end` frame. The request's sequence
/// id, when present, is echoed on every frame so pipelined clients can
/// demultiplex.
fn serve_batch(
    writer: &Mutex<TcpStream>,
    engine: &Engine,
    admission: &Admission,
    job: &BatchJob,
) -> Result<(), String> {
    let req = &job.req;
    let replies = engine.process_batch(admission, &req.options, &req.modules);
    let (mut ok, mut errors, mut shed) = (0u64, 0u64, 0u64);
    let with_seq = |mut keys: Vec<(&'static str, String)>| {
        if let Some(n) = job.seq {
            keys.push(("seq", n.to_string()));
        }
        keys
    };
    for (i, reply) in replies.iter().enumerate() {
        let index = ("index", i.to_string());
        let frame = match reply {
            ModuleReply::Ok { warm, payload } => {
                ok += 1;
                let tier = ("cache", if *warm { "warm" } else { "cold" }.to_string());
                render_response("result ok", &with_seq(vec![index, tier]), payload)
            }
            ModuleReply::Err {
                cause,
                detail,
                quarantined,
            } => {
                errors += 1;
                render_response(
                    "result error",
                    &with_seq(vec![
                        index,
                        ("cause", cause.clone()),
                        ("detail", detail.clone()),
                        ("quarantined", quarantined.to_string()),
                    ]),
                    "",
                )
            }
            ModuleReply::Shed { retry_after_ms } => {
                shed += 1;
                render_response(
                    "result shed",
                    &with_seq(vec![index, ("retry-after-ms", retry_after_ms.to_string())]),
                    "",
                )
            }
        };
        write_locked(writer, &frame)?;
    }
    let out = write_locked(
        writer,
        &render_response(
            "batch-end",
            &with_seq(vec![
                ("modules", replies.len().to_string()),
                ("ok", ok.to_string()),
                ("errors", errors.to_string()),
                ("shed", shed.to_string()),
            ]),
            "",
        ),
    );
    engine.stats.latency.record(job.accepted.elapsed());
    out
}
