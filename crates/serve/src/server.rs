//! The TCP front end: accept loop, per-connection handlers, graceful
//! drain.
//!
//! The accept loop is non-blocking with a short poll so the drain flag
//! is observed promptly; each connection gets a blocking handler thread
//! (connections are few — this is a build-farm service, not a web
//! server). `shutdown` flips the drain flag: the loop stops accepting,
//! waits for every admission slot to free (in-flight batches finish and
//! their replies go out), force-closes idle connections to unblock
//! their readers, joins every handler, and checkpoints the durable
//! cache. Crash safety does **not** depend on the graceful path — every
//! cache write is already fsynced — the checkpoint merely compacts.

use crate::admission::Admission;
use crate::engine::{Engine, EngineConfig, ModuleReply};
use crate::protocol::{parse_request, read_frame, render_response, write_frame, Request, Verb};
use crate::stats::bump;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Engine options (cache file, quarantine dir, default deadline).
    pub engine: EngineConfig,
    /// Admission high-water mark: modules in flight at once.
    pub queue_max: usize,
    /// Retry hint carried by shed replies, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            engine: EngineConfig::default(),
            queue_max: 64,
            retry_after_ms: 100,
        }
    }
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    admission: Admission,
    drain: Arc<AtomicBool>,
}

impl Server {
    /// Opens the engine (running cache recovery and the quarantine
    /// ledger replay) and binds the listener.
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-recovery failures.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let engine = Arc::new(Engine::open(&config.engine)?);
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        Ok(Server {
            listener,
            engine,
            admission: Admission::new(config.queue_max.max(1), config.retry_after_ms),
            drain: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (read this for `:0` ephemeral binds).
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Shared handle to the engine (counters, stats, quarantine ledger)
    /// — stays valid after [`Server::run`] returns.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// A handle that trips the drain from outside the protocol (tests,
    /// embedders). The `shutdown` verb flips the same flag.
    pub fn drain_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    /// Runs until drained: accepts connections, serves requests, and on
    /// `shutdown` finishes in-flight work, joins every handler, and
    /// checkpoints the cache.
    ///
    /// # Errors
    ///
    /// Propagates listener failures and the final checkpoint error.
    pub fn run(self) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let handlers: Mutex<Vec<(std::thread::JoinHandle<()>, TcpStream)>> = Mutex::new(Vec::new());
        while !self.drain.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let peer_copy = stream
                        .try_clone()
                        .map_err(|e| format!("clone stream: {e}"))?;
                    let engine = Arc::clone(&self.engine);
                    let admission = self.admission.clone();
                    let drain = Arc::clone(&self.drain);
                    let handle = std::thread::spawn(move || {
                        handle_connection(stream, &engine, &admission, &drain);
                    });
                    lock(&handlers).push((handle, peer_copy));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
        // Drain: in-flight batches hold admission slots until their
        // replies are rendered; wait for the slots to free (bounded so a
        // wedged handler cannot hold the drain hostage), give the final
        // reply writes a beat, then unblock idle readers and join.
        let deadline = Instant::now() + Duration::from_secs(60);
        while self.admission.inflight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(100));
        let mut handlers = lock(&handlers);
        for (_, stream) in handlers.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for (handle, _) in handlers.drain(..) {
            let _ = handle.join();
        }
        self.engine.checkpoint()
    }
}

/// Serves one connection until EOF, a dead socket, or drain.
fn handle_connection(
    mut stream: TcpStream,
    engine: &Engine,
    admission: &Admission,
    drain: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return, // peer hung up cleanly
            Err(_) => return,   // dead or force-closed socket
        };
        bump(&engine.stats.requests);
        let req = match parse_request(&frame) {
            Ok(r) => r,
            Err(msg) => {
                // Framing is intact, so the connection survives a bad
                // request; only the request is rejected.
                let reply = render_response("error", &[("reason", msg)], "");
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
                continue;
            }
        };
        match req.verb {
            Verb::Ping => {
                if write_frame(&mut stream, &render_response("pong", &[], "")).is_err() {
                    return;
                }
            }
            Verb::Stats => {
                let body = engine.render_stats(admission.inflight(), admission.high_water());
                if write_frame(&mut stream, &render_response("stats", &[], &body)).is_err() {
                    return;
                }
            }
            Verb::Shutdown => {
                let _ = write_frame(&mut stream, &render_response("draining", &[], ""));
                drain.store(true, Ordering::Release);
                return;
            }
            Verb::Compile => {
                if serve_batch(&mut stream, engine, admission, &req).is_err() {
                    return;
                }
            }
        }
    }
}

/// Runs one compile batch and streams the per-module `result` frames in
/// input order, closed by a `batch-end` frame.
fn serve_batch(
    stream: &mut TcpStream,
    engine: &Engine,
    admission: &Admission,
    req: &Request,
) -> Result<(), String> {
    let replies = engine.process_batch(admission, &req.options, &req.modules);
    let (mut ok, mut errors, mut shed) = (0u64, 0u64, 0u64);
    for (i, reply) in replies.iter().enumerate() {
        let index = ("index", i.to_string());
        let frame = match reply {
            ModuleReply::Ok { warm, payload } => {
                ok += 1;
                let tier = ("cache", if *warm { "warm" } else { "cold" }.to_string());
                render_response("result ok", &[index, tier], payload)
            }
            ModuleReply::Err {
                cause,
                detail,
                quarantined,
            } => {
                errors += 1;
                render_response(
                    "result error",
                    &[
                        index,
                        ("cause", cause.clone()),
                        ("detail", detail.clone()),
                        ("quarantined", quarantined.to_string()),
                    ],
                    "",
                )
            }
            ModuleReply::Shed { retry_after_ms } => {
                shed += 1;
                render_response(
                    "result shed",
                    &[index, ("retry-after-ms", retry_after_ms.to_string())],
                    "",
                )
            }
        };
        write_frame(stream, &frame)?;
    }
    write_frame(
        stream,
        &render_response(
            "batch-end",
            &[
                ("modules", replies.len().to_string()),
                ("ok", ok.to_string()),
                ("errors", errors.to_string()),
                ("shed", shed.to_string()),
            ],
            "",
        ),
    )
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
