//! The TCP front end: accept loop, per-connection handlers, graceful
//! drain.
//!
//! The accept loop is non-blocking with a short poll so the drain flag
//! is observed promptly; each connection gets a blocking handler thread
//! (connections are few — this is a build-farm service, not a web
//! server). `shutdown` flips the drain flag: the loop stops accepting,
//! waits for every admission slot to free (in-flight batches finish and
//! their replies go out), force-closes idle connections to unblock
//! their readers, joins every handler, and checkpoints the durable
//! cache. Crash safety does **not** depend on the graceful path — every
//! cache write is already fsynced — the checkpoint merely compacts.

use crate::admission::Admission;
use crate::engine::{Engine, EngineConfig, ModuleReply};
use crate::protocol::{
    parse_request, read_frame_event, render_response, write_frame, FrameEvent, Request, Verb,
};
use crate::stats::bump;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Engine options (cache file, quarantine dir, default deadline).
    pub engine: EngineConfig,
    /// Admission high-water mark: modules in flight at once.
    pub queue_max: usize,
    /// Retry hint carried by shed replies, in milliseconds.
    pub retry_after_ms: u64,
    /// Socket read timeout. Doubles as the idle poll tick: a frame that
    /// *starts* must deliver its next bytes within this budget or the
    /// connection is dropped as a stalled peer.
    pub read_timeout_ms: u64,
    /// Socket write timeout: a peer that stops draining its receive
    /// buffer cannot pin a handler on a blocked write forever.
    pub write_timeout_ms: u64,
    /// Idle budget: a connection with no traffic at all for this long is
    /// reaped (counted in `idle-reaped`). Zero disables the reaper.
    pub idle_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            engine: EngineConfig::default(),
            queue_max: 64,
            retry_after_ms: 100,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            idle_timeout_ms: 300_000,
        }
    }
}

/// The per-connection timeout knobs, shared by every handler thread.
#[derive(Clone, Copy, Debug)]
struct Timeouts {
    read_ms: u64,
    write_ms: u64,
    idle_ms: u64,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    admission: Admission,
    drain: Arc<AtomicBool>,
    timeouts: Timeouts,
}

impl Server {
    /// Opens the engine (running cache recovery and the quarantine
    /// ledger replay) and binds the listener.
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-recovery failures.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let engine = Arc::new(Engine::open(&config.engine)?);
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        Ok(Server {
            listener,
            engine,
            admission: Admission::new(config.queue_max.max(1), config.retry_after_ms),
            drain: Arc::new(AtomicBool::new(false)),
            timeouts: Timeouts {
                read_ms: config.read_timeout_ms.max(1),
                write_ms: config.write_timeout_ms.max(1),
                idle_ms: config.idle_timeout_ms,
            },
        })
    }

    /// The bound address (read this for `:0` ephemeral binds).
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Shared handle to the engine (counters, stats, quarantine ledger)
    /// — stays valid after [`Server::run`] returns.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// A handle that trips the drain from outside the protocol (tests,
    /// embedders). The `shutdown` verb flips the same flag.
    pub fn drain_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    /// Runs until drained: accepts connections, serves requests, and on
    /// `shutdown` finishes in-flight work, joins every handler, and
    /// checkpoints the cache.
    ///
    /// # Errors
    ///
    /// Propagates listener failures and the final checkpoint error.
    pub fn run(self) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let handlers: Mutex<Vec<(std::thread::JoinHandle<()>, TcpStream)>> = Mutex::new(Vec::new());
        while !self.drain.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let peer_copy = stream
                        .try_clone()
                        .map_err(|e| format!("clone stream: {e}"))?;
                    let engine = Arc::clone(&self.engine);
                    let admission = self.admission.clone();
                    let drain = Arc::clone(&self.drain);
                    let timeouts = self.timeouts;
                    let handle = std::thread::spawn(move || {
                        handle_connection(stream, &engine, &admission, &drain, timeouts);
                    });
                    lock(&handlers).push((handle, peer_copy));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
        // Drain: in-flight batches hold admission slots until their
        // replies are rendered; wait for the slots to free (bounded so a
        // wedged handler cannot hold the drain hostage), give the final
        // reply writes a beat, then unblock idle readers and join.
        let deadline = Instant::now() + Duration::from_secs(60);
        while self.admission.inflight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(100));
        let mut handlers = lock(&handlers);
        for (_, stream) in handlers.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for (handle, _) in handlers.drain(..) {
            let _ = handle.join();
        }
        self.engine.checkpoint()
    }
}

/// Serves one connection until EOF, a dead socket, a timeout, or drain.
///
/// The socket read timeout is the poll tick: each expiry at a frame
/// boundary burns `read_ms` of the connection's idle budget (the
/// reaper), while an expiry *mid-frame* means the peer started a frame
/// and stalled — that connection is dropped immediately so a wedged
/// sender cannot pin a handler thread forever.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    admission: &Admission,
    drain: &AtomicBool,
    timeouts: Timeouts,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(timeouts.read_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(timeouts.write_ms)));
    serve_connection(&mut stream, engine, admission, drain, timeouts);
    // The accept loop holds a clone of this socket (for the drain-time
    // force-close), so merely dropping our handle would NOT send FIN —
    // the peer would sit on a half-dead connection until the server
    // drains. Shut the underlying socket down explicitly: a dropped,
    // reaped, or stalled connection closes the moment its handler exits.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The request loop of one connection; returning ends the connection.
fn serve_connection(
    mut stream: &mut TcpStream,
    engine: &Engine,
    admission: &Admission,
    drain: &AtomicBool,
    timeouts: Timeouts,
) {
    let mut idle_ms = 0u64;
    loop {
        let frame = match read_frame_event(&mut stream) {
            Ok(FrameEvent::Frame(f)) => {
                idle_ms = 0;
                f
            }
            Ok(FrameEvent::Eof) => return, // peer hung up cleanly
            Ok(FrameEvent::IdleTimeout) => {
                if drain.load(Ordering::Acquire) {
                    return; // draining: stop waiting on idle peers
                }
                idle_ms = idle_ms.saturating_add(timeouts.read_ms);
                if timeouts.idle_ms > 0 && idle_ms >= timeouts.idle_ms {
                    bump(&engine.stats.idle_reaped);
                    return;
                }
                continue;
            }
            Err(e) => {
                if e.starts_with("stalled") {
                    bump(&engine.stats.read_stalls);
                }
                return; // dead, stalled, or force-closed socket
            }
        };
        bump(&engine.stats.requests);
        let req = match parse_request(&frame) {
            Ok(r) => r,
            Err(msg) => {
                // Framing is intact, so the connection survives a bad
                // request; only the request is rejected.
                let reply = render_response("error", &[("reason", msg)], "");
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
                continue;
            }
        };
        match req.verb {
            Verb::Ping => {
                if write_frame(&mut stream, &render_response("pong", &[], "")).is_err() {
                    return;
                }
            }
            Verb::Stats => {
                let body = engine.render_stats(admission.inflight(), admission.high_water());
                if write_frame(&mut stream, &render_response("stats", &[], &body)).is_err() {
                    return;
                }
            }
            Verb::Shutdown => {
                let _ = write_frame(&mut stream, &render_response("draining", &[], ""));
                drain.store(true, Ordering::Release);
                return;
            }
            Verb::Compile => {
                if serve_batch(stream, engine, admission, &req).is_err() {
                    return;
                }
            }
        }
    }
}

/// Runs one compile batch and streams the per-module `result` frames in
/// input order, closed by a `batch-end` frame.
fn serve_batch(
    stream: &mut TcpStream,
    engine: &Engine,
    admission: &Admission,
    req: &Request,
) -> Result<(), String> {
    let replies = engine.process_batch(admission, &req.options, &req.modules);
    let (mut ok, mut errors, mut shed) = (0u64, 0u64, 0u64);
    for (i, reply) in replies.iter().enumerate() {
        let index = ("index", i.to_string());
        let frame = match reply {
            ModuleReply::Ok { warm, payload } => {
                ok += 1;
                let tier = ("cache", if *warm { "warm" } else { "cold" }.to_string());
                render_response("result ok", &[index, tier], payload)
            }
            ModuleReply::Err {
                cause,
                detail,
                quarantined,
            } => {
                errors += 1;
                render_response(
                    "result error",
                    &[
                        index,
                        ("cause", cause.clone()),
                        ("detail", detail.clone()),
                        ("quarantined", quarantined.to_string()),
                    ],
                    "",
                )
            }
            ModuleReply::Shed { retry_after_ms } => {
                shed += 1;
                render_response(
                    "result shed",
                    &[index, ("retry-after-ms", retry_after_ms.to_string())],
                    "",
                )
            }
        };
        write_frame(stream, &frame)?;
    }
    write_frame(
        stream,
        &render_response(
            "batch-end",
            &[
                ("modules", replies.len().to_string()),
                ("ok", ok.to_string()),
                ("errors", errors.to_string()),
                ("shed", shed.to_string()),
            ],
            "",
        ),
    )
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
