//! The request engine: one module in, one structured reply out, with
//! every failure mode handled explicitly.
//!
//! The ladder, in the order a module meets it:
//!
//! 1. **Quarantine fast-reject** — a module whose content digest is
//!    already on file as a repeat offender is answered immediately with
//!    a structured error; it never reaches the scheduler again.
//! 2. **Durable cache** — a warm `(module digest, config fingerprint)`
//!    hit returns the stored payload byte-identically.
//! 3. **Parse/verify** — malformed tir is a `bad-request` error (the
//!    input is wrong, not crashing; it is not quarantined).
//! 4. **Contained run** — the pipeline runs under `catch_unwind`, with
//!    the request's soft deadline threaded into
//!    [`treegion::Budgets::max_wall_ms`] (checked at scheduler cycle
//!    boundaries, recovered by the fallback chain) and a hard watchdog
//!    thread as the escalation path for stalls the soft deadline cannot
//!    see. A crash or stall becomes a [`treegion::ContainmentCause`],
//!    the offender is quarantined (FNV-deduplicated, replayable), and
//!    the client gets the structured error — concurrent clean modules
//!    of the same batch are unaffected.
//!
//! Successful cold runs are stored durably before the reply leaves the
//! engine (unless the module carried poison knobs, which perturb the
//! schedule and must never pollute the cache).

use crate::admission::Admission;
use crate::protocol::{BatchOptions, ModuleRequest, Poison};
use crate::stats::{bump, RenderInputs, ServeStats};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use treegion::{
    Budgets, ContainmentCause, FaultPlan, Pipeline, Profiler, RobustOptions, SchedFailure,
    ScheduleOptions,
};
use treegion_eval::{fnv1a, DiskRecovery, FormationCache};
use treegion_ir::{parse_module, verify_function, Module};
use treegion_par::StripedSet;

/// Shard count used when [`EngineConfig::cache_shards`] is 0.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Stripe count of the in-memory quarantine ledger.
const QUARANTINE_STRIPES: usize = 16;

/// Engine construction options.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Durable result-cache base path (`None` = in-memory only, no warm
    /// tier). The store is sharded into `cache_shards` files named
    /// `<path>.<k>`; a legacy single-file cache at `path` itself is
    /// migrated on open.
    pub cache_path: Option<PathBuf>,
    /// Disk-cache shard count (0 = [`DEFAULT_CACHE_SHARDS`]).
    pub cache_shards: usize,
    /// Quarantine directory (`None` = containment without files).
    pub quarantine_dir: Option<PathBuf>,
    /// Deadline applied when a request does not set one.
    pub default_deadline_ms: Option<u64>,
    /// Armed I/O chaos plan (`--chaos-seed`/`--chaos-plan`): journals
    /// and may perturb every durable write the engine performs (cache
    /// appends and compactions, quarantine files). `None` changes
    /// nothing.
    pub chaos: treegion_chaos::Chaos,
}

/// One module's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModuleReply {
    /// Scheduled; `payload` is the cacheable result body.
    Ok {
        /// Served from the durable cache?
        warm: bool,
        /// The result body (byte-identical warm or cold).
        payload: String,
    },
    /// Failed with a structured error.
    Err {
        /// Containment label: `panic`, `deadline`, `failure`,
        /// `bad-request`, or `quarantined`.
        cause: String,
        /// Human-readable detail (single line).
        detail: String,
        /// Whether a (new or pre-existing) quarantine file holds it.
        quarantined: bool,
    },
    /// Shed by admission control before scheduling.
    Shed {
        /// Client retry hint.
        retry_after_ms: u64,
    },
}

/// The shared engine: cache, quarantine ledger, counters, profiler.
pub struct Engine {
    cache: FormationCache,
    recovery: Option<DiskRecovery>,
    /// Lock-striped ledger: the digest fast-reject sits on the hot path
    /// of every compile request, so concurrent connections must not
    /// serialize on one global `Mutex<HashSet>`.
    quarantined: StripedSet,
    qdir: Option<PathBuf>,
    /// Service counters (`/stats`). `Arc`-shared so watchdog threads
    /// can keep counting after their request is abandoned.
    pub stats: Arc<ServeStats>,
    profiler: Arc<Profiler>,
    default_deadline_ms: Option<u64>,
    chaos: treegion_chaos::Chaos,
}

/// The configuration fingerprint half of the cache key. Debug renderings
/// cover every field of the kind and machine, so equal fingerprints mean
/// behaviourally identical requests.
fn fingerprint(opts: &BatchOptions) -> String {
    format!(
        "{:?}|{:?}|{}|dompar={}",
        opts.kind,
        opts.machine,
        opts.heuristic.name(),
        opts.dompar
    )
}

impl Engine {
    /// Opens the engine: attaches the durable cache tier (running its
    /// recovery scan) and replays the quarantine ledger from disk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors opening the cache.
    pub fn open(config: &EngineConfig) -> Result<Self, String> {
        let cache = FormationCache::new();
        let shards = if config.cache_shards == 0 {
            DEFAULT_CACHE_SHARDS
        } else {
            config.cache_shards
        };
        let recovery = match &config.cache_path {
            Some(p) => Some(cache.attach_disk_sharded(p, shards, config.chaos.clone())?),
            None => None,
        };
        let stats = Arc::new(ServeStats::default());
        let quarantined = StripedSet::new(QUARANTINE_STRIPES);
        if let Some(dir) = &config.quarantine_dir {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for e in entries.flatten() {
                    // Ledger files are `serve-<digest:016x>.tir`; the
                    // digest in the name is the dedup key, so a restart
                    // rejects the same offenders without re-reading
                    // their bodies. The directory is operator-writable,
                    // so anything else — foreign filenames, bad hex,
                    // subdirectories — is skipped (and counted), never
                    // trusted and never fatal.
                    let is_file = e.file_type().map(|t| t.is_file()).unwrap_or(false);
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    let digest = name
                        .strip_prefix("serve-")
                        .and_then(|r| r.strip_suffix(".tir"))
                        .filter(|hex| !hex.is_empty())
                        .and_then(|hex| u64::from_str_radix(hex, 16).ok());
                    match digest {
                        Some(d) if is_file => {
                            quarantined.insert(d);
                        }
                        _ => bump(&stats.ledger_skipped),
                    }
                }
            }
        }
        Ok(Engine {
            cache,
            recovery,
            quarantined,
            qdir: config.quarantine_dir.clone(),
            stats,
            profiler: Arc::new(Profiler::new()),
            default_deadline_ms: config.default_deadline_ms,
            chaos: config.chaos.clone(),
        })
    }

    /// What the startup cache recovery scan found (None without a disk
    /// tier).
    pub fn recovery(&self) -> Option<DiskRecovery> {
        self.recovery
    }

    /// The `/stats` body.
    pub fn render_stats(&self, inflight: usize, high_water: usize) -> String {
        self.stats.render(&RenderInputs {
            cache: self.cache.stats(),
            recovery: self.recovery,
            profiler: &self.profiler,
            inflight,
            high_water,
            chaos: self.chaos.as_ref().map(|p| p.snapshot()),
            shards: self
                .cache
                .disk()
                .map(|d| d.shard_stats())
                .unwrap_or_default(),
            quarantine_stripes: self.quarantined.stripes(),
            quarantine_contention: self.quarantined.contention(),
        })
    }

    /// Digests currently on the quarantine ledger.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Graceful-drain checkpoint: compacts the durable cache so a clean
    /// shutdown leaves a minimal, freshly-sealed file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn checkpoint(&self) -> Result<(), String> {
        match self.cache.disk() {
            Some(d) => d.compact(),
            None => Ok(()),
        }
    }

    /// Processes one batch: admission in input order (slots held until
    /// the whole batch finishes — deterministic shedding), then a
    /// panic-isolated parallel fan-out over the admitted modules.
    /// Replies are in input order.
    pub fn process_batch(
        &self,
        admission: &Admission,
        opts: &BatchOptions,
        modules: &[ModuleRequest],
    ) -> Vec<ModuleReply> {
        bump(&self.stats.batches);
        // Admission pass, in batch order.
        let mut permits = Vec::new();
        let mut admitted: Vec<usize> = Vec::new();
        let mut replies: Vec<Option<ModuleReply>> = vec![None; modules.len()];
        for (i, _) in modules.iter().enumerate() {
            match admission.try_admit() {
                Ok(p) => {
                    permits.push(p);
                    admitted.push(i);
                }
                Err(retry_after_ms) => {
                    bump(&self.stats.shed);
                    replies[i] = Some(ModuleReply::Shed { retry_after_ms });
                }
            }
        }
        // Fan the admitted modules through the worker pool; a panic that
        // somehow escapes the engine's own catch_unwind is still
        // contained here.
        let outcomes = treegion_par::par_map_isolated(
            &admitted,
            |_, &i| format!("serve module #{i}"),
            |&i| self.compile_module(opts, &modules[i]),
        );
        for (&i, out) in admitted.iter().zip(outcomes) {
            replies[i] = Some(match out {
                treegion_par::TaskOutcome::Done(r) => r,
                treegion_par::TaskOutcome::Panicked { payload, .. } => self.contained_error(
                    fnv1a(modules[i].text.as_bytes()),
                    &modules[i].text,
                    modules[i].poison,
                    ContainmentCause::Panic { payload },
                ),
            });
        }
        drop(permits);
        replies
            .into_iter()
            .map(|r| r.expect("every module got a reply"))
            .collect()
    }

    /// The per-module ladder (see the module docs).
    pub fn compile_module(&self, opts: &BatchOptions, m: &ModuleRequest) -> ModuleReply {
        let digest = fnv1a(m.text.as_bytes());
        // 1. Repeat offenders never reach the scheduler again.
        if self.quarantined.contains(digest) {
            bump(&self.stats.quarantine_rejects);
            bump(&self.stats.errors);
            return ModuleReply::Err {
                cause: "quarantined".into(),
                detail: format!("module {digest:016x} is on the quarantine ledger"),
                quarantined: true,
            };
        }
        let fp = fingerprint(opts);
        // 2. Warm path (poisoned modules never touch the cache).
        if !m.poison.is_set() {
            if let Some(hit) = self.cache.disk_get(digest, &fp) {
                bump(&self.stats.warm);
                bump(&self.stats.ok);
                return ModuleReply::Ok {
                    warm: true,
                    payload: hit,
                };
            }
        }
        // 3. Parse and verify: malformed input is the client's bug.
        let module = match parse_module(&m.text) {
            Ok(mo) => mo,
            Err(e) => {
                bump(&self.stats.errors);
                return ModuleReply::Err {
                    cause: "bad-request".into(),
                    detail: e.to_string().replace('\n', " "),
                    quarantined: false,
                };
            }
        };
        for f in module.functions() {
            if let Err(e) = verify_function(f) {
                bump(&self.stats.errors);
                return ModuleReply::Err {
                    cause: "bad-request".into(),
                    detail: e.to_string().replace('\n', " "),
                    quarantined: false,
                };
            }
        }
        // 4. Contained run.
        let deadline_ms = opts.deadline_ms.or(self.default_deadline_ms);
        match self.run_contained(opts, m.poison, &module, deadline_ms, digest) {
            Ok(payload) => {
                bump(&self.stats.cold);
                bump(&self.stats.ok);
                if !m.poison.is_set() {
                    if let Err(e) = self.cache.disk_put(digest, &fp, &payload) {
                        // Degrade loudly but keep serving: the result is
                        // correct even if durability failed.
                        eprintln!("tgc-serve: cache write failed: {e}");
                    }
                }
                ModuleReply::Ok {
                    warm: false,
                    payload,
                }
            }
            Err(cause) => self.contained_error(digest, &m.text, m.poison, cause),
        }
    }

    /// Books a contained crash: counters, quarantine file (deduplicated
    /// by digest), and the structured error reply.
    fn contained_error(
        &self,
        digest: u64,
        text: &str,
        poison: Poison,
        cause: ContainmentCause,
    ) -> ModuleReply {
        bump(&self.stats.errors);
        bump(&self.stats.contained);
        // Watchdog escalations and soft-deadline exhaustion (a pipeline
        // error whose failure chain names the deadline) both count.
        let soft_deadline = !matches!(cause, ContainmentCause::Deadline { .. })
            && cause.detail().contains("deadline");
        if matches!(cause, ContainmentCause::Deadline { .. }) || soft_deadline {
            bump(&self.stats.deadline);
        }
        // Soft-deadline misses are parameter-dependent, not module
        // toxicity: the same module under a roomier (or absent) budget
        // may schedule fine, so it must stay retryable. Only panics,
        // watchdog-detached stalls (`ContainmentCause::Deadline`), and
        // deterministic every-rung failures enter the ledger.
        let quarantined = if soft_deadline {
            false
        } else {
            self.quarantine_module(digest, text, poison, &cause)
        };
        ModuleReply::Err {
            cause: cause.label().to_string(),
            detail: cause.detail().replace('\n', " "),
            quarantined,
        }
    }

    /// Writes the replayable quarantine file (a valid tir module with a
    /// comment header) and enters the digest into the ledger. Returns
    /// whether the module is now quarantined (new or already on file).
    fn quarantine_module(
        &self,
        digest: u64,
        text: &str,
        poison: Poison,
        cause: &ContainmentCause,
    ) -> bool {
        self.quarantined.insert(digest);
        let Some(dir) = &self.qdir else {
            return false;
        };
        let path = dir.join(format!("serve-{digest:016x}.tir"));
        if path.exists() {
            return true; // Deduplicated across restarts.
        }
        let mut body = String::new();
        body.push_str("// tgc-serve quarantine v1\n");
        body.push_str(&format!("// digest {digest:016x}\n"));
        body.push_str(&format!("// cause {}\n", cause.label()));
        body.push_str(&format!(
            "// detail {}\n",
            cause.detail().replace('\n', " ")
        ));
        // Request-side poison knobs are part of the repro: the module
        // text alone may be innocent.
        if let Some(s) = poison.fault_seed {
            body.push_str(&format!("// poison fault-seed {s}\n"));
        }
        if let Some(r) = poison.panic_region {
            body.push_str(&format!("// poison panic-region {r}\n"));
        }
        if poison.panic_hard {
            body.push_str("// poison panic-hard\n");
        }
        body.push_str("// replay: parse_quarantine() recovers the module and its poison knobs\n");
        body.push_str(text);
        // Durable (fsynced) write: the in-memory ledger entry above
        // already fast-rejects this process's repeats, but only bytes on
        // the platter protect the *next* process — a crash that loses
        // the file merely lets the offender crash-and-requarantine once.
        if let Err(e) = treegion_chaos::shim::create_dir_all(dir, &self.chaos, "serve.quarantine")
            .map_err(|e| e.to_string())
            .and_then(|()| {
                treegion_chaos::shim::write_durable(
                    &path,
                    body.as_bytes(),
                    &self.chaos,
                    "serve.quarantine",
                )
                .map_err(|e| e.to_string())
            })
        {
            eprintln!(
                "tgc-serve: cannot write quarantine file {}: {e}",
                path.display()
            );
            return false;
        }
        bump(&self.stats.quarantined);
        true
    }

    /// Runs the pipeline under containment. Without a deadline the run
    /// happens in place under `catch_unwind`; with one, on a watchdog
    /// thread whose hard timeout (2× the soft deadline + margin) is the
    /// escalation path for stalls outside the scheduler's cycle checks.
    fn run_contained(
        &self,
        opts: &BatchOptions,
        poison: Poison,
        module: &Module,
        deadline_ms: Option<u64>,
        digest: u64,
    ) -> Result<String, ContainmentCause> {
        let ropts = RobustOptions {
            sched: ScheduleOptions {
                heuristic: opts.heuristic,
                dominator_parallelism: opts.dompar,
                ..Default::default()
            },
            budgets: Budgets {
                max_wall_ms: deadline_ms,
                ..Budgets::UNLIMITED
            },
            fault: poison.fault_seed.map(FaultPlan::from_seed),
            panic_on_region: poison.panic_region,
            ..Default::default()
        };
        let hard = poison.panic_hard;
        match deadline_ms {
            None => contained_run(
                opts,
                &ropts,
                module,
                digest,
                hard,
                &self.profiler,
                &self.stats,
            ),
            Some(budget_ms) => {
                let (tx, rx) = std::sync::mpsc::channel();
                let module = module.clone();
                let opts = opts.clone();
                let profiler = Arc::clone(&self.profiler);
                let stats = Arc::clone(&self.stats);
                let handle = std::thread::spawn(move || {
                    let out =
                        contained_run(&opts, &ropts, &module, digest, hard, &profiler, &stats);
                    let _ = tx.send(out);
                });
                // Escalation margin: the soft deadline inside the
                // scheduler should fire first; the watchdog only trips
                // when a stage outside the cycle checks stalls.
                let hard = budget_ms.saturating_mul(2).saturating_add(500);
                match rx.recv_timeout(Duration::from_millis(hard)) {
                    Ok(res) => {
                        let _ = handle.join(); // already finished; reap it
                        res
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        drop(handle); // abandon the stalled thread
                        Err(ContainmentCause::Deadline { budget_ms })
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                        let _ = handle.join();
                        Err(ContainmentCause::Panic {
                            payload: "serve worker vanished without reporting".to_string(),
                        })
                    }
                }
            }
        }
    }
}

/// One pipeline run under `catch_unwind`: a panic anywhere inside
/// becomes a [`ContainmentCause::Panic`]. A free function (not a method)
/// so the watchdog path can move `Arc` clones of the profiler and stats
/// into a `'static` thread.
fn contained_run(
    opts: &BatchOptions,
    ropts: &RobustOptions,
    module: &Module,
    digest: u64,
    panic_hard: bool,
    profiler: &Profiler,
    stats: &ServeStats,
) -> Result<String, ContainmentCause> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // `!panic-hard` fires *outside* the pipeline's own containment:
        // the deterministic stand-in for a scheduler bug that escapes
        // the fallback chain, provable end to end.
        assert!(!panic_hard, "injected serve-layer panic (panic-hard)");
        schedule_payload(opts, ropts, module, digest, profiler, stats)
    }))
    .unwrap_or_else(|p| {
        Err(ContainmentCause::Panic {
            payload: treegion_par::panic_message(p.as_ref()),
        })
    })
}

/// Drives the module through [`Pipeline::run_function`] function by
/// function and renders the per-region result payload. Deterministic:
/// functions in module order, regions in outcome order.
fn schedule_payload(
    opts: &BatchOptions,
    ropts: &RobustOptions,
    module: &Module,
    digest: u64,
    profiler: &Profiler,
    stats: &ServeStats,
) -> Result<String, ContainmentCause> {
    let pipeline = Pipeline::with_options(&opts.machine, ropts.clone());
    let mut out = String::new();
    out.push_str(&format!("module @{}\n", module.name()));
    out.push_str(&format!("digest {digest:016x}\n"));
    let mut total = 0.0;
    let mut regions = 0usize;
    let mut events = 0usize;
    let mut body = String::new();
    for f in module.functions() {
        let run = pipeline
            .run_function(f, &opts.kind, profiler)
            .map_err(|e| ContainmentCause::Failure {
                message: e.to_string().replace('\n', " "),
            })?;
        for o in &run.result.outcomes {
            let t = o.estimated_time();
            total += t;
            body.push_str(&format!(
                "region func @{} #{} root {} level {} blocks {} ops {} len {} time {t}\n",
                run.formed.function.name(),
                o.region_index,
                o.region.root(),
                o.level,
                o.region.num_blocks(),
                o.lowered.num_ops(),
                o.schedule.length(),
            ));
        }
        regions += run.result.outcomes.len();
        for e in &run.result.events {
            if matches!(e.cause, SchedFailure::DeadlineExceeded { .. }) {
                bump(&stats.deadline);
            }
        }
        events += run.result.events.len();
    }
    out.push_str(&format!("regions {regions}\n"));
    out.push_str(&format!("events {events}\n"));
    out.push_str(&format!("time {total}\n"));
    out.push_str(&body);
    Ok(out)
}

/// Splits a quarantine file back into the original module text, the
/// request-side poison knobs, and the recorded cause label — everything
/// a replay needs to reproduce the crash. The header is the leading run
/// of `//` comment lines; the module text after it is byte-identical to
/// what the client sent (same FNV digest, so the ledger recognises it).
pub fn parse_quarantine(file_text: &str) -> (String, Poison, String) {
    let mut poison = Poison::default();
    let mut cause = String::new();
    let mut body_start = 0;
    for line in file_text.split_inclusive('\n') {
        let Some(rest) = line.trim_start().strip_prefix("//") else {
            break;
        };
        body_start += line.len();
        let rest = rest.trim();
        if let Some(c) = rest.strip_prefix("cause ") {
            cause = c.trim().to_string();
        } else if let Some(p) = rest.strip_prefix("poison ") {
            let (k, v) = p.split_once(' ').unwrap_or((p, ""));
            match k {
                "fault-seed" => poison.fault_seed = v.trim().parse().ok(),
                "panic-region" => poison.panic_region = v.trim().parse().ok(),
                "panic-hard" => poison.panic_hard = true,
                _ => {}
            }
        }
    }
    (file_text[body_start..].to_string(), poison, cause)
}
