//! Fault-tolerant scheduler-as-a-service: the `tgc serve` daemon.
//!
//! A long-lived process that accepts batches of tir modules over a
//! length-prefixed TCP protocol, fans them through the treegion
//! [`Pipeline`](treegion::Pipeline) on the shared worker pool, and
//! streams per-module results back — engineered so that one bad module
//! can never take the service (or its siblings in the batch) down:
//!
//! * **Containment** ([`engine`]) — every module runs under
//!   `catch_unwind` with an optional soft deadline escalated by a hard
//!   watchdog; a crash becomes a structured error reply.
//! * **Quarantine** — crashing modules are written to a replayable
//!   ledger (valid tir with a `//`-comment header), FNV-deduplicated,
//!   and fast-rejected on resubmission — across restarts.
//! * **Backpressure** ([`admission`]) — a bounded high-water mark on
//!   modules in flight; past it, requests are deterministically shed
//!   with a retry hint instead of queueing without bound.
//! * **Durability** — results live in a checksummed append-only disk
//!   cache (`treegion_eval::DiskCache`): every record is sealed and
//!   fsynced, startup runs a recovery scan that truncates torn tails,
//!   and a warm hit is byte-identical to the cold run that wrote it
//!   even after `kill -9` mid-write.
//! * **Observability** ([`stats`]) — a `stats` request reports hit
//!   rates, containment/shed/deadline counters, and per-stage timings
//!   from the pipeline's `PassObserver` hooks.
//!
//! The wire format ([`protocol`]) is deliberately boring: 4-byte
//! length-prefixed UTF-8 text frames, line-oriented inside, versioned
//! by a magic first line.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod admission;
pub mod engine;
pub mod histo;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;

pub use admission::{Admission, Permit};
pub use engine::{parse_quarantine, Engine, EngineConfig, ModuleReply, DEFAULT_CACHE_SHARDS};
pub use histo::{Histogram, HistogramSnapshot};
pub use loadgen::{run_loadgen, LoadReport, LoadgenConfig};
pub use protocol::{
    parse_request, parse_response, read_frame, render_compile, render_compile_seq, render_response,
    render_simple, write_frame, BatchOptions, ModuleRequest, Poison, Request, ResponseFrame,
    ResultStatus, Verb, MAGIC, MAX_FRAME,
};
pub use server::{Server, ServerConfig};
pub use stats::ServeStats;
