//! A fixed-bucket log-scale latency histogram.
//!
//! Both ends of the serve path use this one type: the daemon records
//! per-batch service time into it lock-free (atomic bucket counters,
//! rendered by `serve stats`), and `tgc loadgen` records client-observed
//! batch latency from many connection threads into a shared instance.
//!
//! ## Bucketing
//!
//! Microsecond values land in log-linear buckets (the HDR-histogram
//! shape, sized down): values below 16 µs get exact unit buckets, and
//! every power-of-two octave above that is split into 16 linear
//! sub-buckets, so the relative quantile error is bounded by 1/16 ≈ 6%
//! at every magnitude. The layout is fixed at compile time — recording
//! never allocates, and two histograms always have identical bucket
//! boundaries (they can be merged bucket-by-bucket).
//!
//! Quantiles are read from a [`HistogramSnapshot`]: the reported value
//! is the upper bound of the bucket where the cumulative count crosses
//! the requested rank, clamped to the maximum recorded value.

use std::sync::atomic::{AtomicU64, Ordering};

/// Unit buckets cover `0..LINEAR` µs exactly.
const LINEAR: u64 = 16;
/// log2 of `LINEAR`: the first octave that gets sub-bucket treatment.
const FIRST_OCTAVE: u32 = 4;
/// Sub-buckets per octave (1/16 relative resolution).
const SUB: usize = 16;
/// Highest octave tracked: 2^36 µs ≈ 19 h. Larger values clamp here.
const LAST_OCTAVE: u32 = 36;

/// Total bucket count.
pub const BUCKETS: usize = LINEAR as usize + (LAST_OCTAVE - FIRST_OCTAVE) as usize * SUB;

/// Maps a microsecond value to its bucket index.
fn bucket_of(us: u64) -> usize {
    if us < LINEAR {
        return us as usize;
    }
    let octave = (63 - us.leading_zeros()).min(LAST_OCTAVE - 1);
    let offset = ((us - (1u64 << octave)) >> (octave - FIRST_OCTAVE)).min(SUB as u64 - 1);
    LINEAR as usize + (octave - FIRST_OCTAVE) as usize * SUB + offset as usize
}

/// The (inclusive) upper bound of bucket `i`, in microseconds.
fn upper_bound(i: usize) -> u64 {
    if i < LINEAR as usize {
        return i as u64;
    }
    let octave = FIRST_OCTAVE + ((i - LINEAR as usize) / SUB) as u32;
    let offset = ((i - LINEAR as usize) % SUB) as u64;
    (1u64 << octave) + (offset + 1) * (1u64 << (octave - FIRST_OCTAVE)) - 1
}

/// A concurrent log-scale histogram of microsecond latencies.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation, lock-free.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] observation.
    pub fn record(&self, d: std::time::Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile reads. Concurrent recording
    /// keeps running; the snapshot is internally consistent enough for
    /// reporting (bucket reads are relaxed).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], with quantile accessors.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, µs.
    pub sum_us: u64,
    /// Largest observation, µs.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// The latency at quantile `q` in `[0, 1]`, µs: the upper bound of
    /// the bucket where the cumulative count reaches `ceil(q·count)`,
    /// clamped to the maximum recorded value. Returns 0 when empty.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Mean latency, µs (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Renders the stable `key value` lines for `serve stats` /
    /// `tgc loadgen`, each key prefixed with `prefix-`.
    #[must_use]
    pub fn render(&self, prefix: &str) -> String {
        format!(
            "{prefix}-count {}\n{prefix}-mean-us {}\n{prefix}-p50-us {}\n{prefix}-p90-us {}\n{prefix}-p99-us {}\n{prefix}-p999-us {}\n{prefix}-max-us {}\n",
            self.count,
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.90),
            self.quantile_us(0.99),
            self.quantile_us(0.999),
            self.max_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_the_range() {
        let mut prev = 0;
        for i in 0..BUCKETS {
            let ub = upper_bound(i);
            assert!(i == 0 || ub > prev, "bucket {i}: {ub} <= {prev}");
            prev = ub;
        }
        // Every value maps into a bucket whose bounds contain it.
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1_000,
            65_535,
            1 << 20,
            1 << 35,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "value {v} → bucket {b} out of range");
            if v <= upper_bound(BUCKETS - 1) {
                assert!(v <= upper_bound(b), "value {v} above bucket {b} bound");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record_us(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.quantile_us(0.0), 0);
        assert_eq!(s.max_us, 15);
        assert_eq!(s.quantile_us(1.0), 15);
    }

    #[test]
    fn quantiles_are_within_relative_error() {
        let h = Histogram::new();
        // Uniform 1..=10_000 µs: p50 ≈ 5000, p99 ≈ 9900.
        for v in 1..=10_000u64 {
            h.record_us(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile_us(0.50) as f64;
        let p99 = s.quantile_us(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.08, "p50 = {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99 = {p99}");
        assert_eq!(s.quantile_us(1.0), 10_000);
        assert_eq!(s.mean_us(), 5_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile_us(0.5), 0);
        assert_eq!(s.mean_us(), 0);
        let r = s.render("latency");
        assert!(r.contains("latency-count 0"));
        assert!(r.contains("latency-p999-us 0"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record_us(t * 1000 + i % 997);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn render_emits_every_fixed_key() {
        let h = Histogram::new();
        h.record_us(123);
        let r = h.snapshot().render("latency");
        for key in [
            "latency-count",
            "latency-mean-us",
            "latency-p50-us",
            "latency-p90-us",
            "latency-p99-us",
            "latency-p999-us",
            "latency-max-us",
        ] {
            assert!(r.lines().any(|l| l.starts_with(key)), "missing {key}:\n{r}");
        }
    }
}
