//! Server-wide counters and the `/stats` report.
//!
//! Every counter is a relaxed atomic — stats are observability, not
//! control flow — and the rendered report is the same line-oriented
//! `key value` text as the rest of the workspace, so the CI smoke job
//! can `grep` it. Per-stage timings come from the engine's shared
//! [`treegion::Profiler`], the same `PassObserver` hooks that feed
//! `tgc schedule --profile`. Batch service latency is recorded into a
//! fixed-bucket log-scale [`Histogram`] and rendered as the stable
//! `latency-*` key set — the same keys `tgc loadgen` reports client-side.

use crate::histo::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use treegion::Profiler;
use treegion_eval::{CacheStats, DiskRecovery, DiskStats};

/// Monotonic service counters (see [`ServeStats::render`] for the keys).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Request frames accepted (any verb).
    pub requests: AtomicU64,
    /// Compile batches processed.
    pub batches: AtomicU64,
    /// Modules scheduled successfully (warm or cold).
    pub ok: AtomicU64,
    /// Modules answered with a structured error.
    pub errors: AtomicU64,
    /// Modules shed by admission control.
    pub shed: AtomicU64,
    /// Contained crashes (panic or watchdog/deadline escalation).
    pub contained: AtomicU64,
    /// Deadline trips among the contained crashes.
    pub deadline: AtomicU64,
    /// New quarantine files written.
    pub quarantined: AtomicU64,
    /// Known-quarantined modules fast-rejected without re-running.
    pub quarantine_rejects: AtomicU64,
    /// Modules served from the durable cache.
    pub warm: AtomicU64,
    /// Modules scheduled cold (and, when cacheable, stored).
    pub cold: AtomicU64,
    /// Hostile quarantine-directory entries skipped during the ledger
    /// rebuild (non-ledger filenames, subdirectories).
    pub ledger_skipped: AtomicU64,
    /// Connections reaped after exhausting their idle budget.
    pub idle_reaped: AtomicU64,
    /// Connections dropped for stalling mid-frame (read timeout after a
    /// frame had started).
    pub read_stalls: AtomicU64,
    /// Connections closed cleanly by the `close` verb.
    pub closes: AtomicU64,
    /// Per-batch service latency (frame accepted → batch-end written).
    pub latency: Histogram,
}

/// Bumps a counter by one.
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Everything [`ServeStats::render`] needs beyond the counters
/// themselves: cache-layer stats, the startup recovery verdict, the
/// shared profiler, admission gauges, the chaos snapshot, and the
/// sharding/striping observability feeds.
pub struct RenderInputs<'a> {
    /// Formation/time/disk layer hit rates.
    pub cache: CacheStats,
    /// Startup cache-recovery verdict (None without a disk tier).
    pub recovery: Option<DiskRecovery>,
    /// Per-stage timing source.
    pub profiler: &'a Profiler,
    /// Modules currently admitted.
    pub inflight: usize,
    /// Admission high-water mark.
    pub high_water: usize,
    /// Armed chaos-plan counters (None renders zeros).
    pub chaos: Option<treegion_chaos::ChaosSnapshot>,
    /// Per-shard disk-tier counters (empty without a disk tier).
    pub shards: Vec<DiskStats>,
    /// Quarantine ledger stripe count.
    pub quarantine_stripes: usize,
    /// Quarantine ledger lock contention events.
    pub quarantine_contention: u64,
}

impl Default for RenderInputs<'_> {
    fn default() -> Self {
        // A static empty profiler so tests can build inputs tersely.
        static EMPTY: std::sync::OnceLock<Profiler> = std::sync::OnceLock::new();
        RenderInputs {
            cache: CacheStats::default(),
            recovery: None,
            profiler: EMPTY.get_or_init(Profiler::new),
            inflight: 0,
            high_water: 0,
            chaos: None,
            shards: Vec::new(),
            quarantine_stripes: 0,
            quarantine_contention: 0,
        }
    }
}

impl ServeStats {
    /// Renders the `/stats` body: service counters, cache layers (warm /
    /// cold hit rates, per-shard hit/contention counters, the startup
    /// recovery verdict), the latency histogram, and per-stage timings.
    pub fn render(&self, inputs: &RenderInputs) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::new();
        let mut kv = |k: &str, v: String| out.push_str(&format!("{k} {v}\n"));
        kv("requests", g(&self.requests).to_string());
        kv("batches", g(&self.batches).to_string());
        kv("ok", g(&self.ok).to_string());
        kv("errors", g(&self.errors).to_string());
        kv("shed", g(&self.shed).to_string());
        kv("contained", g(&self.contained).to_string());
        kv("deadline", g(&self.deadline).to_string());
        kv("quarantined", g(&self.quarantined).to_string());
        kv(
            "quarantine-rejects",
            g(&self.quarantine_rejects).to_string(),
        );
        kv("quarantine-stripes", inputs.quarantine_stripes.to_string());
        kv(
            "quarantine-contention",
            inputs.quarantine_contention.to_string(),
        );
        kv("cache-warm", g(&self.warm).to_string());
        kv("cache-cold", g(&self.cold).to_string());
        let (w, c) = (g(&self.warm), g(&self.cold));
        let rate = if w + c == 0 {
            0.0
        } else {
            w as f64 / (w + c) as f64
        };
        kv("cache-warm-rate", format!("{rate:.3}"));
        kv("inflight", inputs.inflight.to_string());
        kv("high-water", inputs.high_water.to_string());
        kv("ledger-skipped", g(&self.ledger_skipped).to_string());
        kv("idle-reaped", g(&self.idle_reaped).to_string());
        kv("read-stalls", g(&self.read_stalls).to_string());
        kv("closes", g(&self.closes).to_string());
        // The latency histogram renders unconditionally (zeros before the
        // first batch) so the key set is stable for dashboards and the CI
        // loadgen-smoke grep.
        out.push_str(&self.latency.snapshot().render("latency"));
        let mut kv = |k: &str, v: String| out.push_str(&format!("{k} {v}\n"));
        // Chaos-layer counters render unconditionally (zeros when no
        // plan is armed) so dashboards and the CI smoke grep see a
        // stable key set.
        let snap = inputs.chaos.clone().unwrap_or_default();
        kv(
            "chaos-armed",
            if snap.mode.is_empty() {
                "off".to_string()
            } else {
                format!("{} seed={}", snap.mode, snap.seed)
            },
        );
        kv("chaos-ops", snap.ops.to_string());
        kv("chaos-injected-errors", snap.injected_errors.to_string());
        kv("chaos-short-writes", snap.short_writes.to_string());
        kv("chaos-crashed", snap.crashed.to_string());
        kv(
            "disk-tier",
            format!(
                "hits={} misses={}",
                inputs.cache.disk.hits, inputs.cache.disk.misses
            ),
        );
        // Per-shard counters: the striped layout's observability. The
        // shard count renders unconditionally; the per-shard lines only
        // when a disk tier is attached.
        kv("disk-shards", inputs.shards.len().to_string());
        let total_contention: u64 = inputs.shards.iter().map(|s| s.contention).sum();
        kv("disk-contention", total_contention.to_string());
        for (k, s) in inputs.shards.iter().enumerate() {
            kv(
                &format!("disk-shard-{k}"),
                format!(
                    "hits={} misses={} entries={} contention={}",
                    s.hits, s.misses, s.entries, s.contention
                ),
            );
        }
        kv(
            "formation-tier",
            format!(
                "hits={} misses={}",
                inputs.cache.formation.hits, inputs.cache.formation.misses
            ),
        );
        if let Some(r) = inputs.recovery {
            kv(
                "cache-recovery",
                format!(
                    "replayed={} dropped={} torn-tail={} compacted={}",
                    r.replayed, r.dropped, r.torn_tail, r.compacted
                ),
            );
        }
        let mut hazard_hits = 0u64;
        let mut deferral_parks = 0u64;
        let mut pressure_peak = 0u32;
        let mut pressure_parks = 0u64;
        let mut spills = 0u64;
        for p in inputs.profiler.report() {
            kv(
                &format!("stage-{}", p.stage.name()),
                format!("ns={} calls={}", p.nanos, p.calls),
            );
            hazard_hits += p.stats.hazard_hits;
            deferral_parks += p.stats.deferral_parks;
            pressure_peak = pressure_peak.max(p.stats.pressure_peak);
            pressure_parks += p.stats.pressure_parks;
            spills += p.stats.spills;
        }
        // Hazard-automaton counters, summed from the same stage stats the
        // profiler accumulates (only list-sched ever reports nonzero),
        // plus the per-preset state counts (static per build — a blown-up
        // state space shows here before it shows in memory).
        kv("automaton-hazard-hits", hazard_hits.to_string());
        kv("automaton-parks", deferral_parks.to_string());
        // Register-file counters from the same stage stats: peak combined
        // pressure across every accepted schedule, ceiling parks, and
        // spill ops inserted. All zero while the daemon compiles for the
        // default unbounded machine, but the keys render unconditionally
        // so the CI serve-smoke grep sees a stable key set.
        kv("pressure-peak", pressure_peak.to_string());
        kv("pressure-parks", pressure_parks.to_string());
        kv("spills", spills.to_string());
        use treegion_machine::MachineModel;
        kv(
            "automaton-states",
            [
                MachineModel::model_1u(),
                MachineModel::model_4u(),
                MachineModel::model_8u(),
                MachineModel::model_4u_asym(),
            ]
            .iter()
            .map(|m| format!("{}={}", m.name(), m.hazard_automaton().state_count()))
            .collect::<Vec<_>>()
            .join(" "),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_carries_every_counter() {
        let s = ServeStats::default();
        bump(&s.ok);
        bump(&s.ok);
        bump(&s.warm);
        bump(&s.shed);
        s.latency.record_us(1_500);
        let text = s.render(&RenderInputs {
            inflight: 3,
            high_water: 64,
            ..RenderInputs::default()
        });
        assert!(text.contains("ok 2\n"), "{text}");
        assert!(text.contains("shed 1\n"), "{text}");
        assert!(text.contains("cache-warm 1\n"), "{text}");
        assert!(text.contains("cache-warm-rate 1.000\n"), "{text}");
        assert!(text.contains("inflight 3\n"), "{text}");
        assert!(text.contains("high-water 64\n"), "{text}");
        assert!(text.contains("ledger-skipped 0\n"), "{text}");
        assert!(text.contains("idle-reaped 0\n"), "{text}");
        assert!(text.contains("read-stalls 0\n"), "{text}");
        assert!(text.contains("closes 0\n"), "{text}");
        assert!(text.contains("latency-count 1\n"), "{text}");
        assert!(text.contains("latency-p50-us "), "{text}");
        assert!(text.contains("latency-p90-us "), "{text}");
        assert!(text.contains("latency-p99-us "), "{text}");
        assert!(text.contains("latency-p999-us "), "{text}");
        assert!(text.contains("latency-max-us 1500\n"), "{text}");
        assert!(text.contains("quarantine-stripes 0\n"), "{text}");
        assert!(text.contains("quarantine-contention 0\n"), "{text}");
        assert!(text.contains("disk-shards 0\n"), "{text}");
        assert!(text.contains("disk-contention 0\n"), "{text}");
        assert!(text.contains("chaos-armed off\n"), "{text}");
        assert!(text.contains("chaos-ops 0\n"), "{text}");
        assert!(text.contains("chaos-injected-errors 0\n"), "{text}");
        assert!(text.contains("chaos-short-writes 0\n"), "{text}");
        assert!(text.contains("chaos-crashed false\n"), "{text}");
        assert!(text.contains("stage-formation"), "{text}");
        assert!(text.contains("automaton-hazard-hits 0\n"), "{text}");
        assert!(text.contains("automaton-parks 0\n"), "{text}");
        assert!(text.contains("pressure-peak 0\n"), "{text}");
        assert!(text.contains("pressure-parks 0\n"), "{text}");
        assert!(text.contains("spills 0\n"), "{text}");
        assert!(text.contains("automaton-states "), "{text}");
        assert!(text.contains("4U-asym=36"), "{text}");
        // An armed plan renders its live counters.
        let plan = treegion_chaos::FaultPlan::parse("err-every:2", 7).unwrap();
        let text = s.render(&RenderInputs {
            chaos: Some(plan.snapshot()),
            ..RenderInputs::default()
        });
        assert!(text.contains("chaos-armed err-every:2 seed=7\n"), "{text}");
        // Recovery line appears when a scan ran.
        let text = s.render(&RenderInputs {
            recovery: Some(DiskRecovery {
                replayed: 2,
                dropped: 1,
                torn_tail: true,
                compacted: true,
            }),
            ..RenderInputs::default()
        });
        assert!(
            text.contains("cache-recovery replayed=2 dropped=1 torn-tail=true compacted=true"),
            "{text}"
        );
    }

    #[test]
    fn per_shard_lines_render_with_a_disk_tier() {
        let s = ServeStats::default();
        let text = s.render(&RenderInputs {
            shards: vec![
                DiskStats {
                    hits: 5,
                    misses: 1,
                    entries: 3,
                    contention: 2,
                },
                DiskStats::default(),
            ],
            quarantine_stripes: 16,
            quarantine_contention: 4,
            ..RenderInputs::default()
        });
        assert!(text.contains("disk-shards 2\n"), "{text}");
        assert!(text.contains("disk-contention 2\n"), "{text}");
        assert!(
            text.contains("disk-shard-0 hits=5 misses=1 entries=3 contention=2\n"),
            "{text}"
        );
        assert!(
            text.contains("disk-shard-1 hits=0 misses=0 entries=0 contention=0\n"),
            "{text}"
        );
        assert!(text.contains("quarantine-stripes 16\n"), "{text}");
        assert!(text.contains("quarantine-contention 4\n"), "{text}");
    }
}
