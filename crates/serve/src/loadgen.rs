//! `tgc loadgen`: a seeded open-loop load harness for the serve daemon.
//!
//! Drives a running server with `connections` concurrent keep-alive
//! connections, each holding up to `pipeline_depth` compile batches in
//! flight (sequence-id tagged, answered FIFO), for a fixed wall-clock
//! duration. The workload is a deterministic mix drawn from
//! `treegion_workloads` generators, so two runs with the same seed send
//! byte-identical batches — the knobs change *pressure*, never *work*.
//!
//! Client-observed batch latency (enqueue → `batch-end`) lands in one
//! shared [`Histogram`]; the report carries sustained requests/s plus
//! p50/p90/p99/p999.
//!
//! `reconnect` mode opens a fresh connection per batch and never
//! pipelines — the pre-keep-alive protocol shape — so the same binary
//! measures both sides of the comparison recorded in `BENCH_sched.json`.

use crate::histo::Histogram;
use crate::protocol::{
    parse_response, read_frame, render_compile_seq, render_simple, write_frame, BatchOptions,
    ModuleRequest, Poison, Verb,
};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use treegion_rng::StdRng;
use treegion_workloads::{generate, BenchmarkSpec};

/// Load harness knobs. Every field is plumbed through `tgc loadgen`
/// flags; the defaults are the flag defaults.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Batches in flight per connection. `1` sends a batch and waits
    /// for its reply (closed loop per connection).
    pub pipeline_depth: usize,
    /// Wall-clock run length in milliseconds.
    pub duration_ms: u64,
    /// Workload seed: same seed, same batches.
    pub seed: u64,
    /// Modules per compile batch.
    pub batch_modules: usize,
    /// Distinct modules in the generated pool (batches draw from these,
    /// so a warm cache converges onto `pool` entries).
    pub pool: usize,
    /// Open a fresh connection per batch instead of keeping one alive —
    /// the pre-pipelining baseline shape. Forces an effective depth
    /// of 1.
    pub reconnect: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".into(),
            connections: 8,
            pipeline_depth: 8,
            duration_ms: 2_000,
            seed: 0xC0FFEE,
            batch_modules: 2,
            pool: 16,
            reconnect: false,
        }
    }
}

/// Shared tallies, written by every connection thread.
#[derive(Debug, Default)]
struct Tallies {
    batches: AtomicU64,
    modules: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    seq_mismatches: AtomicU64,
    conn_errors: AtomicU64,
    latency: Histogram,
}

/// What a load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Completed batches (a `batch-end` frame arrived).
    pub batches: u64,
    /// Module results received.
    pub modules: u64,
    /// `result ok` frames.
    pub ok: u64,
    /// `result error` frames.
    pub errors: u64,
    /// `result shed` frames.
    pub shed: u64,
    /// Replies whose echoed sequence id broke FIFO order.
    pub seq_mismatches: u64,
    /// Connections that died mid-run (connect/read/write failures).
    pub conn_errors: u64,
    /// Measured wall-clock, milliseconds.
    pub elapsed_ms: u64,
    /// Client-observed batch latency.
    pub latency: crate::histo::HistogramSnapshot,
}

impl LoadReport {
    /// Sustained module results per second over the measured window.
    #[must_use]
    pub fn req_per_sec(&self) -> f64 {
        if self.elapsed_ms == 0 {
            return 0.0;
        }
        self.modules as f64 * 1000.0 / self.elapsed_ms as f64
    }

    /// Mean microseconds per module result (0 when nothing completed) —
    /// the unit `bench_sched` records for the serve kernels.
    #[must_use]
    pub fn us_per_module(&self) -> f64 {
        if self.modules == 0 {
            return 0.0;
        }
        self.elapsed_ms as f64 * 1000.0 / self.modules as f64
    }

    /// Renders the stable `key value` report (same shape as
    /// `serve stats` bodies).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("batches {}\n", self.batches));
        out.push_str(&format!("modules {}\n", self.modules));
        out.push_str(&format!("ok {}\n", self.ok));
        out.push_str(&format!("errors {}\n", self.errors));
        out.push_str(&format!("shed {}\n", self.shed));
        out.push_str(&format!("seq-mismatches {}\n", self.seq_mismatches));
        out.push_str(&format!("conn-errors {}\n", self.conn_errors));
        out.push_str(&format!("elapsed-ms {}\n", self.elapsed_ms));
        out.push_str(&format!("req-per-sec {:.1}\n", self.req_per_sec()));
        out.push_str(&self.latency.render("latency"));
        out
    }
}

/// Builds the deterministic module pool: `pool` distinct tiny modules,
/// text rendered once up front so connection threads only clone strings.
fn module_pool(seed: u64, pool: usize) -> Vec<String> {
    (0..pool.max(1))
        .map(|i| {
            let spec = BenchmarkSpec::tiny(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64);
            treegion_ir::print_module(&generate(&spec))
        })
        .collect()
}

/// Draws one batch from the pool, deterministically per (seed, conn,
/// batch index).
fn draw_batch(rng: &mut StdRng, pool: &[String], n: usize) -> Vec<ModuleRequest> {
    (0..n.max(1))
        .map(|_| ModuleRequest {
            text: pool[(rng.next_u64() % pool.len() as u64) as usize].clone(),
            poison: Poison::default(),
        })
        .collect()
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = s.set_nodelay(true);
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = s.set_write_timeout(Some(Duration::from_secs(10)));
    Ok(s)
}

/// Reads reply frames until the batch tagged `want_seq` completes.
/// Returns the (ok, errors, shed, mismatches) counts for that batch.
fn read_batch_replies(
    stream: &mut TcpStream,
    want_seq: Option<u64>,
) -> Result<(u64, u64, u64, u64), String> {
    let (mut ok, mut errors, mut shed, mut mismatches) = (0u64, 0u64, 0u64, 0u64);
    loop {
        let frame = read_frame(stream)?.ok_or("eof mid-batch")?;
        let resp = parse_response(&frame)?;
        match resp.kind.as_str() {
            "result" => {
                match resp.status {
                    Some(crate::protocol::ResultStatus::Ok) => ok += 1,
                    Some(crate::protocol::ResultStatus::Error) => errors += 1,
                    Some(crate::protocol::ResultStatus::Shed) => shed += 1,
                    None => {}
                }
                if let Some(want) = want_seq {
                    if resp.key("seq") != Some(want.to_string().as_str()) {
                        mismatches += 1;
                    }
                }
            }
            "batch-end" => {
                if let Some(want) = want_seq {
                    if resp.key("seq") != Some(want.to_string().as_str()) {
                        mismatches += 1;
                    }
                }
                return Ok((ok, errors, shed, mismatches));
            }
            "error" => {
                return Err(format!(
                    "server error: {}",
                    resp.key("reason").unwrap_or("")
                ))
            }
            other => return Err(format!("unexpected frame kind `{other}` mid-batch")),
        }
    }
}

/// One reconnect-mode connection worker: fresh connection per batch,
/// one batch in flight — the pre-keep-alive baseline.
fn run_reconnect_conn(
    config: &LoadgenConfig,
    pool: &[String],
    conn_ix: usize,
    deadline: Instant,
    tallies: &Tallies,
) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (conn_ix as u64).wrapping_mul(0x9E3779B9));
    let options = BatchOptions::default();
    while Instant::now() < deadline {
        let modules = draw_batch(&mut rng, pool, config.batch_modules);
        let started = Instant::now();
        let outcome = connect(&config.addr).and_then(|mut stream| {
            write_frame(&mut stream, &render_compile_seq(&options, None, &modules))?;
            read_batch_replies(&mut stream, None)
        });
        match outcome {
            Ok((ok, errors, shed, _)) => {
                tallies.latency.record(started.elapsed());
                tallies.batches.fetch_add(1, Ordering::Relaxed);
                tallies
                    .modules
                    .fetch_add(ok + errors + shed, Ordering::Relaxed);
                tallies.ok.fetch_add(ok, Ordering::Relaxed);
                tallies.errors.fetch_add(errors, Ordering::Relaxed);
                tallies.shed.fetch_add(shed, Ordering::Relaxed);
            }
            Err(_) => {
                tallies.conn_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// One keep-alive connection worker: a sender half pipelines
/// sequence-tagged batches through a single connection while a receiver
/// thread drains replies FIFO; `close` drains the window at the end.
fn run_pipelined_conn(
    config: &LoadgenConfig,
    pool: &[String],
    conn_ix: usize,
    deadline: Instant,
    tallies: &Tallies,
) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (conn_ix as u64).wrapping_mul(0x9E3779B9));
    let options = BatchOptions::default();
    let Ok(mut stream) = connect(&config.addr) else {
        tallies.conn_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let Ok(mut rstream) = stream.try_clone() else {
        tallies.conn_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let depth = config.pipeline_depth.max(1);
    // The window: a bounded token channel. The sender blocks on `send`
    // once `depth` batches are unanswered; the receiver frees a slot as
    // each `batch-end` arrives (FIFO, like the server answers).
    let (tok_tx, tok_rx) = mpsc::sync_channel::<(u64, Instant)>(depth - 1);
    let receiver_dead = Arc::new(AtomicBool::new(false));
    let receiver_dead2 = Arc::clone(&receiver_dead);
    std::thread::scope(|s| {
        let receiver = s.spawn(move || {
            while let Ok((seq, started)) = tok_rx.recv() {
                match read_batch_replies(&mut rstream, Some(seq)) {
                    Ok((ok, errors, shed, mismatches)) => {
                        tallies.latency.record(started.elapsed());
                        tallies.batches.fetch_add(1, Ordering::Relaxed);
                        tallies
                            .modules
                            .fetch_add(ok + errors + shed, Ordering::Relaxed);
                        tallies.ok.fetch_add(ok, Ordering::Relaxed);
                        tallies.errors.fetch_add(errors, Ordering::Relaxed);
                        tallies.shed.fetch_add(shed, Ordering::Relaxed);
                        tallies
                            .seq_mismatches
                            .fetch_add(mismatches, Ordering::Relaxed);
                    }
                    Err(_) => {
                        tallies.conn_errors.fetch_add(1, Ordering::Relaxed);
                        receiver_dead2.store(true, Ordering::Release);
                        return;
                    }
                }
            }
        });
        let mut seq = 0u64;
        while Instant::now() < deadline && !receiver_dead.load(Ordering::Acquire) {
            let modules = draw_batch(&mut rng, pool, config.batch_modules);
            let frame = render_compile_seq(&options, Some(seq), &modules);
            // Claim a window slot first (blocks at full depth), then put
            // the batch on the wire.
            if tok_tx.send((seq, Instant::now())).is_err() {
                break;
            }
            if write_frame(&mut stream, &frame).is_err() {
                tallies.conn_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
            seq += 1;
        }
        drop(tok_tx); // receiver drains the window, then exits
        let _ = receiver.join();
        // Protocol FIN: tell the server this connection is done.
        if !receiver_dead.load(Ordering::Acquire)
            && write_frame(&mut stream, &render_simple(Verb::Close)).is_ok()
        {
            let _ = read_frame(&mut stream); // `closing`
        }
    });
}

/// Runs the load harness against a live server and reports what it
/// measured. Deterministic in the workload it sends (not in timing).
///
/// # Errors
///
/// Fails when no connection completed a single batch — the server is
/// unreachable or rejecting everything.
pub fn run_loadgen(config: &LoadgenConfig) -> Result<LoadReport, String> {
    let pool = module_pool(config.seed, config.pool);
    let tallies = Tallies::default();
    let started = Instant::now();
    let deadline = started + Duration::from_millis(config.duration_ms.max(1));
    std::thread::scope(|s| {
        for conn_ix in 0..config.connections.max(1) {
            let (config, pool, tallies) = (&*config, &pool[..], &tallies);
            s.spawn(move || {
                if config.reconnect {
                    run_reconnect_conn(config, pool, conn_ix, deadline, tallies);
                } else {
                    run_pipelined_conn(config, pool, conn_ix, deadline, tallies);
                }
            });
        }
    });
    let elapsed_ms = (started.elapsed().as_millis() as u64).max(1);
    let report = LoadReport {
        batches: tallies.batches.load(Ordering::Relaxed),
        modules: tallies.modules.load(Ordering::Relaxed),
        ok: tallies.ok.load(Ordering::Relaxed),
        errors: tallies.errors.load(Ordering::Relaxed),
        shed: tallies.shed.load(Ordering::Relaxed),
        seq_mismatches: tallies.seq_mismatches.load(Ordering::Relaxed),
        conn_errors: tallies.conn_errors.load(Ordering::Relaxed),
        elapsed_ms,
        latency: tallies.latency.snapshot(),
    };
    if report.batches == 0 {
        return Err(format!(
            "loadgen completed no batches against {} ({} connection errors)",
            config.addr, report.conn_errors
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_pool_is_deterministic_and_distinct() {
        let a = module_pool(7, 4);
        let b = module_pool(7, 4);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn report_math_is_sane() {
        let r = LoadReport {
            batches: 10,
            modules: 20,
            ok: 18,
            errors: 1,
            shed: 1,
            seq_mismatches: 0,
            conn_errors: 0,
            elapsed_ms: 2_000,
            latency: Histogram::new().snapshot(),
        };
        assert!((r.req_per_sec() - 10.0).abs() < 1e-9);
        assert!((r.us_per_module() - 100_000.0).abs() < 1e-9);
        let text = r.render();
        assert!(text.contains("req-per-sec 10.0"));
        assert!(text.contains("latency-p99-us"));
    }

    #[test]
    fn loadgen_against_nothing_fails_cleanly() {
        let config = LoadgenConfig {
            addr: "127.0.0.1:1".into(), // nothing listens here
            connections: 1,
            duration_ms: 50,
            ..LoadgenConfig::default()
        };
        let err = run_loadgen(&config).unwrap_err();
        assert!(err.contains("no batches"), "{err}");
    }
}
