//! The wire protocol: length-prefixed frames carrying line-oriented text.
//!
//! Framing is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8. The payload is plain text in the workspace's usual
//! line-oriented style (the operator can read a capture with `xxd` and
//! `grep`), with a versioned first line:
//!
//! ```text
//! tgc-serve v1 compile          request: verb line
//! kind tree                     option lines (defaults mirror the CLI)
//! machine 4u
//! heuristic global-weight
//! dompar
//! deadline-ms 200
//!                               blank line, then the batch body
//! module @a { ... }             one or more tir modules,
//! ---                           separated by `---` lines;
//! !panic-region 0               `!`-lines poison the next module only
//! module @b { ... }
//! ```
//!
//! Verbs: `compile`, `stats`, `ping`, `shutdown`, `close`. The server
//! answers a compile batch with one `result` frame per module **in input
//! order** (streamed as each finishes admission/scheduling) and a final
//! `batch-end` frame; other verbs get a single frame.
//!
//! ## Keep-alive pipelining
//!
//! A connection carries any number of batches back-to-back. A compile
//! request may carry a `seq N` option line — an opaque per-batch
//! sequence id the server echoes as a `seq` key on every `result` and
//! `batch-end` frame of that batch, so a client with several batches in
//! flight can demultiplex replies (which always arrive in submission
//! order — the server processes one connection's batches FIFO while
//! *reading ahead* on the socket). The `close` verb is the protocol's
//! FIN equivalent: the server finishes every batch already accepted on
//! the connection, answers `closing`, and closes its end.
//!
//! A result frame's body after the blank line is exactly the payload the
//! disk cache stores, so a warm hit is byte-identical to the cold run
//! that populated it — the property the kill-9 drill asserts.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use treegion::{Heuristic, RegionConfig, TailDupLimits};
use treegion_machine::MachineModel;

/// Protocol identifier prefixing every frame.
pub const MAGIC: &str = "tgc-serve v1";

/// Upper bound on a frame payload (16 MiB): a garbage length prefix must
/// not make the server allocate unbounded memory.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; refuses payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), String> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME as usize {
        return Err(format!("frame too large ({} bytes)", bytes.len()));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(bytes))
        .and_then(|()| w.flush())
        .map_err(|e| format!("write: {e}"))
}

/// What one timeout-aware read attempt produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(String),
    /// Clean EOF at a frame boundary (the peer hung up between
    /// requests).
    Eof,
    /// The socket's read timeout expired **before any header byte
    /// arrived** — the connection is merely idle, not broken. The
    /// caller decides whether its idle budget is exhausted.
    IdleTimeout,
}

/// Reads one length-prefixed frame from a socket that may carry a read
/// timeout. A timeout at a frame boundary is reported as
/// [`FrameEvent::IdleTimeout`] (retryable); a timeout *mid-frame* means
/// the peer stalled after starting a frame and is an error — waiting
/// longer would pin the handler on a wedged sender.
///
/// # Errors
///
/// Truncated frames, oversized lengths, non-UTF-8 payloads, mid-frame
/// stalls (message starts with `stalled`), and I/O errors.
pub fn read_frame_event(r: &mut impl Read) -> Result<FrameEvent, String> {
    let timed_out = |e: &std::io::Error| {
        matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    };
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(FrameEvent::Eof),
            Ok(0) => return Err("truncated frame header".into()),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if timed_out(&e) && got == 0 => return Ok(FrameEvent::IdleTimeout),
            Err(e) if timed_out(&e) => return Err("stalled peer (mid-header timeout)".into()),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(format!("frame length {len} exceeds cap {MAX_FRAME}"));
    }
    let mut buf = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err("truncated frame body".into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if timed_out(&e) => return Err("stalled peer (mid-body timeout)".into()),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    String::from_utf8(buf)
        .map(FrameEvent::Frame)
        .map_err(|_| "frame is not UTF-8".into())
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary (the peer hung up between requests). On a socket with a
/// read timeout, an idle timeout is an error here — clients waiting on
/// a response use this entry point, and for them silence *is* failure.
///
/// # Errors
///
/// Truncated frames, oversized lengths, non-UTF-8 payloads, timeouts,
/// and I/O errors all fail with a message.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, String> {
    match read_frame_event(r)? {
        FrameEvent::Frame(f) => Ok(Some(f)),
        FrameEvent::Eof => Ok(None),
        FrameEvent::IdleTimeout => Err("read timed out waiting for a frame".into()),
    }
}

/// The request verbs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// Schedule a batch of modules.
    Compile,
    /// Report counters, cache layers, and per-stage timings.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful drain: finish in-flight work, checkpoint, exit.
    Shutdown,
    /// Connection FIN: finish every batch accepted on this connection,
    /// answer `closing`, close the connection (the server keeps
    /// running).
    Close,
}

/// Batch-wide scheduling options (defaults mirror `tgc schedule`).
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Region former (`kind` line).
    pub kind: RegionConfig,
    /// Target machine (`machine` line).
    pub machine: MachineModel,
    /// List-scheduling heuristic (`heuristic` line).
    pub heuristic: Heuristic,
    /// Dominator parallelism (`dompar` flag line).
    pub dompar: bool,
    /// Per-module soft deadline in ms (`deadline-ms` line); the server
    /// may also impose its own default.
    pub deadline_ms: Option<u64>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            kind: RegionConfig::Treegion,
            machine: MachineModel::model_4u(),
            heuristic: Heuristic::GlobalWeight,
            dompar: false,
            deadline_ms: None,
        }
    }
}

/// Per-module poison knobs (`!`-lines): deterministic fault injection so
/// one module of a batch can crash while its siblings stay clean.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Poison {
    /// `!fault-seed N` — scheduler fault campaign.
    pub fault_seed: Option<u64>,
    /// `!panic-region N` — panic while scheduling region N (contained
    /// and recovered *inside* the pipeline's fallback chain).
    pub panic_region: Option<usize>,
    /// `!panic-hard` — panic at the serve layer, outside the pipeline's
    /// own containment: exercises the per-request `catch_unwind` and
    /// the quarantine path end to end.
    pub panic_hard: bool,
}

impl Poison {
    /// `true` when any knob is set (poisoned results are never cached).
    pub fn is_set(&self) -> bool {
        self.fault_seed.is_some() || self.panic_region.is_some() || self.panic_hard
    }
}

/// One module of a compile batch.
#[derive(Clone, Debug)]
pub struct ModuleRequest {
    /// The module's tir text.
    pub text: String,
    /// Injection knobs for this module only.
    pub poison: Poison,
}

/// A parsed request frame.
#[derive(Clone, Debug)]
pub struct Request {
    /// What the client wants.
    pub verb: Verb,
    /// Batch options (defaults when absent).
    pub options: BatchOptions,
    /// Pipelining sequence id (`seq` option line): echoed on every
    /// frame of this batch's reply. `None` for unpipelined clients.
    pub seq: Option<u64>,
    /// The batch body (empty for non-compile verbs).
    pub modules: Vec<ModuleRequest>,
}

fn parse_kind(s: &str) -> Result<RegionConfig, String> {
    match s {
        "bb" => Ok(RegionConfig::BasicBlock),
        "slr" => Ok(RegionConfig::Slr),
        "sb" => Ok(RegionConfig::Superblock),
        "tree" => Ok(RegionConfig::Treegion),
        other => match other.strip_prefix("tree-td") {
            Some(rest) => {
                let mut limits = TailDupLimits::expansion_2_0();
                if let Some(v) = rest.strip_prefix(':') {
                    limits.code_expansion = v
                        .parse()
                        .map_err(|_| format!("bad expansion limit `{v}`"))?;
                }
                Ok(RegionConfig::TreegionTd(limits))
            }
            None => Err(format!("unknown region kind `{other}`")),
        },
    }
}

fn parse_machine(s: &str) -> Result<MachineModel, String> {
    match s.to_ascii_lowercase().as_str() {
        "1u" => Ok(MachineModel::model_1u()),
        "4u" => Ok(MachineModel::model_4u()),
        "8u" => Ok(MachineModel::model_8u()),
        other => {
            let width: usize = other
                .parse()
                .map_err(|_| format!("unknown machine `{s}`"))?;
            if width == 0 {
                return Err("issue width must be positive".into());
            }
            Ok(MachineModel::builder(format!("{width}U"), width).build())
        }
    }
}

fn parse_heuristic(s: &str) -> Result<Heuristic, String> {
    Heuristic::ALL
        .into_iter()
        .find(|h| h.name() == s)
        .ok_or_else(|| format!("unknown heuristic `{s}`"))
}

/// Renders a compile request frame — the client-side inverse of
/// [`parse_request`]. No `seq` line is emitted (the unpipelined form).
pub fn render_compile(options: &BatchOptions, modules: &[ModuleRequest]) -> String {
    render_compile_seq(options, None, modules)
}

/// [`render_compile`] with an explicit pipelining sequence id.
pub fn render_compile_seq(
    options: &BatchOptions,
    seq: Option<u64>,
    modules: &[ModuleRequest],
) -> String {
    let mut out = format!("{MAGIC} compile\n");
    if let Some(n) = seq {
        out.push_str(&format!("seq {n}\n"));
    }
    let kind = match &options.kind {
        RegionConfig::BasicBlock => "bb".to_string(),
        RegionConfig::Slr => "slr".to_string(),
        RegionConfig::Superblock => "sb".to_string(),
        RegionConfig::Treegion => "tree".to_string(),
        RegionConfig::TreegionTd(l) => format!("tree-td:{}", l.code_expansion),
    };
    out.push_str(&format!("kind {kind}\n"));
    out.push_str(&format!("machine {}\n", options.machine.issue_width()));
    out.push_str(&format!("heuristic {}\n", options.heuristic.name()));
    if options.dompar {
        out.push_str("dompar\n");
    }
    if let Some(ms) = options.deadline_ms {
        out.push_str(&format!("deadline-ms {ms}\n"));
    }
    out.push('\n');
    for (i, m) in modules.iter().enumerate() {
        if i > 0 {
            out.push_str("---\n");
        }
        if let Some(s) = m.poison.fault_seed {
            out.push_str(&format!("!fault-seed {s}\n"));
        }
        if let Some(r) = m.poison.panic_region {
            out.push_str(&format!("!panic-region {r}\n"));
        }
        if m.poison.panic_hard {
            out.push_str("!panic-hard\n");
        }
        out.push_str(&m.text);
        if !m.text.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Renders a bodyless request (`stats`, `ping`, `shutdown`).
pub fn render_simple(verb: Verb) -> String {
    let v = match verb {
        Verb::Compile => "compile",
        Verb::Stats => "stats",
        Verb::Ping => "ping",
        Verb::Shutdown => "shutdown",
        Verb::Close => "close",
    };
    format!("{MAGIC} {v}\n")
}

/// Parses a request frame.
///
/// # Errors
///
/// Returns a client-facing message on bad magic, unknown verbs/options,
/// or malformed option values. Module *bodies* are not parsed here —
/// tir errors are per-module structured errors, not protocol errors.
pub fn parse_request(payload: &str) -> Result<Request, String> {
    let mut lines = payload.lines();
    let head = lines.next().unwrap_or("");
    let verb = match head.strip_prefix(MAGIC).map(str::trim) {
        Some("compile") => Verb::Compile,
        Some("stats") => Verb::Stats,
        Some("ping") => Verb::Ping,
        Some("shutdown") => Verb::Shutdown,
        Some("close") => Verb::Close,
        Some(other) => return Err(format!("unknown verb `{other}`")),
        None => return Err(format!("bad protocol magic (want `{MAGIC} <verb>`)")),
    };
    let mut options = BatchOptions::default();
    let mut seq = None;
    // Option lines until the first blank line; the rest is the body.
    let mut body = Vec::new();
    let mut in_body = false;
    for line in lines {
        if in_body {
            body.push(line);
            continue;
        }
        if line.trim().is_empty() {
            in_body = true;
            continue;
        }
        let (key, value) = match line.split_once(' ') {
            Some((k, v)) => (k, v.trim()),
            None => (line, ""),
        };
        match key {
            "kind" => options.kind = parse_kind(value)?,
            "machine" => options.machine = parse_machine(value)?,
            "heuristic" => options.heuristic = parse_heuristic(value)?,
            "dompar" => options.dompar = true,
            "seq" => {
                seq = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad sequence id `{value}`"))?,
                );
            }
            "deadline-ms" => {
                options.deadline_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad deadline `{value}`"))?,
                );
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let modules = if verb == Verb::Compile {
        parse_batch_body(&body)?
    } else {
        Vec::new()
    };
    if verb == Verb::Compile && modules.is_empty() {
        return Err("compile request carries no modules".into());
    }
    Ok(Request {
        verb,
        options,
        seq,
        modules,
    })
}

/// Splits the batch body on `---` separator lines and peels each
/// module's leading `!`-poison lines.
fn parse_batch_body(body: &[&str]) -> Result<Vec<ModuleRequest>, String> {
    let mut modules = Vec::new();
    for chunk in body.split(|l| l.trim() == "---") {
        let mut poison = Poison::default();
        let mut text_lines = Vec::new();
        let mut in_text = false;
        for line in chunk {
            if !in_text && line.trim().is_empty() && text_lines.is_empty() {
                continue; // leading blank lines
            }
            if !in_text {
                if let Some(rest) = line.strip_prefix('!') {
                    let (k, v) = rest.split_once(' ').unwrap_or((rest, ""));
                    match k {
                        "fault-seed" => {
                            poison.fault_seed =
                                Some(v.parse().map_err(|_| format!("bad fault seed `{v}`"))?);
                        }
                        "panic-region" => {
                            poison.panic_region =
                                Some(v.parse().map_err(|_| format!("bad region index `{v}`"))?);
                        }
                        "panic-hard" => poison.panic_hard = true,
                        other => return Err(format!("unknown poison knob `!{other}`")),
                    }
                    continue;
                }
                in_text = true;
            }
            text_lines.push(*line);
        }
        let text = text_lines.join("\n");
        if text.trim().is_empty() {
            continue; // empty chunk (trailing separator)
        }
        modules.push(ModuleRequest {
            text: format!("{text}\n"),
            poison,
        });
    }
    Ok(modules)
}

/// Status of one `result` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResultStatus {
    /// The module was scheduled; the body is the (cacheable) payload.
    Ok,
    /// The module failed; `cause` is a containment label.
    Error,
    /// The module was shed by admission control; retry later.
    Shed,
}

/// A parsed `result` / `batch-end` / `stats` / `pong` frame — the
/// client-side view. `keys` holds the header's `key value` lines,
/// `body` the text after the blank separator.
#[derive(Clone, Debug)]
pub struct ResponseFrame {
    /// Frame kind: `result`, `batch-end`, `stats`, `pong`, `draining`.
    pub kind: String,
    /// `result` status when `kind == "result"`.
    pub status: Option<ResultStatus>,
    /// Header key/value lines.
    pub keys: BTreeMap<String, String>,
    /// Body after the blank line ("" when none).
    pub body: String,
}

impl ResponseFrame {
    /// Header value lookup.
    pub fn key(&self, k: &str) -> Option<&str> {
        self.keys.get(k).map(String::as_str)
    }
}

/// Renders a response frame. `status` is appended to the kind line
/// (`result ok`), keys become `key value` lines, and a non-empty body
/// follows a blank separator.
pub fn render_response(kind: &str, keys: &[(&str, String)], body: &str) -> String {
    let mut out = format!("{MAGIC} {kind}\n");
    for (k, v) in keys {
        out.push_str(&format!("{k} {v}\n"));
    }
    if !body.is_empty() {
        out.push('\n');
        out.push_str(body);
        if !body.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Parses a response frame (used by the CLI client and the tests).
///
/// # Errors
///
/// Fails on bad magic or an unknown `result` status.
pub fn parse_response(payload: &str) -> Result<ResponseFrame, String> {
    let (head, rest) = payload.split_once('\n').unwrap_or((payload, ""));
    let head = head
        .strip_prefix(MAGIC)
        .map(str::trim)
        .ok_or_else(|| format!("bad response magic in {head:?}"))?;
    let (kind, status) = match head.strip_prefix("result ") {
        Some(s) => (
            "result".to_string(),
            Some(match s {
                "ok" => ResultStatus::Ok,
                "error" => ResultStatus::Error,
                "shed" => ResultStatus::Shed,
                other => return Err(format!("unknown result status `{other}`")),
            }),
        ),
        None => (head.to_string(), None),
    };
    // Header lines up to the blank separator; the body is everything
    // after it (no separator = all header). A keyless frame's separator
    // is the very first character of `rest`.
    let (header, body) = match rest.strip_prefix('\n') {
        Some(b) => ("", b.to_string()),
        None => match rest.split_once("\n\n") {
            Some((h, b)) => (h, b.to_string()),
            None => (rest.trim_end_matches('\n'), String::new()),
        },
    };
    let mut keys = BTreeMap::new();
    for line in header.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (k, v) = line.split_once(' ').unwrap_or((line, ""));
        keys.insert(k.to_string(), v.trim().to_string());
    }
    Ok(ResponseFrame {
        kind,
        status,
        keys,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello\nworld\n").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("hello\nworld\n")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "payload").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut buf.as_slice()).is_err());
        // Garbage length prefix over the cap.
        let huge = (MAX_FRAME + 1).to_be_bytes().to_vec();
        assert!(read_frame(&mut huge.as_slice()).is_err());
        // Truncated header.
        assert!(read_frame(&mut [0u8, 0].as_slice()).is_err());
    }

    #[test]
    fn compile_request_round_trips() {
        let opts = BatchOptions {
            kind: RegionConfig::Superblock,
            machine: MachineModel::model_8u(),
            heuristic: Heuristic::DependenceHeight,
            dompar: true,
            deadline_ms: Some(250),
        };
        let modules = vec![
            ModuleRequest {
                text: "module @a\nfunc @f {\n}\n".into(),
                poison: Poison::default(),
            },
            ModuleRequest {
                text: "module @b\n".into(),
                poison: Poison {
                    panic_region: Some(0),
                    fault_seed: Some(9),
                    panic_hard: true,
                },
            },
        ];
        let req = parse_request(&render_compile(&opts, &modules)).unwrap();
        assert_eq!(req.verb, Verb::Compile);
        assert_eq!(req.options.machine.issue_width(), 8);
        assert!(req.options.dompar);
        assert_eq!(req.options.deadline_ms, Some(250));
        assert_eq!(req.modules.len(), 2);
        assert_eq!(req.modules[0].text, modules[0].text);
        assert_eq!(req.modules[0].poison, Poison::default());
        assert_eq!(req.modules[1].poison.panic_region, Some(0));
        assert_eq!(req.modules[1].poison.fault_seed, Some(9));
        assert!(req.modules[1].poison.panic_hard);
    }

    #[test]
    fn simple_verbs_parse() {
        for (v, s) in [
            (Verb::Stats, "stats"),
            (Verb::Ping, "ping"),
            (Verb::Shutdown, "shutdown"),
            (Verb::Close, "close"),
        ] {
            let req = parse_request(&render_simple(v)).unwrap();
            assert_eq!(req.verb, v, "{s}");
            assert!(req.modules.is_empty());
        }
    }

    #[test]
    fn sequence_ids_round_trip_and_default_off() {
        let m = vec![ModuleRequest {
            text: "module @a\n".into(),
            poison: Poison::default(),
        }];
        let opts = BatchOptions::default();
        // Unpipelined clients emit no seq line and parse to None.
        let plain = render_compile(&opts, &m);
        assert!(!plain.contains("seq "));
        assert_eq!(parse_request(&plain).unwrap().seq, None);
        // Pipelined form round-trips arbitrary ids.
        for id in [0u64, 1, 42, u64::MAX] {
            let req = parse_request(&render_compile_seq(&opts, Some(id), &m)).unwrap();
            assert_eq!(req.seq, Some(id));
            assert_eq!(req.modules.len(), 1);
        }
        // Malformed ids are protocol errors, not panics.
        assert!(parse_request("tgc-serve v1 compile\nseq x\n\nmodule @a\n").is_err());
        assert!(parse_request("tgc-serve v1 compile\nseq -3\n\nmodule @a\n").is_err());
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(parse_request("http GET /\n").is_err());
        assert!(parse_request("tgc-serve v1 explode\n").is_err());
        assert!(parse_request("tgc-serve v1 compile\nkind hyperblock\n\nmodule @a\n").is_err());
        assert!(parse_request("tgc-serve v1 compile\nwat 1\n\nmodule @a\n").is_err());
        // Empty batch.
        assert!(parse_request("tgc-serve v1 compile\n\n").is_err());
        // Bad poison value.
        assert!(parse_request("tgc-serve v1 compile\n\n!panic-region x\nmodule @a\n").is_err());
    }

    #[test]
    fn responses_round_trip() {
        let text = render_response(
            "result ok",
            &[("cache", "warm".into())],
            "module @a\ndigest 00ff\n",
        );
        let f = parse_response(&text).unwrap();
        assert_eq!(f.kind, "result");
        assert_eq!(f.status, Some(ResultStatus::Ok));
        assert_eq!(f.key("cache"), Some("warm"));
        assert_eq!(f.body, "module @a\ndigest 00ff\n");

        let text = render_response("batch-end", &[("ok", "2".into()), ("shed", "1".into())], "");
        let f = parse_response(&text).unwrap();
        assert_eq!(f.kind, "batch-end");
        assert_eq!(f.status, None);
        assert_eq!(f.key("shed"), Some("1"));
        assert!(f.body.is_empty());

        let f = parse_response("tgc-serve v1 pong\n").unwrap();
        assert_eq!(f.kind, "pong");
        assert!(parse_response("nonsense\n").is_err());

        // Keyless frame with a body: the separator is the first char.
        let f = parse_response(&render_response("stats", &[], "requests 3\nok 2\n")).unwrap();
        assert_eq!(f.kind, "stats");
        assert!(f.keys.is_empty());
        assert_eq!(f.body, "requests 3\nok 2\n");
    }
}
