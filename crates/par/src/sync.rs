//! Small synchronization utilities shared across the workspace.
//!
//! Two primitives live here because at least four crates were growing
//! private copies of them:
//!
//! * [`lock_tolerant`] — the poison-tolerant mutex acquire used by every
//!   cache/ledger/handler-registry lock in the serve and eval crates.
//! * [`StripedSet`] — a lock-striped `u64` membership set, the
//!   concurrent replacement for a global `Mutex<HashSet<u64>>`.
//!
//! ## Why poison tolerance is sound here
//!
//! All users of these locks protect state whose individual mutations are
//! single-step (one `HashMap`/`HashSet` insert, one `Vec` push, one file
//! append completed *before* the map update): a panicking holder cannot
//! leave the structure half-updated, so the poison flag carries no
//! information and recovering the guard is strictly better than
//! propagating the panic into an unrelated worker.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, TryLockError};

/// Acquires `m`, recovering the guard if a previous holder panicked.
///
/// See the module docs for why this is sound for the workspace's locks
/// (single-step mutations only).
pub fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A lock-striped set of `u64` keys: membership state is spread over
/// `stripes` independently locked `HashSet`s, selected by `key % stripes`,
/// so readers and writers touching different keys rarely contend.
///
/// Used by the serve engine's quarantine ledger (digest fast-reject on
/// the hot path of every compile request) in place of the former global
/// `Mutex<HashSet<u64>>`.
///
/// Contention is observable: every acquire first tries the lock without
/// blocking and counts a miss in [`StripedSet::contention`] before
/// falling back to the blocking acquire.
#[derive(Debug)]
pub struct StripedSet {
    stripes: Box<[Mutex<HashSet<u64>>]>,
    contention: AtomicU64,
}

impl StripedSet {
    /// Creates an empty set with `stripes` lock stripes (clamped to ≥ 1).
    #[must_use]
    pub fn new(stripes: usize) -> Self {
        let n = stripes.max(1);
        StripedSet {
            stripes: (0..n).map(|_| Mutex::new(HashSet::new())).collect(),
            contention: AtomicU64::new(0),
        }
    }

    fn stripe(&self, key: u64) -> MutexGuard<'_, HashSet<u64>> {
        let m = &self.stripes[(key % self.stripes.len() as u64) as usize];
        match m.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                lock_tolerant(m)
            }
        }
    }

    /// Inserts `key`; returns `true` when it was not already present.
    pub fn insert(&self, key: u64) -> bool {
        self.stripe(key).insert(key)
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.stripe(key).contains(&key)
    }

    /// Total number of keys across all stripes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| lock_tolerant(s).len()).sum()
    }

    /// `true` when no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lock stripes.
    #[must_use]
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Blocking lock acquires that found the stripe already held.
    #[must_use]
    pub fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_tolerant_recovers_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock_tolerant(&m), 7);
    }

    #[test]
    fn striped_set_semantics_match_a_plain_set() {
        let s = StripedSet::new(8);
        assert!(s.is_empty());
        assert!(s.insert(1));
        assert!(s.insert(9)); // same stripe as 1 under % 8
        assert!(!s.insert(1));
        assert!(s.contains(9));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.stripes(), 8);
    }

    #[test]
    fn zero_stripes_is_clamped() {
        let s = StripedSet::new(0);
        assert_eq!(s.stripes(), 1);
        assert!(s.insert(42));
        assert!(s.contains(42));
    }

    #[test]
    fn concurrent_inserts_land_exactly_once() {
        let s = Arc::new(StripedSet::new(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut fresh = 0usize;
                for k in 0..1000u64 {
                    if s.insert(k * 8 + t % 2) {
                        fresh += 1;
                    }
                }
                fresh
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Keys k*8 and k*8+1 for k in 0..1000 → 2000 distinct keys, each
        // inserted "fresh" exactly once across all threads.
        assert_eq!(total, 2000);
        assert_eq!(s.len(), 2000);
    }
}
