//! # treegion-par
//!
//! A tiny, hermetic (std-only) parallel-execution layer for the treegion
//! workspace. The workspace must build without crates.io, so this crate
//! provides the two primitives the evaluation engine needs instead of
//! pulling in rayon:
//!
//! * [`par_map`] / [`par_map_jobs`] — order-preserving parallel map over a
//!   slice, built on [`std::thread::scope`]. Results come back in input
//!   order, so a parallel caller is **byte-identical** to the serial one as
//!   long as the mapped closure is a pure function of its item.
//! * [`scope`] — a thin re-export of [`std::thread::scope`] for ad-hoc
//!   fork/join that does not fit the map shape.
//!
//! ## Determinism contract
//!
//! Parallelism here only ever changes *when* a result is computed, never
//! *what* is computed or in which order results are observed by the
//! caller. `par_map(items, f)[i] == f(&items[i])` for every `i`, at every
//! job count. The whole workspace relies on this: schedules, report
//! tables, and fuzz verdicts produced at `jobs=1` and `jobs=N` must be
//! byte-identical (see `tests/parallel_determinism.rs` at the workspace
//! root).
//!
//! ## Job-count resolution
//!
//! The effective worker count is resolved in this order:
//!
//! 1. [`set_jobs`] (e.g. from `tgc --jobs N`),
//! 2. the `TGC_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `jobs == 1` runs strictly serially on the calling thread — the
//! documented reproducibility mode (no worker threads are ever spawned).
//!
//! ## Nested parallelism
//!
//! Callers nest freely (the eval harness fans out over table cells while
//! `schedule_function` fans out over regions). A global *worker budget* of
//! `current_jobs() - 1` extra threads keeps the process from
//! oversubscribing: inner `par_map`s that cannot obtain workers simply run
//! serially on their calling thread. Work never deadlocks — the calling
//! thread always participates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Explicit job-count override (0 = unset; fall back to env / hardware).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Extra worker threads currently live across all `par_map`s (the global
/// budget that bounds nested parallelism).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Memoized [`max_jobs`] resolution (0 = not resolved yet). Resolving
/// consults the environment and `available_parallelism`, which on Linux
/// reads cgroup files — far too expensive for `par_map`'s hot path, so it
/// happens once per process.
static ENV_JOBS: AtomicUsize = AtomicUsize::new(0);

/// The job count the environment asks for: `TGC_JOBS` if set and valid,
/// otherwise the machine's available parallelism (1 if unknown).
/// Resolved once per process and cached.
pub fn max_jobs() -> usize {
    match ENV_JOBS.load(Ordering::Relaxed) {
        0 => {
            let n = resolve_env_jobs();
            ENV_JOBS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

fn resolve_env_jobs() -> usize {
    match std::env::var("TGC_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Overrides the job count for the whole process (clamped to ≥ 1).
/// `tgc --jobs N` and the determinism tests call this.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The effective job count: the [`set_jobs`] override if one was made,
/// otherwise [`max_jobs`].
pub fn current_jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => max_jobs(),
        n => n,
    }
}

/// Thin wrapper over [`std::thread::scope`]; exists so callers in the
/// workspace depend only on `treegion-par` for their fork/join needs.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

/// Order-preserving parallel map with the process-wide job count
/// ([`current_jobs`]). See [`par_map_jobs`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_jobs(current_jobs(), items, f)
}

/// Order-preserving parallel map: returns `vec![f(&items[0]), ...]`, with
/// up to `jobs` threads (the caller included) executing `f` concurrently.
///
/// * `jobs <= 1` (or fewer than 2 items, or an exhausted global worker
///   budget) degrades to a serial `map` on the calling thread.
/// * Worker threads pull items off a shared atomic index — no work
///   splitting heuristics, which keeps the pool fair for the coarse,
///   uneven items (regions, table cells, fuzz cases) this workspace maps
///   over.
/// * If `f` panics on any item, the panic is propagated to the caller
///   after all workers have stopped.
pub fn par_map_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    // Budget: how many *extra* threads this call may spawn. The global
    // ledger keeps nested par_maps from oversubscribing the machine.
    let want = jobs.min(n) - 1;
    let granted = acquire_workers(want, jobs.saturating_sub(1));
    if granted == 0 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let run = |_worker: usize| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, f(&items[i])));
        }
        local
    };

    // The calling thread participates too (worker 0), and it may itself
    // panic inside `run`; catch everything so the worker budget is always
    // released before the panic resumes.
    let outcome: Result<Vec<R>, Box<dyn std::any::Any + Send>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..granted).map(|w| s.spawn(move || run(w + 1))).collect();
        let mine = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(0)));
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        match mine {
            Ok(local) => {
                for (i, r) in local {
                    slots[i] = Some(r);
                }
            }
            Err(p) => panic = Some(p),
        }
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                Err(p) => panic = Some(p),
            }
        }
        match panic {
            Some(p) => Err(p),
            None => Ok(slots
                .into_iter()
                .map(|o| o.expect("worker produced every index"))
                .collect()),
        }
    });
    release_workers(granted);
    match outcome {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// Tries to reserve up to `want` extra workers against a cap of `cap`
/// process-wide extra workers; returns how many were granted (possibly 0).
fn acquire_workers(want: usize, cap: usize) -> usize {
    loop {
        let cur = LIVE_WORKERS.load(Ordering::SeqCst);
        if cur >= cap {
            return 0;
        }
        let grant = want.min(cap - cur);
        if LIVE_WORKERS
            .compare_exchange(cur, cur + grant, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return grant;
        }
    }
}

fn release_workers(n: usize) {
    LIVE_WORKERS.fetch_sub(n, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that assert on the global worker ledger (the
    /// default test harness runs tests on several threads).
    static LEDGER: Mutex<()> = Mutex::new(());

    fn ledger() -> std::sync::MutexGuard<'static, ()> {
        LEDGER.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let serial: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 4, 8, 33] {
            let par = par_map_jobs(jobs, &items, |x| x * 3 + 1);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_jobs(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_jobs(8, &[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn serial_mode_spawns_no_threads() {
        let _g = ledger();
        // jobs=1 must never touch the worker budget.
        let before = LIVE_WORKERS.load(Ordering::SeqCst);
        let out = par_map_jobs(1, &[1, 2, 3], |x| {
            assert_eq!(LIVE_WORKERS.load(Ordering::SeqCst), before);
            x * 2
        });
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn nested_maps_complete_and_stay_ordered() {
        let outer: Vec<usize> = (0..8).collect();
        let got = par_map_jobs(4, &outer, |&i| {
            let inner: Vec<usize> = (0..16).collect();
            par_map_jobs(4, &inner, move |&j| i * 100 + j)
        });
        for (i, row) in got.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, i * 100 + j);
            }
        }
    }

    #[test]
    fn worker_budget_is_released() {
        let _g = ledger();
        for _ in 0..10 {
            let items: Vec<usize> = (0..64).collect();
            let _ = par_map_jobs(4, &items, |x| x + 1);
        }
        assert_eq!(LIVE_WORKERS.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn panics_propagate() {
        let _g = ledger();
        let items: Vec<usize> = (0..32).collect();
        let r = std::panic::catch_unwind(|| {
            par_map_jobs(4, &items, |&x| {
                if x == 17 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err());
        // Budget must still be released after a panic inside the scope.
        assert_eq!(LIVE_WORKERS.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn set_jobs_overrides_env_and_hardware() {
        set_jobs(3);
        assert_eq!(current_jobs(), 3);
        set_jobs(0); // clamps to 1
        assert_eq!(current_jobs(), 1);
        set_jobs(1);
    }

    #[test]
    fn scope_runs_scoped_threads() {
        let mut a = 0u32;
        let mut b = 0u32;
        scope(|s| {
            s.spawn(|| a = 1);
            s.spawn(|| b = 2);
        });
        assert_eq!((a, b), (1, 2));
    }
}
